//! First-party deterministic property-testing harness.
//!
//! The workspace's property tests generate many randomized cases per
//! property (ranges, tuples, `collection::vec`, `bool::ANY`) and assert
//! invariants over them. This crate supplies that machinery without an
//! external dependency, in the same spirit as [`aml-rng`]: case `i` of
//! every property is generated from the fixed seed `i`, so a failure
//! reproduces identically on every machine and every run — no shrinking,
//! no persisted failure files, no environment variables.
//!
//! The macro surface follows the well-known `proptest!` shape so the
//! tests read idiomatically:
//!
//! ```
//! use aml_propcheck::prelude::*;
//!
//! proptest! {
//!     #[test]
//!     fn add_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! ```
//!
//! Design notes:
//! - **Deterministic**: per-case seeds are the case index; there is no
//!   global RNG state and no time-based seeding.
//! - **No shrinking**: failures report the assert with the generated
//!   values in scope; with fixed seeds a debugger or `dbg!` reproduces
//!   the exact case. For this workspace's numeric invariants that trade
//!   is worth the simplicity.
//! - `prop_assume!(cond)` skips the remainder of a case (early-returns
//!   the case closure), matching the usual semantics closely enough for
//!   the precondition patterns used here.

// The doc example above shows the `#[test]` the macro surface expects;
// the example exists to compile-check that surface, not to run.
#![allow(clippy::test_attr_in_doctest)]

/// Runner configuration (only `cases` is honored).
pub struct ProptestConfig {
    /// Number of cases to generate per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Per-case generator: SplitMix64 over a salted case index.
///
/// Distinct from [`aml-rng`]'s `StdRng` only in seeding (salted so that
/// property cases don't correlate with experiment seeds).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator for one case; `seed` is the case index.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xDEAD_BEEF_CAFE_F00D,
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Value generator: how a `a in <expr>` binding draws its value.
pub trait Strategy {
    /// Generated type.
    type Value;
    /// Draw one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u128;
                assert!(span > 0, "empty range");
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_strategy!(f32, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.gen_value(rng), self.1.gen_value(rng))
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::{Strategy, TestRng};

    /// The strategy type behind [`ANY`].
    pub struct Any;

    /// Uniform boolean.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;
        fn gen_value(&self, rng: &mut TestRng) -> core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Vec of `size.start..size.end` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.clone().gen_value(rng);
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import for property tests.
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Define property-test functions: each `fn` runs `cases` times with
/// its arguments freshly generated per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__propcheck_fns!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__propcheck_fns!{ cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __propcheck_fns {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases as u64 {
                    let mut __rng = $crate::TestRng::new(__case);
                    $(let $arg = $crate::Strategy::gen_value(&($strat), &mut __rng);)*
                    // Closure so prop_assume! can early-return the case.
                    let __run = move || $body;
                    __run();
                }
            }
        )*
    };
}

/// Assert inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Skip the rest of the case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..8).map(|i| TestRng::new(i).next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|i| TestRng::new(i).next_u64()).collect();
        assert_eq!(a, b);
        // Distinct case indices give distinct draws.
        assert_eq!(
            a.iter().collect::<std::collections::BTreeSet<_>>().len(),
            a.len()
        );
    }

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = TestRng::new(0);
        for _ in 0..500 {
            let v = Strategy::gen_value(&(10usize..20), &mut rng);
            assert!((10..20).contains(&v));
            let w = Strategy::gen_value(&(-3i64..=3), &mut rng);
            assert!((-3..=3).contains(&w));
            let f = Strategy::gen_value(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::new(1);
        for _ in 0..100 {
            let v = Strategy::gen_value(&crate::collection::vec(0u8..10, 2..6), &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 10));
        }
    }

    proptest! {
        #[test]
        fn macro_binds_and_runs(a in 0u32..100, b in 0u32..100) {
            prop_assert!(a < 100 && b < 100);
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn assume_skips_cases(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_form_parses(x in 0u8..=255) {
            let _ = x;
        }
    }
}
