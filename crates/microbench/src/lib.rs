//! First-party micro-benchmark harness.
//!
//! The workspace's `[[bench]]` targets (`harness = false`) use this crate
//! instead of an external framework, keeping the build fully
//! self-contained. The API follows the familiar criterion shape
//! (`Criterion`, `benchmark_group`, `bench_with_input`, `b.iter(..)`,
//! `criterion_group!`/`criterion_main!`) so the bench files read
//! idiomatically, but the engine is deliberately small:
//!
//! 1. **Warmup**: each measured closure runs [`WARMUP_ITERS`] times
//!    untimed (populates caches, triggers lazy init).
//! 2. **Calibration**: one timed call sizes a batch so that a batch
//!    takes ≳ [`TARGET_BATCH_NANOS`]; sub-microsecond closures are
//!    batched, expensive ones run once per sample.
//! 3. **Sampling**: `sample_size` batches are timed (default
//!    [`DEFAULT_SAMPLES`]), and per-iteration min / median / mean are
//!    printed on one line per benchmark.
//!
//! No statistical outlier rejection and no HTML reports — the BENCH_*
//! perf records and `perfgate` (see `aml-bench`) are the regression
//! mechanism; these targets exist for quick local "how expensive is
//! this" answers.
//!
//! Measured closures should wrap inputs/outputs in [`black_box`] when
//! there is a risk the optimizer deletes the work.

use std::time::{Duration, Instant};

/// Untimed runs before measurement starts.
pub const WARMUP_ITERS: u32 = 3;

/// Calibration target: batch size is chosen so one batch takes at least
/// roughly this long, bounding timer-resolution error per sample.
pub const TARGET_BATCH_NANOS: u128 = 1_000_000;

/// Samples per benchmark unless overridden via `sample_size`.
pub const DEFAULT_SAMPLES: usize = 20;

/// Opaque value barrier: prevents the optimizer from deleting the
/// computation that produced `x` or hoisting it out of the timed loop.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness handle (one per bench binary).
pub struct Criterion {
    samples: usize,
}

impl Criterion {
    /// Run `f` as a standalone benchmark named `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.samples);
        f(&mut b);
        b.report(id);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            samples: self.samples,
            _c: self,
            name: name.to_string(),
        }
    }
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            samples: DEFAULT_SAMPLES,
        }
    }
}

/// Measures one closure: warms up, calibrates a batch size, then times
/// `samples` batches.
pub struct Bencher {
    samples: usize,
    /// Per-iteration sample durations in nanoseconds, filled by `iter`.
    sample_nanos: Vec<f64>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            sample_nanos: Vec::new(),
        }
    }

    /// Measure `f`. The closure's return value is passed through
    /// [`black_box`] so computing it cannot be optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        // Calibrate: batch cheap closures so a sample outlasts timer noise.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().as_nanos().max(1);
        let batch = (TARGET_BATCH_NANOS / once).clamp(1, 1_000_000) as u32;

        self.sample_nanos.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let nanos = start.elapsed().as_nanos() as f64 / f64::from(batch);
            self.sample_nanos.push(nanos);
        }
    }

    /// Print `min/median/mean` per iteration for the collected samples.
    fn report(&self, id: &str) {
        if self.sample_nanos.is_empty() {
            println!("bench {id:<40} (no measurement: iter() never called)");
            return;
        }
        let mut sorted = self.sample_nanos.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        println!(
            "bench {id:<40} min {:>12}  median {:>12}  mean {:>12}  ({} samples)",
            fmt_nanos(min),
            fmt_nanos(median),
            fmt_nanos(mean),
            sorted.len(),
        );
    }
}

/// Human-scaled duration: ns under 1 µs, µs under 1 ms, else ms.
fn fmt_nanos(n: f64) -> String {
    if n < 1_000.0 {
        format!("{n:.0} ns")
    } else if n < 1_000_000.0 {
        format!("{:.2} µs", n / 1_000.0)
    } else {
        format!("{:.3} ms", n / 1_000_000.0)
    }
}

/// Group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Accepted for criterion compatibility; the harness sizes work via
    /// `sample_size` and batch calibration instead of a time budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run `f` as `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.samples);
        f(&mut b);
        b.report(&format!("{}/{id}", self.name));
        self
    }

    /// Run `f` as `group/id` with a borrowed input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.samples);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// End the group (kept for criterion API compatibility).
    pub fn finish(self) {}
}

/// Benchmark identifier within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: &str, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Collect benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher::new(5);
        let mut calls = 0u64;
        b.iter(|| {
            calls += 1;
            calls
        });
        assert_eq!(b.sample_nanos.len(), 5);
        assert!(b.sample_nanos.iter().all(|n| *n > 0.0));
        // warmup + calibration + 5 batches all actually ran the closure
        assert!(calls > 5);
    }

    #[test]
    fn expensive_closures_run_once_per_sample() {
        let mut b = Bencher::new(3);
        b.iter(|| std::thread::sleep(Duration::from_millis(2)));
        assert_eq!(b.sample_nanos.len(), 3);
        // ~2 ms per iteration: batching must not have multiplied the work.
        assert!(b.sample_nanos.iter().all(|n| *n >= 1_000_000.0));
    }

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut ran = false;
        group.bench_function("f", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        group.bench_with_input(BenchmarkId::new("h", 42), &7, |b, x| b.iter(|| *x * 2));
        group.finish();
        assert!(ran);
    }

    #[test]
    fn fmt_scales() {
        assert_eq!(fmt_nanos(500.0), "500 ns");
        assert_eq!(fmt_nanos(2_500.0), "2.50 µs");
        assert_eq!(fmt_nanos(3_000_000.0), "3.000 ms");
    }
}
