//! # aml-stats
//!
//! Statistical utilities used throughout the interpretable-AutoML
//! reproduction: descriptive statistics, rank computations with midrank tie
//! handling, the one-sided Wilcoxon signed-rank test used for every p-value
//! the paper reports (Table 1 and §4.2), bootstrap confidence intervals, and
//! helpers that format pairwise significance matrices.
//!
//! Everything in this crate is implemented from scratch (the paper used
//! `scipy.stats.wilcoxon`); the exact small-sample distribution is computed
//! by dynamic programming and is property-tested against brute-force
//! enumeration of all sign assignments.
//!
//! ## Example
//!
//! ```
//! use aml_stats::wilcoxon::{wilcoxon_signed_rank, Alternative};
//!
//! // Paired balanced-accuracy scores of two feedback strategies over the
//! // same 10 test sets. We ask: is strategy `a` worse than strategy `b`?
//! let a = [0.61, 0.64, 0.60, 0.66, 0.63, 0.65, 0.62, 0.59, 0.61, 0.64];
//! let b = [0.68, 0.71, 0.69, 0.74, 0.70, 0.72, 0.69, 0.66, 0.70, 0.73];
//! let res = wilcoxon_signed_rank(&a, &b, Alternative::Less).unwrap();
//! assert!(res.p_value < 0.05, "a is significantly worse than b");
//! ```

pub mod bootstrap;
pub mod descriptive;
pub mod effect;
pub mod ranks;
pub mod summary;
pub mod wilcoxon;

pub use bootstrap::{bootstrap_ci_mean, BootstrapCi};
pub use descriptive::{mean, median, percentile, sample_std, sample_var, Summary};
pub use effect::{cliffs_delta, CliffsDelta, EffectMagnitude};
pub use ranks::{midranks, tie_correction};
pub use summary::{PairwiseMatrix, SignificanceCell};
pub use wilcoxon::{wilcoxon_signed_rank, Alternative, WilcoxonResult};

/// Errors produced by statistical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// The input slice was empty (or became empty after dropping zero
    /// differences, for the Wilcoxon test).
    EmptyInput,
    /// Paired-sample tests require both slices to have identical length.
    LengthMismatch {
        /// Length of the first sample.
        left: usize,
        /// Length of the second sample.
        right: usize,
    },
    /// An input contained a NaN or infinite value.
    NonFiniteInput,
    /// A probability or quantile argument was outside `[0, 1]`.
    InvalidProbability(f64),
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::EmptyInput => write!(f, "input sample is empty"),
            StatsError::LengthMismatch { left, right } => {
                write!(f, "paired samples differ in length: {left} vs {right}")
            }
            StatsError::NonFiniteInput => write!(f, "input contains NaN or infinite values"),
            StatsError::InvalidProbability(p) => {
                write!(f, "probability argument {p} is outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for StatsError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StatsError>;

pub(crate) fn check_finite(xs: &[f64]) -> Result<()> {
    if xs.iter().any(|x| !x.is_finite()) {
        Err(StatsError::NonFiniteInput)
    } else {
        Ok(())
    }
}
