//! Rank computations with midrank tie handling.
//!
//! The Wilcoxon signed-rank test ranks the absolute differences of paired
//! observations; ties receive the average ("midrank") of the positions they
//! occupy. The tie correction factor feeds the normal approximation of the
//! test statistic's null variance.

use crate::{check_finite, Result, StatsError};

/// Compute midranks of `xs` (1-based).
///
/// Equal values share the average of the ranks they would have occupied:
/// `midranks(&[10, 20, 20, 30]) == [1.0, 2.5, 2.5, 4.0]`.
///
/// # Errors
/// [`StatsError::EmptyInput`] / [`StatsError::NonFiniteInput`].
pub fn midranks(xs: &[f64]) -> Result<Vec<f64>> {
    if xs.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    check_finite(xs)?;
    let n = xs.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("finite values compare"));

    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        // Find the run [i, j) of equal values in sorted order.
        let mut j = i + 1;
        while j < n && xs[order[j]] == xs[order[i]] {
            j += 1;
        }
        // Positions i+1 ..= j (1-based) average to (i + j + 1) / 2.
        let avg_rank = (i + j + 1) as f64 / 2.0;
        for &idx in &order[i..j] {
            ranks[idx] = avg_rank;
        }
        i = j;
    }
    Ok(ranks)
}

/// Sizes of tie groups (runs of equal values), for groups of size ≥ 2.
///
/// `tie_groups(&[1, 2, 2, 3, 3, 3]) == [2, 3]`.
pub fn tie_groups(xs: &[f64]) -> Result<Vec<usize>> {
    if xs.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    check_finite(xs)?;
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
    let mut groups = Vec::new();
    let mut run = 1usize;
    for w in sorted.windows(2) {
        if w[0] == w[1] {
            run += 1;
        } else {
            if run >= 2 {
                groups.push(run);
            }
            run = 1;
        }
    }
    if run >= 2 {
        groups.push(run);
    }
    Ok(groups)
}

/// The tie correction term `Σ (t³ − t)` over tie groups of size `t`, used to
/// reduce the null variance of the signed-rank statistic:
/// `Var[W⁺] = n(n+1)(2n+1)/24 − Σ(t³−t)/48`.
pub fn tie_correction(xs: &[f64]) -> Result<f64> {
    let groups = tie_groups(xs)?;
    Ok(groups
        .iter()
        .map(|&t| {
            let t = t as f64;
            t * t * t - t
        })
        .sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_without_ties_are_permutation() {
        let r = midranks(&[30.0, 10.0, 20.0]).unwrap();
        assert_eq!(r, vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn midrank_tie_pair() {
        let r = midranks(&[10.0, 20.0, 20.0, 30.0]).unwrap();
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn midrank_all_equal() {
        let r = midranks(&[5.0; 4]).unwrap();
        assert_eq!(r, vec![2.5; 4]);
    }

    #[test]
    fn rank_sum_invariant() {
        // Sum of midranks is always n(n+1)/2 regardless of ties.
        let xs = [3.0, 3.0, 1.0, 7.0, 7.0, 7.0, 2.0];
        let r = midranks(&xs).unwrap();
        let n = xs.len() as f64;
        assert!((r.iter().sum::<f64>() - n * (n + 1.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn tie_groups_detects_runs() {
        assert_eq!(
            tie_groups(&[1.0, 2.0, 2.0, 3.0, 3.0, 3.0]).unwrap(),
            vec![2, 3]
        );
        assert_eq!(tie_groups(&[1.0, 2.0, 3.0]).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn tie_correction_value() {
        // groups of 2 and 3: (8-2) + (27-3) = 30
        assert_eq!(
            tie_correction(&[1.0, 2.0, 2.0, 3.0, 3.0, 3.0]).unwrap(),
            30.0
        );
    }

    #[test]
    fn empty_is_error() {
        assert_eq!(midranks(&[]), Err(StatsError::EmptyInput));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use aml_propcheck::prelude::*;

    proptest! {
        /// Midranks always sum to n(n+1)/2, for any finite input.
        #[test]
        fn prop_rank_sum(xs in aml_propcheck::collection::vec(-1e6f64..1e6, 1..64)) {
            let r = midranks(&xs).unwrap();
            let n = xs.len() as f64;
            prop_assert!((r.iter().sum::<f64>() - n * (n + 1.0) / 2.0).abs() < 1e-6);
        }

        /// Ranks respect the value ordering: x_i < x_j ⇒ rank_i < rank_j.
        #[test]
        fn prop_rank_monotone(xs in aml_propcheck::collection::vec(-1e6f64..1e6, 2..32)) {
            let r = midranks(&xs).unwrap();
            for i in 0..xs.len() {
                for j in 0..xs.len() {
                    if xs[i] < xs[j] {
                        prop_assert!(r[i] < r[j]);
                    } else if xs[i] == xs[j] {
                        prop_assert_eq!(r[i], r[j]);
                    }
                }
            }
        }
    }
}
