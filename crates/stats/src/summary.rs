//! Pairwise significance matrices in the layout of the paper's Table 1.
//!
//! Table 1 reports, per algorithm, its balanced accuracy (`mean ± std`) and
//! p-values `P(x, y)` of the one-sided Wilcoxon test with alternative
//! "`x` has less balanced accuracy than `y`". [`PairwiseMatrix`] holds the
//! paired score vectors for every algorithm and renders that table.

use crate::descriptive::Summary;
use crate::wilcoxon::{wilcoxon_signed_rank, Alternative};
use crate::{Result, StatsError};

/// One cell of the significance matrix.
#[derive(Debug, Clone, PartialEq)]
pub enum SignificanceCell {
    /// Diagonal — an algorithm is never compared against itself.
    NotApplicable,
    /// One-sided p-value for "row is worse than column".
    P(f64),
    /// The test degenerated (all paired differences were exactly zero).
    Degenerate,
}

impl std::fmt::Display for SignificanceCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SignificanceCell::NotApplicable => write!(f, "NA"),
            SignificanceCell::P(p) => {
                if *p >= 0.01 {
                    write!(f, "{p:.3}")
                } else {
                    write!(f, "{p:.2e}")
                }
            }
            SignificanceCell::Degenerate => write!(f, "degen"),
        }
    }
}

/// Paired per-test-set scores for a set of named algorithms, plus rendering
/// of the paper-style comparison table.
#[derive(Debug, Clone)]
pub struct PairwiseMatrix {
    names: Vec<String>,
    scores: Vec<Vec<f64>>,
}

impl PairwiseMatrix {
    /// Create an empty matrix.
    pub fn new() -> Self {
        PairwiseMatrix {
            names: Vec::new(),
            scores: Vec::new(),
        }
    }

    /// Register an algorithm with its per-test-set scores. All algorithms
    /// must supply the same number of scores (paired design).
    ///
    /// # Errors
    /// [`StatsError::LengthMismatch`] when the score vector length differs
    /// from previously added algorithms; [`StatsError::EmptyInput`] on an
    /// empty score vector.
    pub fn add(&mut self, name: impl Into<String>, scores: Vec<f64>) -> Result<()> {
        if scores.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        if let Some(first) = self.scores.first() {
            if first.len() != scores.len() {
                return Err(StatsError::LengthMismatch {
                    left: first.len(),
                    right: scores.len(),
                });
            }
        }
        crate::check_finite(&scores)?;
        self.names.push(name.into());
        self.scores.push(scores);
        Ok(())
    }

    /// Algorithm names in insertion order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Scores of algorithm `i`.
    pub fn scores(&self, i: usize) -> &[f64] {
        &self.scores[i]
    }

    /// Number of registered algorithms.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no algorithm has been registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// `P(row, col)`: one-sided Wilcoxon p-value for the alternative
    /// "row's scores are less than col's".
    pub fn p_value(&self, row: usize, col: usize) -> SignificanceCell {
        if row == col {
            return SignificanceCell::NotApplicable;
        }
        match wilcoxon_signed_rank(&self.scores[row], &self.scores[col], Alternative::Less) {
            Ok(r) => SignificanceCell::P(r.p_value),
            Err(_) => SignificanceCell::Degenerate,
        }
    }

    /// Per-algorithm summaries (mean ± std etc.).
    pub fn summaries(&self) -> Result<Vec<Summary>> {
        self.scores.iter().map(|s| Summary::of(s)).collect()
    }

    /// Render a table in the paper's format: one row per algorithm with its
    /// balanced accuracy and the p-values against each algorithm named in
    /// `against` (Table 1 uses "no feedback", "within ALE", "cross ALE").
    ///
    /// Unknown names in `against` are skipped silently so callers can reuse
    /// one column layout across experiments.
    pub fn render(&self, against: &[&str]) -> Result<String> {
        let cols: Vec<usize> = against
            .iter()
            .filter_map(|a| self.names.iter().position(|n| n == a))
            .collect();
        let summaries = self.summaries()?;

        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>18}",
            "Algorithm (X)", "balanced accuracy"
        ));
        for &c in &cols {
            out.push_str(&format!(" {:>22}", format!("P(X, {})", self.names[c])));
        }
        out.push('\n');
        out.push_str(&"-".repeat(28 + 19 + cols.len() * 23));
        out.push('\n');
        for (i, name) in self.names.iter().enumerate() {
            out.push_str(&format!("{:<28} {:>18}", name, summaries[i].pct()));
            for &c in &cols {
                out.push_str(&format!(" {:>22}", self.p_value(i, c).to_string()));
            }
            out.push('\n');
        }
        Ok(out)
    }
}

impl Default for PairwiseMatrix {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> PairwiseMatrix {
        let mut m = PairwiseMatrix::new();
        m.add("weak", vec![0.5, 0.52, 0.48, 0.51, 0.49, 0.50, 0.53, 0.47])
            .unwrap();
        m.add(
            "strong",
            vec![0.7, 0.72, 0.69, 0.71, 0.68, 0.73, 0.70, 0.69],
        )
        .unwrap();
        m
    }

    #[test]
    fn diagonal_is_na() {
        let m = demo();
        assert_eq!(m.p_value(0, 0), SignificanceCell::NotApplicable);
    }

    #[test]
    fn weaker_algorithm_has_small_p_against_stronger() {
        let m = demo();
        match m.p_value(0, 1) {
            SignificanceCell::P(p) => assert!(p < 0.05, "p = {p}"),
            other => panic!("unexpected {other:?}"),
        }
        match m.p_value(1, 0) {
            SignificanceCell::P(p) => assert!(p > 0.9, "p = {p}"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let mut m = demo();
        assert!(matches!(
            m.add("bad", vec![0.1, 0.2]),
            Err(StatsError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn render_contains_all_rows_and_columns() {
        let m = demo();
        let t = m.render(&["weak", "strong"]).unwrap();
        assert!(t.contains("weak"));
        assert!(t.contains("strong"));
        assert!(t.contains("P(X, weak)"));
        assert!(t.contains("NA"));
    }

    #[test]
    fn render_skips_unknown_column() {
        let m = demo();
        let t = m.render(&["nonexistent", "weak"]).unwrap();
        assert!(!t.contains("nonexistent"));
        assert!(t.contains("P(X, weak)"));
    }

    #[test]
    fn degenerate_cell_for_identical_scores() {
        let mut m = PairwiseMatrix::new();
        m.add("a", vec![0.5, 0.5, 0.5]).unwrap();
        m.add("b", vec![0.5, 0.5, 0.5]).unwrap();
        assert_eq!(m.p_value(0, 1), SignificanceCell::Degenerate);
    }

    #[test]
    fn cell_display_formats() {
        assert_eq!(SignificanceCell::P(0.123).to_string(), "0.123");
        assert_eq!(SignificanceCell::P(0.0001).to_string(), "1.00e-4");
        assert_eq!(SignificanceCell::NotApplicable.to_string(), "NA");
    }
}
