//! Percentile-bootstrap confidence intervals.
//!
//! The experiment harness reports a bootstrap CI on mean balanced accuracy
//! alongside the paper's `mean ± std`, which makes the "who wins" shape
//! comparisons in EXPERIMENTS.md less sensitive to a single lucky split.

use crate::{check_finite, Result, StatsError};
use aml_rng::rngs::StdRng;
use aml_rng::{Rng, SeedableRng};

/// A two-sided percentile bootstrap confidence interval for the mean.
#[derive(Debug, Clone, PartialEq)]
pub struct BootstrapCi {
    /// Point estimate (sample mean).
    pub mean: f64,
    /// Lower confidence bound.
    pub lo: f64,
    /// Upper confidence bound.
    pub hi: f64,
    /// Confidence level, e.g. `0.95`.
    pub level: f64,
    /// Number of bootstrap resamples drawn.
    pub resamples: usize,
}

/// Percentile bootstrap CI for the mean of `xs`.
///
/// Deterministic given `seed`. `level` is the two-sided confidence level
/// (e.g. 0.95 for a 95% CI).
///
/// # Errors
/// Empty/non-finite input, or `level` outside `(0, 1)`.
pub fn bootstrap_ci_mean(
    xs: &[f64],
    level: f64,
    resamples: usize,
    seed: u64,
) -> Result<BootstrapCi> {
    if xs.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    check_finite(xs)?;
    if !(level > 0.0 && level < 1.0) {
        return Err(StatsError::InvalidProbability(level));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let n = xs.len();
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut s = 0.0;
        for _ in 0..n {
            s += xs[rng.gen_range(0..n)];
        }
        means.push(s / n as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite means compare"));
    let alpha = (1.0 - level) / 2.0;
    let lo = crate::descriptive::percentile(&means, alpha)?;
    let hi = crate::descriptive::percentile(&means, 1.0 - alpha)?;
    Ok(BootstrapCi {
        mean: crate::descriptive::mean(xs)?,
        lo,
        hi,
        level,
        resamples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_brackets_mean() {
        let xs: Vec<f64> = (0..50).map(|i| (i % 7) as f64).collect();
        let ci = bootstrap_ci_mean(&xs, 0.95, 500, 42).unwrap();
        assert!(ci.lo <= ci.mean && ci.mean <= ci.hi);
    }

    #[test]
    fn ci_deterministic_per_seed() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let a = bootstrap_ci_mean(&xs, 0.9, 200, 7).unwrap();
        let b = bootstrap_ci_mean(&xs, 0.9, 200, 7).unwrap();
        assert_eq!(a, b);
        let c = bootstrap_ci_mean(&xs, 0.9, 200, 8).unwrap();
        assert_ne!(a.lo, c.lo);
    }

    #[test]
    fn degenerate_sample_collapses() {
        let ci = bootstrap_ci_mean(&[3.0; 10], 0.95, 100, 1).unwrap();
        assert_eq!(ci.lo, 3.0);
        assert_eq!(ci.hi, 3.0);
    }

    #[test]
    fn invalid_level_rejected() {
        assert!(bootstrap_ci_mean(&[1.0], 1.0, 10, 0).is_err());
        assert!(bootstrap_ci_mean(&[1.0], 0.0, 10, 0).is_err());
    }

    #[test]
    fn wider_level_gives_wider_interval() {
        let xs: Vec<f64> = (0..40).map(|i| (i as f64 * 1.3).sin() * 10.0).collect();
        let narrow = bootstrap_ci_mean(&xs, 0.5, 2000, 9).unwrap();
        let wide = bootstrap_ci_mean(&xs, 0.99, 2000, 9).unwrap();
        assert!(wide.hi - wide.lo >= narrow.hi - narrow.lo);
    }
}
