//! Effect sizes: Cliff's delta and the paired median difference.
//!
//! P-values say whether an accuracy difference is *real*; effect sizes say
//! whether it is *big enough to care about*. EXPERIMENTS.md reports both
//! for the Table-1 comparisons (the paper only reports p-values, which is
//! exactly the kind of gap a reproduction should fill).

use crate::{check_finite, Result, StatsError};

/// Magnitude bands for Cliff's delta (Romano et al. conventions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EffectMagnitude {
    /// |δ| < 0.147
    Negligible,
    /// |δ| < 0.33
    Small,
    /// |δ| < 0.474
    Medium,
    /// |δ| ≥ 0.474
    Large,
}

/// Cliff's delta result.
#[derive(Debug, Clone, PartialEq)]
pub struct CliffsDelta {
    /// δ ∈ [−1, 1]: P(x > y) − P(x < y) over all pairs.
    pub delta: f64,
    /// Conventional magnitude band of |δ|.
    pub magnitude: EffectMagnitude,
}

/// Compute Cliff's delta between two (unpaired) samples: the probability
/// that a random `x` exceeds a random `y`, minus the reverse.
///
/// # Errors
/// Empty or non-finite inputs.
pub fn cliffs_delta(x: &[f64], y: &[f64]) -> Result<CliffsDelta> {
    if x.is_empty() || y.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    check_finite(x)?;
    check_finite(y)?;
    let mut gt = 0i64;
    let mut lt = 0i64;
    for &a in x {
        for &b in y {
            if a > b {
                gt += 1;
            } else if a < b {
                lt += 1;
            }
        }
    }
    let delta = (gt - lt) as f64 / (x.len() * y.len()) as f64;
    let ad = delta.abs();
    let magnitude = if ad < 0.147 {
        EffectMagnitude::Negligible
    } else if ad < 0.33 {
        EffectMagnitude::Small
    } else if ad < 0.474 {
        EffectMagnitude::Medium
    } else {
        EffectMagnitude::Large
    };
    Ok(CliffsDelta { delta, magnitude })
}

/// Median of the paired differences `x_i − y_i` (a robust paired effect
/// size matching the Wilcoxon test's pairing).
pub fn median_paired_difference(x: &[f64], y: &[f64]) -> Result<f64> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    let diffs: Vec<f64> = x.iter().zip(y).map(|(a, b)| a - b).collect();
    crate::descriptive::median(&diffs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_have_zero_delta() {
        let x = [1.0, 2.0, 3.0];
        let d = cliffs_delta(&x, &x).unwrap();
        assert_eq!(d.delta, 0.0);
        assert_eq!(d.magnitude, EffectMagnitude::Negligible);
    }

    #[test]
    fn disjoint_samples_have_extreme_delta() {
        let lo = [1.0, 2.0, 3.0];
        let hi = [10.0, 11.0];
        let d = cliffs_delta(&hi, &lo).unwrap();
        assert_eq!(d.delta, 1.0);
        assert_eq!(d.magnitude, EffectMagnitude::Large);
        let d2 = cliffs_delta(&lo, &hi).unwrap();
        assert_eq!(d2.delta, -1.0);
    }

    #[test]
    fn overlapping_samples_are_graded() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 3.0, 4.0, 5.0];
        let d = cliffs_delta(&x, &y).unwrap();
        // gt pairs: (2,?)=(3,2)(4,2)(4,3)=... count: x>y pairs = 3; x<y = 10; ties 3.
        assert!((d.delta - (3.0 - 10.0) / 16.0).abs() < 1e-12);
    }

    #[test]
    fn magnitude_bands() {
        // Construct deltas in each band via mostly-overlapping samples.
        let base: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let shifted: Vec<f64> = (0..100).map(|i| i as f64 + 10.0).collect();
        let d = cliffs_delta(&shifted, &base).unwrap();
        assert!(d.delta > 0.0);
    }

    #[test]
    fn median_paired_difference_basic() {
        let x = [1.0, 2.0, 3.0];
        let y = [0.0, 0.0, 0.0];
        assert_eq!(median_paired_difference(&x, &y).unwrap(), 2.0);
        assert!(median_paired_difference(&x, &[1.0]).is_err());
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(cliffs_delta(&[], &[1.0]).is_err());
        assert!(cliffs_delta(&[f64::NAN], &[1.0]).is_err());
    }
}
