//! Descriptive statistics: mean, variance, median, percentiles and a
//! convenience [`Summary`] aggregate.
//!
//! All functions validate that inputs are non-empty and finite, and return
//! [`crate::StatsError`] instead of panicking or silently
//! producing NaN.

use crate::{check_finite, Result, StatsError};

/// Arithmetic mean of a sample.
///
/// # Errors
/// Returns [`StatsError::EmptyInput`] for an empty slice and
/// [`StatsError::NonFiniteInput`] if any element is NaN/infinite.
pub fn mean(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    check_finite(xs)?;
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Unbiased (n-1 denominator) sample variance.
///
/// A single-element sample has zero variance by convention here (the paper's
/// tables report `± std` over repeated runs, and a single run simply shows
/// `± 0`), rather than being an error.
pub fn sample_var(xs: &[f64]) -> Result<f64> {
    let m = mean(xs)?;
    if xs.len() < 2 {
        return Ok(0.0);
    }
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    Ok(ss / (xs.len() - 1) as f64)
}

/// Unbiased sample standard deviation (square root of [`sample_var`]).
pub fn sample_std(xs: &[f64]) -> Result<f64> {
    Ok(sample_var(xs)?.sqrt())
}

/// Population (n denominator) variance. Used when the values are the entire
/// population of interest — e.g. the variance of ALE values across the fixed
/// set of ensemble members, which is exactly the quantity the feedback
/// algorithm thresholds.
pub fn population_var(xs: &[f64]) -> Result<f64> {
    let m = mean(xs)?;
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    Ok(ss / xs.len() as f64)
}

/// Population standard deviation (square root of [`population_var`]).
pub fn population_std(xs: &[f64]) -> Result<f64> {
    Ok(population_var(xs)?.sqrt())
}

/// Median via [`percentile`] with `p = 0.5`.
pub fn median(xs: &[f64]) -> Result<f64> {
    percentile(xs, 0.5)
}

/// Linear-interpolation percentile (the "linear"/type-7 definition used by
/// NumPy's default), `p` in `[0, 1]`.
///
/// # Errors
/// [`StatsError::InvalidProbability`] when `p` is outside `[0, 1]`, plus the
/// usual empty/non-finite errors.
pub fn percentile(xs: &[f64], p: f64) -> Result<f64> {
    if xs.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    check_finite(xs)?;
    if !(0.0..=1.0).contains(&p) {
        return Err(StatsError::InvalidProbability(p));
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
    let h = p * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        Ok(sorted[lo])
    } else {
        let frac = h - lo as f64;
        Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Minimum of a finite non-empty sample.
pub fn min(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    check_finite(xs)?;
    Ok(xs.iter().cloned().fold(f64::INFINITY, f64::min))
}

/// Maximum of a finite non-empty sample.
pub fn max(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    check_finite(xs)?;
    Ok(xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max))
}

/// A five-number-plus summary of a sample, computed in one pass over the
/// sorted data. Used by the experiment harness to report accuracy
/// distributions in the same `mean ± std` form as the paper's Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased sample standard deviation.
    pub std: f64,
    /// Minimum observation.
    pub min: f64,
    /// 25th percentile.
    pub q25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q75: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Compute the summary of `xs`.
    pub fn of(xs: &[f64]) -> Result<Self> {
        Ok(Summary {
            n: xs.len(),
            mean: mean(xs)?,
            std: sample_std(xs)?,
            min: min(xs)?,
            q25: percentile(xs, 0.25)?,
            median: median(xs)?,
            q75: percentile(xs, 0.75)?,
            max: max(xs)?,
        })
    }

    /// Format as `mean% ± std%` the way the paper's tables print balanced
    /// accuracy (values are assumed to be fractions in `[0, 1]`).
    pub fn pct(&self) -> String {
        format!(
            "{:.1}% \u{00b1} {:.1}%",
            self.mean * 100.0,
            self.std * 100.0
        )
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} std={:.4} min={:.4} q25={:.4} med={:.4} q75={:.4} max={:.4}",
            self.n, self.mean, self.std, self.min, self.q25, self.median, self.q75, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_constants() {
        assert_eq!(mean(&[2.0, 2.0, 2.0]).unwrap(), 2.0);
    }

    #[test]
    fn mean_empty_is_error() {
        assert_eq!(mean(&[]), Err(StatsError::EmptyInput));
    }

    #[test]
    fn mean_nan_is_error() {
        assert_eq!(mean(&[1.0, f64::NAN]), Err(StatsError::NonFiniteInput));
    }

    #[test]
    fn variance_matches_hand_computation() {
        // var([1,2,3,4]) with n-1 denominator = 5/3
        let v = sample_var(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((v - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn variance_of_singleton_is_zero() {
        assert_eq!(sample_var(&[7.0]).unwrap(), 0.0);
    }

    #[test]
    fn population_var_uses_n_denominator() {
        let v = population_var(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((v - 1.25).abs() < 1e-12);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]).unwrap(), 2.5);
    }

    #[test]
    fn percentile_endpoints() {
        let xs = [10.0, 20.0, 30.0];
        assert_eq!(percentile(&xs, 0.0).unwrap(), 10.0);
        assert_eq!(percentile(&xs, 1.0).unwrap(), 30.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((percentile(&xs, 0.25).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_out_of_range() {
        assert_eq!(
            percentile(&[1.0], 1.5),
            Err(StatsError::InvalidProbability(1.5))
        );
    }

    #[test]
    fn summary_fields_consistent() {
        let xs = [0.5, 0.7, 0.6, 0.9, 0.4];
        let s = Summary::of(&xs).unwrap();
        assert_eq!(s.n, 5);
        assert_eq!(s.min, 0.4);
        assert_eq!(s.max, 0.9);
        assert!(s.q25 <= s.median && s.median <= s.q75);
        assert!(s.pct().contains('%'));
    }

    #[test]
    fn min_max() {
        assert_eq!(min(&[3.0, -1.0, 2.0]).unwrap(), -1.0);
        assert_eq!(max(&[3.0, -1.0, 2.0]).unwrap(), 3.0);
    }
}
