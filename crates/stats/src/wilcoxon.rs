//! One-sided and two-sided Wilcoxon signed-rank test for paired samples.
//!
//! This is the statistical test behind every p-value in the paper (Table 1
//! and the §4.2 UCL numbers): *"we use the p-values reported by the
//! one-sided Wilcoxon signed ranked test"*, with the alternative hypothesis
//! that one algorithm's balanced accuracy is *less* than another's.
//!
//! ## Method
//!
//! Given paired observations `(x_i, y_i)`:
//!
//! 1. Form differences `d_i = x_i − y_i` and drop exact zeros (the classic
//!    Wilcoxon convention, matching `scipy` `zero_method="wilcox"`).
//! 2. Rank `|d_i|` with midranks for ties.
//! 3. `W⁺ = Σ ranks of positive differences`.
//! 4. For `n ≤ EXACT_LIMIT` compute the exact null distribution of `W⁺` by
//!    dynamic programming over doubled ranks (doubling makes midranks
//!    integral so the DP is over integers); otherwise use the normal
//!    approximation with tie and continuity corrections.
//!
//! The exact path enumerates `P(W⁺ ≤ w)` over all `2ⁿ` equally likely sign
//! assignments in `O(n · Σranks)` time instead of `O(2ⁿ)`.

use crate::ranks::{midranks, tie_correction};
use crate::{Result, StatsError};

/// Largest `n` (non-zero differences) for which the exact distribution is
/// used. 25 keeps the DP tables tiny (≤ 25 · 1300 entries) while covering
/// the paper's n = 20 test-set protocol exactly.
pub const EXACT_LIMIT: usize = 25;

/// Direction of the alternative hypothesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Alternative {
    /// H1: the first sample is stochastically **smaller** (`x < y`). This is
    /// the paper's convention: `P(no feedback, X)` tests whether
    /// "no feedback" has *less* balanced accuracy than algorithm `X`.
    Less,
    /// H1: the first sample is stochastically **greater** (`x > y`).
    Greater,
    /// H1: the samples differ in either direction.
    TwoSided,
}

/// Outcome of a Wilcoxon signed-rank test.
#[derive(Debug, Clone, PartialEq)]
pub struct WilcoxonResult {
    /// The `W⁺` statistic: sum of ranks of positive differences.
    pub w_plus: f64,
    /// The `W⁻` statistic: sum of ranks of negative differences.
    pub w_minus: f64,
    /// Number of non-zero differences actually ranked.
    pub n_used: usize,
    /// The p-value under the requested alternative.
    pub p_value: f64,
    /// Whether the exact distribution (true) or the normal approximation
    /// (false) produced the p-value.
    pub exact: bool,
}

/// Run the Wilcoxon signed-rank test on paired samples `x` and `y`.
///
/// # Errors
/// - [`StatsError::LengthMismatch`] if the samples differ in length.
/// - [`StatsError::EmptyInput`] if the samples are empty **or** every
///   difference is exactly zero (no information about direction).
/// - [`StatsError::NonFiniteInput`] on NaN/infinite values.
pub fn wilcoxon_signed_rank(x: &[f64], y: &[f64], alt: Alternative) -> Result<WilcoxonResult> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    crate::check_finite(x)?;
    crate::check_finite(y)?;

    let diffs: Vec<f64> = x
        .iter()
        .zip(y.iter())
        .map(|(a, b)| a - b)
        .filter(|d| *d != 0.0)
        .collect();
    if diffs.is_empty() {
        return Err(StatsError::EmptyInput);
    }

    let abs: Vec<f64> = diffs.iter().map(|d| d.abs()).collect();
    let ranks = midranks(&abs)?;
    let n = diffs.len();

    let mut w_plus = 0.0;
    for (d, r) in diffs.iter().zip(ranks.iter()) {
        if *d > 0.0 {
            w_plus += r;
        }
    }
    let total: f64 = ranks.iter().sum();
    let w_minus = total - w_plus;

    let (p, exact) = if n <= EXACT_LIMIT {
        (exact_p(&ranks, w_plus, w_minus, alt), true)
    } else {
        (normal_p(&abs, &ranks, w_plus, alt)?, false)
    };

    Ok(WilcoxonResult {
        w_plus,
        w_minus,
        n_used: n,
        p_value: p.clamp(0.0, 1.0),
        exact,
    })
}

/// Exact tail probability of `W⁺` via DP over doubled (integral) ranks.
///
/// Every one of the `2ⁿ` sign assignments is equally likely under H0; the DP
/// counts, for each achievable doubled-rank sum `s`, how many assignments
/// reach it.
fn exact_p(ranks: &[f64], w_plus: f64, w_minus: f64, alt: Alternative) -> f64 {
    // Doubling midranks (k.5 ranks become odd integers) keeps the DP integral.
    let doubled: Vec<usize> = ranks
        .iter()
        .map(|r| {
            let d = (r * 2.0).round();
            debug_assert!((d - r * 2.0).abs() < 1e-9, "midranks are multiples of 0.5");
            d as usize
        })
        .collect();
    let max_sum: usize = doubled.iter().sum();

    // counts[s] = number of sign assignments with doubled W+ equal to s.
    let mut counts = vec![0f64; max_sum + 1];
    counts[0] = 1.0;
    for &r in &doubled {
        // Iterate downwards so each rank is used at most once (0/1 knapsack).
        for s in (r..=max_sum).rev() {
            counts[s] += counts[s - r];
        }
    }
    let denom = 2f64.powi(doubled.len() as i32);

    let cdf_leq = |w: f64| -> f64 {
        let target = (w * 2.0).round() as usize;
        counts[..=target.min(max_sum)].iter().sum::<f64>() / denom
    };

    match alt {
        // Small W+ (few positive differences) supports "x < y".
        Alternative::Less => cdf_leq(w_plus),
        // Small W- supports "x > y"; by symmetry P(W+ >= w) = P(W+ <= max - w).
        Alternative::Greater => cdf_leq(w_minus),
        Alternative::TwoSided => (2.0 * cdf_leq(w_plus.min(w_minus))).min(1.0),
    }
}

/// Normal approximation with tie and continuity corrections.
fn normal_p(abs: &[f64], ranks: &[f64], w_plus: f64, alt: Alternative) -> Result<f64> {
    let n = ranks.len() as f64;
    let mean = n * (n + 1.0) / 4.0;
    let tie = tie_correction(abs)?;
    let var = n * (n + 1.0) * (2.0 * n + 1.0) / 24.0 - tie / 48.0;
    if var <= 0.0 {
        // All differences identical in magnitude and fully tied; degenerate.
        return Ok(1.0);
    }
    let sd = var.sqrt();
    // Continuity correction: shrink |W+ - mean| by 0.5 toward the mean.
    let z_less = (w_plus - mean + 0.5) / sd;
    let z_greater = (w_plus - mean - 0.5) / sd;
    Ok(match alt {
        Alternative::Less => std_normal_cdf(z_less),
        Alternative::Greater => 1.0 - std_normal_cdf(z_greater),
        Alternative::TwoSided => {
            let p = if w_plus < mean {
                std_normal_cdf(z_less)
            } else {
                1.0 - std_normal_cdf(z_greater)
            };
            (2.0 * p).min(1.0)
        }
    })
}

/// Standard normal CDF via the complementary error function.
pub fn std_normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

/// Complementary error function, Numerical-Recipes rational Chebyshev
/// approximation (absolute error < 1.2e-7, plenty for p-value reporting).
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a}");
    }

    #[test]
    fn rejects_length_mismatch() {
        let e = wilcoxon_signed_rank(&[1.0], &[1.0, 2.0], Alternative::Less);
        assert!(matches!(e, Err(StatsError::LengthMismatch { .. })));
    }

    #[test]
    fn all_zero_differences_is_error() {
        let e = wilcoxon_signed_rank(&[1.0, 2.0], &[1.0, 2.0], Alternative::Less);
        assert_eq!(e, Err(StatsError::EmptyInput));
    }

    #[test]
    fn statistics_partition_total_rank_sum() {
        let x = [1.0, 5.0, 3.0, 9.0, 2.0];
        let y = [2.0, 4.0, 7.0, 1.0, 2.5];
        let r = wilcoxon_signed_rank(&x, &y, Alternative::TwoSided).unwrap();
        let n = r.n_used as f64;
        approx(r.w_plus + r.w_minus, n * (n + 1.0) / 2.0, 1e-9);
    }

    #[test]
    fn clearly_smaller_sample_has_small_p_less() {
        let x: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..12).map(|i| i as f64 + 5.0).collect();
        let r = wilcoxon_signed_rank(&x, &y, Alternative::Less).unwrap();
        assert!(r.exact);
        // All differences negative: W+ = 0, exact p = 2^-12.
        approx(r.p_value, 2f64.powi(-12), 1e-12);
        let r2 = wilcoxon_signed_rank(&x, &y, Alternative::Greater).unwrap();
        assert!(r2.p_value > 0.999);
    }

    #[test]
    fn symmetry_between_less_and_greater() {
        let x = [0.3, 0.5, 0.1, 0.9, 0.4, 0.7];
        let y = [0.6, 0.2, 0.8, 0.3, 0.55, 0.65];
        let less = wilcoxon_signed_rank(&x, &y, Alternative::Less).unwrap();
        let greater = wilcoxon_signed_rank(&y, &x, Alternative::Greater).unwrap();
        approx(less.p_value, greater.p_value, 1e-12);
    }

    #[test]
    fn matches_textbook_exact_value() {
        // Differences d = [-1, +2, -3, +4, -5]: distinct magnitudes so the
        // ranks are 1..5 and W+ = 2 + 4 = 6. Subsets of {1..5} with sum ≤ 6
        // number 13 (hand enumeration), so P(W+ ≤ 6) = 13/32 = 0.40625 —
        // the classic textbook value (scipy agrees).
        let x = [1.0, 4.0, 2.0, 8.0, 3.0];
        let y = [2.0, 2.0, 5.0, 4.0, 8.0];
        let r = wilcoxon_signed_rank(&x, &y, Alternative::Less).unwrap();
        assert!(r.exact);
        assert_eq!(r.w_plus, 6.0);
        approx(r.p_value, 0.40625, 1e-12);
    }

    #[test]
    fn two_sided_doubles_smaller_tail() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let y = [3.0, 4.0, 5.0, 6.0, 7.0, 2.0];
        let less = wilcoxon_signed_rank(&x, &y, Alternative::Less).unwrap();
        let two = wilcoxon_signed_rank(&x, &y, Alternative::TwoSided).unwrap();
        assert!(two.p_value <= 2.0 * less.p_value + 1e-12);
    }

    #[test]
    fn large_sample_uses_normal_approximation() {
        let x: Vec<f64> = (0..60).map(|i| (i as f64 * 0.37).sin()).collect();
        let y: Vec<f64> = (0..60).map(|i| (i as f64 * 0.37).sin() + 0.3).collect();
        let r = wilcoxon_signed_rank(&x, &y, Alternative::Less).unwrap();
        assert!(!r.exact);
        assert!(r.p_value < 1e-6);
    }

    #[test]
    fn normal_cdf_sanity() {
        approx(std_normal_cdf(0.0), 0.5, 1e-6);
        approx(std_normal_cdf(1.96), 0.975, 1e-3);
        approx(std_normal_cdf(-1.96), 0.025, 1e-3);
    }

    /// Brute-force the exact distribution on tiny inputs and compare.
    #[test]
    fn exact_matches_brute_force_enumeration() {
        let x = [0.9, 0.4, 0.7, 0.2, 0.6];
        let y = [0.5, 0.8, 0.3, 0.65, 0.1];
        let diffs: Vec<f64> = x.iter().zip(y.iter()).map(|(a, b)| a - b).collect();
        let abs: Vec<f64> = diffs.iter().map(|d| d.abs()).collect();
        let ranks = midranks(&abs).unwrap();
        let w_obs: f64 = diffs
            .iter()
            .zip(ranks.iter())
            .filter(|(d, _)| **d > 0.0)
            .map(|(_, r)| r)
            .sum();

        // Enumerate all 2^5 sign assignments.
        let n = ranks.len();
        let mut le = 0usize;
        for mask in 0..(1usize << n) {
            let w: f64 = (0..n)
                .filter(|i| mask >> i & 1 == 1)
                .map(|i| ranks[i])
                .sum();
            if w <= w_obs + 1e-12 {
                le += 1;
            }
        }
        let brute = le as f64 / (1usize << n) as f64;
        let r = wilcoxon_signed_rank(&x, &y, Alternative::Less).unwrap();
        approx(r.p_value, brute, 1e-12);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use aml_propcheck::prelude::*;

    proptest! {
        /// Exact DP must agree with brute-force enumeration for any small
        /// paired sample (ties and zeros included).
        #[test]
        fn prop_exact_equals_enumeration(
            pairs in aml_propcheck::collection::vec((-5i32..=5, -5i32..=5), 1..10)
        ) {
            let x: Vec<f64> = pairs.iter().map(|(a, _)| *a as f64).collect();
            let y: Vec<f64> = pairs.iter().map(|(_, b)| *b as f64).collect();
            let diffs: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a - b)
                .filter(|d| *d != 0.0).collect();
            prop_assume!(!diffs.is_empty());

            let abs: Vec<f64> = diffs.iter().map(|d| d.abs()).collect();
            let ranks = midranks(&abs).unwrap();
            let w_obs: f64 = diffs.iter().zip(&ranks)
                .filter(|(d, _)| **d > 0.0).map(|(_, r)| *r).sum();
            let n = ranks.len();
            let mut le = 0usize;
            for mask in 0..(1usize << n) {
                let w: f64 = (0..n).filter(|i| mask >> i & 1 == 1)
                    .map(|i| ranks[i]).sum();
                if w <= w_obs + 1e-9 { le += 1; }
            }
            let brute = le as f64 / (1usize << n) as f64;
            let r = wilcoxon_signed_rank(&x, &y, Alternative::Less).unwrap();
            prop_assert!((r.p_value - brute).abs() < 1e-9,
                "dp={} brute={}", r.p_value, brute);
        }

        /// p-values are always in [0, 1] and Less/Greater are complementary
        /// in the sense p_less + p_greater ≥ 1 (they overlap at W = w_obs).
        #[test]
        fn prop_p_in_unit_interval(
            pairs in aml_propcheck::collection::vec((-100f64..100.0, -100f64..100.0), 2..40)
        ) {
            let x: Vec<f64> = pairs.iter().map(|(a, _)| *a).collect();
            let y: Vec<f64> = pairs.iter().map(|(_, b)| *b).collect();
            if let Ok(r) = wilcoxon_signed_rank(&x, &y, Alternative::Less) {
                prop_assert!((0.0..=1.0).contains(&r.p_value));
                let g = wilcoxon_signed_rank(&x, &y, Alternative::Greater).unwrap();
                prop_assert!(r.p_value + g.p_value >= 1.0 - 1e-9);
            }
        }
    }
}
