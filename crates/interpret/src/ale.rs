//! First-order Accumulated Local Effects (ALE).
//!
//! ALE explains how one feature influences a model's prediction *on
//! average*, without the unrealistic extrapolation of partial dependence:
//! instead of evaluating the model on synthetic points far from the data, it
//! accumulates the *local* finite differences
//!
//! ```text
//! effect_k = mean over rows i with x_j(i) ∈ (z_{k-1}, z_k] of
//!            f(z_k, x_{-j}(i)) − f(z_{k-1}, x_{-j}(i))
//! ALE(z_k) = Σ_{l ≤ k} effect_l, centered to zero data-weighted mean
//! ```
//!
//! For classification, `f` is the predicted probability of a chosen target
//! class ([`AleConfig::target_class`]) — the natural choice for the paper's
//! binary "Scream vs rest" problem is the positive class.

use crate::grid::Grid;
use crate::{InterpretError, Result};
use aml_dataset::Dataset;
use aml_models::Classifier;

/// Configuration for an ALE computation.
#[derive(Debug, Clone, PartialEq)]
pub struct AleConfig {
    /// Class whose predicted probability is explained.
    pub target_class: usize,
}

impl Default for AleConfig {
    fn default() -> Self {
        // Class 1 = the positive class in binary problems ("use Scream").
        AleConfig { target_class: 1 }
    }
}

/// One model's ALE curve on a fixed grid.
#[derive(Debug, Clone, PartialEq)]
pub struct AleCurve {
    /// The feature this curve explains.
    pub feature: usize,
    /// Grid points (length `n_intervals + 1`).
    pub grid: Vec<f64>,
    /// Centered accumulated effects at each grid point (same length as
    /// `grid`).
    pub values: Vec<f64>,
    /// Rows that fell into each interval (length `n_intervals`). Empty
    /// intervals contribute a zero local effect.
    pub interval_counts: Vec<usize>,
}

impl AleCurve {
    /// Linearly interpolate the curve at `x` (clamped to the grid range).
    pub fn eval(&self, x: f64) -> f64 {
        let x = x.clamp(self.grid[0], *self.grid.last().expect("grid non-empty"));
        // Find the surrounding grid points.
        let hi_idx = self
            .grid
            .partition_point(|&p| p < x)
            .clamp(1, self.grid.len() - 1);
        let lo_idx = hi_idx - 1;
        let (x0, x1) = (self.grid[lo_idx], self.grid[hi_idx]);
        let (y0, y1) = (self.values[lo_idx], self.values[hi_idx]);
        if x1 > x0 {
            y0 + (y1 - y0) * (x - x0) / (x1 - x0)
        } else {
            y0
        }
    }
}

/// Compute the first-order ALE curve of `model` for `feature` over `data`,
/// using the supplied `grid`. The grid is passed in (rather than derived
/// here) so that multiple models can be evaluated on an identical grid —
/// the cross-model variance of Figures 1/2 is only meaningful on a shared
/// grid.
pub fn ale_curve(
    model: &dyn Classifier,
    data: &Dataset,
    feature: usize,
    grid: &Grid,
    config: &AleConfig,
) -> Result<AleCurve> {
    if data.is_empty() {
        return Err(InterpretError::EmptyData);
    }
    if feature >= data.n_features() {
        return Err(InterpretError::BadFeature {
            index: feature,
            n_features: data.n_features(),
        });
    }
    if config.target_class >= model.n_classes() {
        return Err(InterpretError::BadClass {
            class: config.target_class,
            n_classes: model.n_classes(),
        });
    }

    let _span = aml_telemetry::span!("interpret.ale.curve");
    aml_telemetry::ledger::emit_with(|| aml_telemetry::LedgerEvent::AleCurveComputed {
        feature: feature as u64,
        model: model.name().to_string(),
        method: "ale".to_string(),
        grid_points: grid.points().len() as u64,
        rows: data.n_rows() as u64,
    });
    let k = grid.n_intervals();
    aml_telemetry::counter_add("interpret.ale.cells", k as u64);
    aml_telemetry::counter_add("interpret.ale.predictions", 2 * data.n_rows() as u64);
    let mut sums = vec![0.0; k];
    let mut counts = vec![0usize; k];

    let mut row_buf = vec![0.0; data.n_features()];
    for i in 0..data.n_rows() {
        let row = data.row(i);
        // Defensive: a non-finite feature value cannot be binned; skip the
        // row (counted) rather than accumulate garbage into an interval.
        if !row[feature].is_finite() {
            aml_telemetry::counter_add("ale.nonfinite_dropped", 1);
            continue;
        }
        let interval = grid.interval_of(row[feature]);
        let (z_lo, z_hi) = (grid.points()[interval], grid.points()[interval + 1]);

        row_buf.copy_from_slice(row);
        row_buf[feature] = z_hi;
        let p_hi = model.predict_proba_row(&row_buf)?[config.target_class];
        row_buf[feature] = z_lo;
        let p_lo = model.predict_proba_row(&row_buf)?[config.target_class];

        sums[interval] += p_hi - p_lo;
        counts[interval] += 1;
    }

    // Accumulate mean local effects; empty intervals carry zero effect.
    let mut values = Vec::with_capacity(k + 1);
    values.push(0.0);
    let mut acc = 0.0;
    for interval in 0..k {
        if counts[interval] > 0 {
            acc += sums[interval] / counts[interval] as f64;
        }
        values.push(acc);
    }

    // Center: subtract the data-weighted mean of the *interval midpoint*
    // values (standard ALE centering — the expected ALE over the data
    // distribution becomes zero).
    let total: usize = counts.iter().sum();
    if total > 0 {
        let mut weighted = 0.0;
        for interval in 0..k {
            let mid = 0.5 * (values[interval] + values[interval + 1]);
            weighted += mid * counts[interval] as f64;
        }
        let mean = weighted / total as f64;
        for v in &mut values {
            *v -= mean;
        }
    }

    Ok(AleCurve {
        feature,
        grid: grid.points().to_vec(),
        values,
        interval_counts: counts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aml_dataset::synth;
    use aml_models::tree::TreeParams;
    use aml_models::DecisionTree;

    /// A handcrafted "model" with a known closed-form probability so the ALE
    /// can be checked analytically: p(class 1) = clamp(x_0, 0, 1); feature 1
    /// ignored.
    struct LinearInX0;

    impl Classifier for LinearInX0 {
        fn n_classes(&self) -> usize {
            2
        }
        fn n_features(&self) -> usize {
            2
        }
        fn predict_proba_row(&self, row: &[f64]) -> aml_models::Result<Vec<f64>> {
            let p = row[0].clamp(0.0, 1.0);
            Ok(vec![1.0 - p, p])
        }
        fn name(&self) -> &'static str {
            "linear_in_x0"
        }
    }

    fn unit_square_data(n: usize, seed: u64) -> Dataset {
        synth::noisy_xor(n, 0.0, seed).unwrap() // features uniform in [0,1]²
    }

    #[test]
    fn ale_of_linear_model_is_linear_with_unit_slope() {
        let ds = unit_square_data(500, 1);
        let grid = Grid::uniform(aml_dataset::FeatureDomain::continuous(0.0, 1.0), 10).unwrap();
        let curve = ale_curve(&LinearInX0, &ds, 0, &grid, &AleConfig::default()).unwrap();
        // ALE of f(x) = x is x − E[x] ≈ x − 0.5.
        for (z, v) in curve.grid.iter().zip(&curve.values) {
            assert!(
                (v - (z - 0.5)).abs() < 0.05,
                "ALE({z}) = {v}, expected ≈ {}",
                z - 0.5
            );
        }
    }

    #[test]
    fn ale_of_ignored_feature_is_flat() {
        let ds = unit_square_data(500, 2);
        let grid = Grid::uniform(aml_dataset::FeatureDomain::continuous(0.0, 1.0), 10).unwrap();
        let curve = ale_curve(&LinearInX0, &ds, 1, &grid, &AleConfig::default()).unwrap();
        for v in &curve.values {
            assert!(
                v.abs() < 1e-12,
                "feature 1 is ignored, ALE must be 0, got {v}"
            );
        }
    }

    #[test]
    fn ale_is_centered() {
        let ds = unit_square_data(400, 3);
        let tree = DecisionTree::fit(&ds, TreeParams::default()).unwrap();
        let grid = Grid::quantile(&ds.column(0).unwrap(), 16).unwrap();
        let curve = ale_curve(&tree, &ds, 0, &grid, &AleConfig::default()).unwrap();
        // Data-weighted mean of interval midpoints ≈ 0.
        let total: usize = curve.interval_counts.iter().sum();
        let mut weighted = 0.0;
        for k in 0..curve.interval_counts.len() {
            let mid = 0.5 * (curve.values[k] + curve.values[k + 1]);
            weighted += mid * curve.interval_counts[k] as f64 / total as f64;
        }
        assert!(weighted.abs() < 1e-9, "centering failed: {weighted}");
    }

    #[test]
    fn interval_counts_partition_the_data() {
        let ds = unit_square_data(300, 4);
        let grid = Grid::quantile(&ds.column(0).unwrap(), 8).unwrap();
        let curve = ale_curve(&LinearInX0, &ds, 0, &grid, &AleConfig::default()).unwrap();
        assert_eq!(curve.interval_counts.iter().sum::<usize>(), 300);
    }

    #[test]
    fn eval_interpolates() {
        let curve = AleCurve {
            feature: 0,
            grid: vec![0.0, 1.0, 2.0],
            values: vec![0.0, 1.0, 0.0],
            interval_counts: vec![1, 1],
        };
        assert_eq!(curve.eval(0.5), 0.5);
        assert_eq!(curve.eval(1.5), 0.5);
        assert_eq!(curve.eval(-10.0), 0.0); // clamped
        assert_eq!(curve.eval(10.0), 0.0);
    }

    #[test]
    fn bad_inputs_rejected() {
        let ds = unit_square_data(50, 5);
        let grid = Grid::uniform(aml_dataset::FeatureDomain::continuous(0.0, 1.0), 4).unwrap();
        assert!(matches!(
            ale_curve(&LinearInX0, &ds, 7, &grid, &AleConfig::default()),
            Err(InterpretError::BadFeature { .. })
        ));
        assert!(matches!(
            ale_curve(&LinearInX0, &ds, 0, &grid, &AleConfig { target_class: 5 }),
            Err(InterpretError::BadClass { .. })
        ));
        let empty = ds.empty_like();
        assert!(matches!(
            ale_curve(&LinearInX0, &empty, 0, &grid, &AleConfig::default()),
            Err(InterpretError::EmptyData)
        ));
    }

    #[test]
    fn tree_ale_detects_the_split_feature() {
        // Label depends only on feature 0 → its ALE range should dwarf
        // feature 1's.
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![i as f64 / 200.0, (i as f64 * 7.7) % 1.0])
            .collect();
        let labels: Vec<usize> = rows.iter().map(|r| usize::from(r[0] > 0.5)).collect();
        let ds = Dataset::from_rows(&rows, &labels, 2).unwrap();
        let tree = DecisionTree::fit(&ds, TreeParams::default()).unwrap();
        let g0 = Grid::quantile(&ds.column(0).unwrap(), 10).unwrap();
        let g1 = Grid::quantile(&ds.column(1).unwrap(), 10).unwrap();
        let c0 = ale_curve(&tree, &ds, 0, &g0, &AleConfig::default()).unwrap();
        let c1 = ale_curve(&tree, &ds, 1, &g1, &AleConfig::default()).unwrap();
        let range = |c: &AleCurve| {
            c.values.iter().cloned().fold(f64::MIN, f64::max)
                - c.values.iter().cloned().fold(f64::MAX, f64::min)
        };
        assert!(
            range(&c0) > 5.0 * range(&c1).max(1e-6),
            "feature 0 range {} vs feature 1 range {}",
            range(&c0),
            range(&c1)
        );
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use aml_dataset::synth;
    use aml_models::tree::TreeParams;
    use aml_models::DecisionTree;
    use aml_propcheck::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// ALE values start at the accumulated-zero origin shifted by the
        /// centering constant: successive differences must equal the mean
        /// local effects, i.e. the curve is finite and bounded by the
        /// probability range (slope bounded by 1 in probability units per
        /// interval).
        #[test]
        fn prop_ale_bounded_and_finite(seed in 0u64..200, k in 4usize..24) {
            let ds = synth::two_moons(150, 0.25, seed).unwrap();
            let tree = DecisionTree::fit(
                &ds, TreeParams { max_depth: 6, ..Default::default() }).unwrap();
            let col = ds.column(0).unwrap();
            let grid = Grid::quantile(&col, k).unwrap();
            let curve = ale_curve(&tree, &ds, 0, &grid, &AleConfig::default()).unwrap();
            prop_assert!(curve.values.iter().all(|v| v.is_finite()));
            // Each local effect is a mean of probability differences → |Δ| ≤ 1.
            for w in curve.values.windows(2) {
                prop_assert!((w[1] - w[0]).abs() <= 1.0 + 1e-9);
            }
            // Total span of a probability-output ALE is ≤ number of intervals,
            // and in practice ≤ 2 (it cannot exceed the probability range
            // accumulated in one direction and back).
            let max = curve.values.iter().cloned().fold(f64::MIN, f64::max);
            let min = curve.values.iter().cloned().fold(f64::MAX, f64::min);
            prop_assert!(max - min <= grid.n_intervals() as f64);
        }
    }
}
