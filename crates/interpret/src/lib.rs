//! # aml-interpret
//!
//! Model-agnostic interpretation tools — the machinery behind the paper's
//! feedback algorithm:
//!
//! * [`ale`] — first-order **Accumulated Local Effects** (Apley & Zhu), the
//!   interpretation method the paper uses ("we use ALE in this work");
//! * [`pdp`] — partial dependence and ICE curves (alternative methods the
//!   paper's §3 alludes to with "and other model-agnostic interpretation
//!   methods");
//! * [`variance`] — the cross-model ALE mean/std bands of Figures 1 and 2:
//!   "Compute the standard deviation across the ALE values of models in ℳ";
//! * [`region`] — extraction of the feature subspaces where the std exceeds
//!   the threshold 𝒯, represented as the paper's union of half-space systems
//!   `∪ᵢ Aᵢx ≤ bᵢ` (e.g. `x ≤ 45 ∪ x ≥ 99`);
//! * [`plot`] — CSV / ASCII / SVG rendering of mean±std ALE bands (the
//!   "average ALE plots (along with error-bars)" returned to the user);
//! * [`importance`] — permutation feature importance, the triage companion
//!   to the ALE bands (rely-on-it vs confused-about-it);
//! * [`ale2`] — second-order ALE surfaces for interaction detection (the
//!   firewall's `dst_port × pkts_sent` rate-limit rule is exactly such an
//!   interaction).
//!
//! ## Example
//!
//! ```
//! use aml_dataset::synth;
//! use aml_interpret::{ale::{ale_curve, AleConfig}, grid::Grid};
//! use aml_models::{DecisionTree, tree::TreeParams};
//!
//! let ds = synth::two_moons(200, 0.2, 1).unwrap();
//! let model = DecisionTree::fit(&ds, TreeParams::default()).unwrap();
//! let grid = Grid::quantile(&ds.column(0).unwrap(), 16).unwrap();
//! let curve = ale_curve(&model, &ds, 0, &grid, &AleConfig::default()).unwrap();
//! assert_eq!(curve.values.len(), curve.grid.len());
//! ```

pub mod ale;
pub mod ale2;
pub mod grid;
pub mod importance;
pub mod pdp;
pub mod plot;
pub mod region;
pub mod variance;

pub use ale::{ale_curve, AleConfig, AleCurve};
pub use ale2::{ale_surface, rank_interactions, AleSurface};
pub use grid::Grid;
pub use importance::{permutation_importance, FeatureImportance};
pub use region::{FeatureRegions, HalfspaceSystem, Interval};
pub use variance::{ale_band, AleBand};

/// Errors from interpretation routines.
#[derive(Debug, Clone, PartialEq)]
pub enum InterpretError {
    /// The evaluation dataset is empty.
    EmptyData,
    /// The requested feature index is out of range.
    BadFeature {
        /// Offending feature index.
        index: usize,
        /// Number of features.
        n_features: usize,
    },
    /// The grid has fewer than 2 points (no interval to accumulate over).
    DegenerateGrid,
    /// The target class index is out of range.
    BadClass {
        /// Offending class index.
        class: usize,
        /// Number of classes.
        n_classes: usize,
    },
    /// No models were supplied for a cross-model computation.
    NoModels,
    /// Model layer failure.
    Model(aml_models::ModelError),
    /// Dataset layer failure.
    Data(aml_dataset::DataError),
    /// Invalid threshold or other parameter.
    InvalidParameter(String),
}

impl std::fmt::Display for InterpretError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpretError::EmptyData => write!(f, "evaluation dataset is empty"),
            InterpretError::BadFeature { index, n_features } => {
                write!(f, "feature {index} out of range (< {n_features})")
            }
            InterpretError::DegenerateGrid => write!(f, "grid needs at least 2 points"),
            InterpretError::BadClass { class, n_classes } => {
                write!(f, "class {class} out of range (< {n_classes})")
            }
            InterpretError::NoModels => write!(f, "no models supplied"),
            InterpretError::Model(e) => write!(f, "model error: {e}"),
            InterpretError::Data(e) => write!(f, "dataset error: {e}"),
            InterpretError::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
        }
    }
}

impl std::error::Error for InterpretError {}

impl From<aml_models::ModelError> for InterpretError {
    fn from(e: aml_models::ModelError) -> Self {
        InterpretError::Model(e)
    }
}

impl From<aml_dataset::DataError> for InterpretError {
    fn from(e: aml_dataset::DataError) -> Self {
        InterpretError::Data(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, InterpretError>;
