//! Feature grids for ALE/PDP evaluation.
//!
//! ALE accumulates over intervals between grid points. Quantile grids (the
//! standard choice) put roughly equal data mass in every interval, so no
//! interval's local effect is estimated from a handful of points; uniform
//! grids are available for plotting against an evenly spaced axis.

use crate::{InterpretError, Result};
use aml_dataset::FeatureDomain;

/// A strictly increasing sequence of grid points over one feature.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    points: Vec<f64>,
}

impl Grid {
    /// Build a quantile grid with (up to) `k` intervals from observed
    /// `values`. Duplicate quantiles (heavily tied data) are collapsed, so
    /// the result may have fewer intervals but is always strictly
    /// increasing.
    ///
    /// # Errors
    /// Empty input (before or after dropping non-finite values), `k == 0`,
    /// or all values identical (no interval).
    pub fn quantile(values: &[f64], k: usize) -> Result<Self> {
        if values.is_empty() {
            return Err(InterpretError::EmptyData);
        }
        if k == 0 {
            return Err(InterpretError::InvalidParameter("k must be >= 1".into()));
        }
        // Non-finite observations carry no ordering information for a
        // quantile grid: drop them — counted, so a degraded grid is
        // observable — rather than panicking inside the sort.
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        let dropped = values.len() - sorted.len();
        if dropped > 0 {
            aml_telemetry::counter_add("ale.nonfinite_dropped", dropped as u64);
        }
        if sorted.is_empty() {
            return Err(InterpretError::EmptyData);
        }
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let mut points = Vec::with_capacity(k + 1);
        for q in 0..=k {
            // Nearest-rank quantile; endpoints land exactly on min/max.
            let pos = (q as f64 / k as f64) * (n - 1) as f64;
            points.push(sorted[pos.round() as usize]);
        }
        points.dedup();
        if points.len() < 2 {
            return Err(InterpretError::DegenerateGrid);
        }
        Ok(Grid { points })
    }

    /// Build a uniform grid with `k` intervals spanning `domain`.
    pub fn uniform(domain: FeatureDomain, k: usize) -> Result<Self> {
        if k == 0 {
            return Err(InterpretError::InvalidParameter("k must be >= 1".into()));
        }
        let (lo, hi) = (domain.lo(), domain.hi());
        // NaN bounds also land here (the comparison is vacuously false).
        if hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
            return Err(InterpretError::DegenerateGrid);
        }
        let points = (0..=k)
            .map(|i| lo + (hi - lo) * i as f64 / k as f64)
            .collect();
        Ok(Grid { points })
    }

    /// Build directly from explicit points (validated strictly increasing).
    pub fn from_points(points: Vec<f64>) -> Result<Self> {
        if points.len() < 2 {
            return Err(InterpretError::DegenerateGrid);
        }
        let increasing = |w: &[f64]| w[1].partial_cmp(&w[0]) == Some(std::cmp::Ordering::Greater);
        if points.windows(2).any(|w| !increasing(w)) || points.iter().any(|p| !p.is_finite()) {
            return Err(InterpretError::InvalidParameter(
                "grid points must be finite and strictly increasing".into(),
            ));
        }
        Ok(Grid { points })
    }

    /// The grid points (length = intervals + 1).
    pub fn points(&self) -> &[f64] {
        &self.points
    }

    /// Number of intervals.
    pub fn n_intervals(&self) -> usize {
        self.points.len() - 1
    }

    /// Smallest grid point.
    pub fn lo(&self) -> f64 {
        self.points[0]
    }

    /// Largest grid point.
    pub fn hi(&self) -> f64 {
        *self.points.last().expect("grid has >= 2 points")
    }

    /// Index of the interval containing `x`: intervals are
    /// `(z_{k-1}, z_k]` for `k = 1..=n`, with values at or below `z_0`
    /// assigned to interval 0 and values above `z_n` clamped to the last —
    /// the conventional ALE binning.
    pub fn interval_of(&self, x: f64) -> usize {
        if x <= self.points[0] {
            return 0;
        }
        // partition_point returns the first index whose point is >= x; the
        // interval index is that minus one.
        let idx = self.points.partition_point(|&p| p < x);
        idx.saturating_sub(1).min(self.n_intervals() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_grid_spans_data() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let g = Grid::quantile(&values, 10).unwrap();
        assert_eq!(g.lo(), 0.0);
        assert_eq!(g.hi(), 99.0);
        assert_eq!(g.n_intervals(), 10);
    }

    #[test]
    fn quantile_grid_collapses_ties() {
        let mut values = vec![5.0; 50];
        values.extend(vec![9.0; 50]);
        let g = Grid::quantile(&values, 10).unwrap();
        assert_eq!(g.points(), &[5.0, 9.0]);
    }

    #[test]
    fn quantile_grid_drops_nonfinite_values_instead_of_panicking() {
        let mut values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        values.push(f64::NAN);
        values.push(f64::INFINITY);
        values.push(f64::NEG_INFINITY);
        let g = Grid::quantile(&values, 10).unwrap();
        assert_eq!(g.lo(), 0.0);
        assert_eq!(g.hi(), 99.0);
        assert!(g.points().iter().all(|p| p.is_finite()));
    }

    #[test]
    fn quantile_grid_of_only_nonfinite_values_is_empty_data() {
        assert_eq!(
            Grid::quantile(&[f64::NAN, f64::INFINITY], 4),
            Err(InterpretError::EmptyData)
        );
    }

    #[test]
    fn constant_data_is_degenerate() {
        assert_eq!(
            Grid::quantile(&[3.0; 10], 5),
            Err(InterpretError::DegenerateGrid)
        );
    }

    #[test]
    fn uniform_grid_is_even() {
        let g = Grid::uniform(FeatureDomain::continuous(0.0, 10.0), 5).unwrap();
        assert_eq!(g.points(), &[0.0, 2.0, 4.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn interval_of_binning_convention() {
        let g = Grid::from_points(vec![0.0, 1.0, 2.0, 3.0]).unwrap();
        assert_eq!(g.interval_of(-5.0), 0); // below the grid
        assert_eq!(g.interval_of(0.0), 0); // at z_0
        assert_eq!(g.interval_of(0.5), 0);
        assert_eq!(g.interval_of(1.0), 0); // (z_0, z_1] is interval 0
        assert_eq!(g.interval_of(1.1), 1);
        assert_eq!(g.interval_of(3.0), 2);
        assert_eq!(g.interval_of(99.0), 2); // above the grid → clamped
    }

    #[test]
    fn from_points_rejects_disorder() {
        assert!(Grid::from_points(vec![0.0, 0.0, 1.0]).is_err());
        assert!(Grid::from_points(vec![1.0, 0.0]).is_err());
        assert!(Grid::from_points(vec![1.0]).is_err());
        assert!(Grid::from_points(vec![0.0, f64::NAN]).is_err());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use aml_propcheck::prelude::*;

    proptest! {
        /// interval_of always returns a valid interval, and the chosen
        /// interval actually contains the clamped value.
        #[test]
        fn prop_interval_of_in_bounds(
            x in -1e4f64..1e4,
            k in 2usize..32,
        ) {
            let g = Grid::uniform(
                aml_dataset::FeatureDomain::continuous(-100.0, 100.0), k).unwrap();
            let i = g.interval_of(x);
            prop_assert!(i < g.n_intervals());
            let lo = g.points()[i];
            let hi = g.points()[i + 1];
            let clamped = x.clamp(g.lo(), g.hi());
            prop_assert!(clamped >= lo - 1e-9 && clamped <= hi + 1e-9);
        }
    }
}
