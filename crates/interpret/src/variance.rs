//! Cross-model ALE mean/std bands — the quantity the paper thresholds.
//!
//! Step 4 of the paper's algorithm: *"Compute the standard deviation across
//! the ALE values of models in ℳ for feature X_s ∈ X in its range R(X_s)."*
//! Every model's ALE curve is computed on the **same grid** (otherwise the
//! pointwise std would compare apples to oranges), then the per-grid-point
//! mean and population standard deviation across models form the band that
//! is plotted (Figures 1/2) and thresholded ([`crate::region`]).

use crate::ale::{ale_curve, AleConfig, AleCurve};
use crate::grid::Grid;
use crate::pdp::pdp_curve;
use crate::{InterpretError, Result};
use aml_dataset::Dataset;
use aml_models::Classifier;

/// The cross-model ALE band for one feature.
#[derive(Debug, Clone, PartialEq)]
pub struct AleBand {
    /// Explained feature.
    pub feature: usize,
    /// Human-readable feature name (copied from the dataset).
    pub feature_name: String,
    /// Grid points.
    pub grid: Vec<f64>,
    /// Mean ALE value across models at each grid point.
    pub mean: Vec<f64>,
    /// Population std of ALE values across models at each grid point.
    pub std: Vec<f64>,
    /// Number of models the band aggregates.
    pub n_models: usize,
}

impl AleBand {
    /// The largest std anywhere on the grid.
    pub fn max_std(&self) -> f64 {
        self.std.iter().cloned().fold(0.0, f64::max)
    }

    /// Mean std over the grid (used to set the paper's median-based
    /// threshold across features).
    pub fn mean_std(&self) -> f64 {
        self.std.iter().sum::<f64>() / self.std.len() as f64
    }
}

/// Compute the cross-model ALE band for `feature`: one ALE curve per model
/// on a shared quantile grid derived from `data`, then pointwise mean/std.
pub fn ale_band(
    models: &[&dyn Classifier],
    data: &Dataset,
    feature: usize,
    n_intervals: usize,
    config: &AleConfig,
) -> Result<AleBand> {
    if models.is_empty() {
        return Err(InterpretError::NoModels);
    }
    let column = data
        .column(feature)
        .map_err(|_| InterpretError::BadFeature {
            index: feature,
            n_features: data.n_features(),
        })?;
    let grid = Grid::quantile(&column, n_intervals)?;
    ale_band_on_grid(models, data, feature, &grid, config)
}

/// Like [`ale_band`] but on a caller-supplied grid (e.g. a uniform grid over
/// the declared feature domain, which Figure 1 uses for `config.link_rate`).
pub fn ale_band_on_grid(
    models: &[&dyn Classifier],
    data: &Dataset,
    feature: usize,
    grid: &Grid,
    config: &AleConfig,
) -> Result<AleBand> {
    let _span = aml_telemetry::span!("interpret.variance.band");
    if models.is_empty() {
        return Err(InterpretError::NoModels);
    }
    let curves: Vec<AleCurve> = models
        .iter()
        .map(|m| ale_curve(*m, data, feature, grid, config))
        .collect::<Result<_>>()?;
    Ok(band_from_curves(data, feature, grid, &curves))
}

/// Aggregate pre-computed curves (which must share `grid`) into a band.
/// Exposed so Cross-ALE can pool curves from several AutoML runs.
pub fn band_from_curves(
    data: &Dataset,
    feature: usize,
    grid: &Grid,
    curves: &[AleCurve],
) -> AleBand {
    let g = grid.points();
    let n = curves.len() as f64;
    let mut mean = vec![0.0; g.len()];
    for c in curves {
        debug_assert_eq!(c.grid.len(), g.len(), "curves must share the grid");
        for (m, v) in mean.iter_mut().zip(&c.values) {
            *m += v / n;
        }
    }
    let mut std = vec![0.0; g.len()];
    for c in curves {
        for (s, (v, m)) in std.iter_mut().zip(c.values.iter().zip(&mean)) {
            *s += (v - m) * (v - m) / n;
        }
    }
    for s in &mut std {
        *s = s.sqrt();
    }
    let feature_name = data
        .features()
        .get(feature)
        .map(|f| f.name.clone())
        .unwrap_or_else(|| format!("x{feature}"));
    AleBand {
        feature,
        feature_name,
        grid: g.to_vec(),
        mean,
        std,
        n_models: curves.len(),
    }
}

/// Like [`ale_band_on_grid`] but aggregating **partial-dependence** curves
/// instead of ALE — the drop-in alternative interpretation method the
/// paper's §3 alludes to ("ALE plots (and other model-agnostic
/// interpretation methods)"). The returned band reuses [`AleBand`]; its
/// `mean` holds the cross-model mean PDP value per grid point.
pub fn pdp_band_on_grid(
    models: &[&dyn Classifier],
    data: &Dataset,
    feature: usize,
    grid: &Grid,
    config: &AleConfig,
) -> Result<AleBand> {
    let _span = aml_telemetry::span!("interpret.variance.pdp_band");
    if models.is_empty() {
        return Err(InterpretError::NoModels);
    }
    let curves: Vec<AleCurve> = models
        .iter()
        .map(|m| {
            let pdp = pdp_curve(*m, data, feature, grid, config)?;
            Ok(AleCurve {
                feature,
                grid: pdp.grid,
                values: pdp.values,
                interval_counts: Vec::new(), // PDP has no interval binning
            })
        })
        .collect::<Result<_>>()?;
    Ok(band_from_curves(data, feature, grid, &curves))
}

/// Compute bands for **every** feature of `data` (the paper's algorithm
/// iterates over the whole feature set X).
pub fn ale_bands_all_features(
    models: &[&dyn Classifier],
    data: &Dataset,
    n_intervals: usize,
    config: &AleConfig,
) -> Result<Vec<AleBand>> {
    (0..data.n_features())
        .map(|f| ale_band(models, data, f, n_intervals, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aml_dataset::synth;
    use aml_models::tree::TreeParams;
    use aml_models::DecisionTree;

    /// Fixed-probability stub classifiers with controllable disagreement.
    struct Constant(f64);
    impl Classifier for Constant {
        fn n_classes(&self) -> usize {
            2
        }
        fn n_features(&self) -> usize {
            2
        }
        fn predict_proba_row(&self, _row: &[f64]) -> aml_models::Result<Vec<f64>> {
            Ok(vec![1.0 - self.0, self.0])
        }
        fn name(&self) -> &'static str {
            "constant"
        }
    }

    /// p(class 1) = clamp(slope * x0, 0, 1).
    struct Slope(f64);
    impl Classifier for Slope {
        fn n_classes(&self) -> usize {
            2
        }
        fn n_features(&self) -> usize {
            2
        }
        fn predict_proba_row(&self, row: &[f64]) -> aml_models::Result<Vec<f64>> {
            let p = (self.0 * row[0]).clamp(0.0, 1.0);
            Ok(vec![1.0 - p, p])
        }
        fn name(&self) -> &'static str {
            "slope"
        }
    }

    #[test]
    fn identical_models_have_zero_std() {
        let ds = synth::noisy_xor(200, 0.0, 1).unwrap();
        let a = Slope(1.0);
        let b = Slope(1.0);
        let band = ale_band(&[&a, &b], &ds, 0, 8, &AleConfig::default()).unwrap();
        assert!(band.std.iter().all(|&s| s < 1e-12));
        assert_eq!(band.n_models, 2);
    }

    #[test]
    fn constant_models_have_flat_zero_ale() {
        let ds = synth::noisy_xor(100, 0.0, 2).unwrap();
        let a = Constant(0.3);
        let b = Constant(0.9);
        let band = ale_band(&[&a, &b], &ds, 0, 8, &AleConfig::default()).unwrap();
        // Both ALEs are identically zero (no local effect), so mean and std
        // are zero despite very different absolute probabilities — ALE
        // measures *effects*, not offsets.
        assert!(band.mean.iter().all(|&m| m.abs() < 1e-12));
        assert!(band.std.iter().all(|&s| s < 1e-12));
    }

    #[test]
    fn disagreeing_slopes_produce_positive_std() {
        let ds = synth::noisy_xor(300, 0.0, 3).unwrap();
        let a = Slope(1.0);
        let b = Slope(-1.0); // clamped at 0 ⇒ flat; strongly disagrees
        let band = ale_band(&[&a, &b], &ds, 0, 8, &AleConfig::default()).unwrap();
        assert!(band.max_std() > 0.05, "max std {}", band.max_std());
    }

    #[test]
    fn bands_for_all_features_cover_every_column() {
        let ds = synth::gaussian_blobs(120, 3, 2, 1.0, 4).unwrap();
        let t1 = DecisionTree::fit(
            &ds,
            TreeParams {
                seed: 1,
                max_features: Some(2),
                ..Default::default()
            },
        )
        .unwrap();
        let t2 = DecisionTree::fit(
            &ds,
            TreeParams {
                seed: 2,
                max_features: Some(2),
                ..Default::default()
            },
        )
        .unwrap();
        let bands = ale_bands_all_features(&[&t1, &t2], &ds, 8, &AleConfig::default()).unwrap();
        assert_eq!(bands.len(), 3);
        for (f, b) in bands.iter().enumerate() {
            assert_eq!(b.feature, f);
            assert_eq!(b.mean.len(), b.grid.len());
            assert_eq!(b.std.len(), b.grid.len());
        }
    }

    #[test]
    fn empty_model_list_rejected() {
        let ds = synth::two_moons(50, 0.2, 5).unwrap();
        assert_eq!(
            ale_band(&[], &ds, 0, 8, &AleConfig::default()),
            Err(InterpretError::NoModels)
        );
    }

    #[test]
    fn pdp_band_identical_models_zero_std_and_uncentred_mean() {
        let ds = synth::noisy_xor(150, 0.0, 9).unwrap();
        let a = Slope(1.0);
        let b = Slope(1.0);
        let grid = crate::grid::Grid::quantile(&ds.column(0).unwrap(), 8).unwrap();
        let band = pdp_band_on_grid(&[&a, &b], &ds, 0, &grid, &AleConfig::default()).unwrap();
        assert!(band.std.iter().all(|&s| s < 1e-12));
        // PDP of p(x)=x is the identity — not centered like ALE.
        for (g, m) in band.grid.iter().zip(&band.mean) {
            assert!((m - g).abs() < 1e-9, "PDP({g}) = {m}");
        }
    }

    #[test]
    fn pdp_band_detects_disagreement_like_ale() {
        let ds = synth::noisy_xor(200, 0.0, 10).unwrap();
        let a = Slope(1.0);
        let b = Slope(-1.0);
        let grid = crate::grid::Grid::quantile(&ds.column(0).unwrap(), 8).unwrap();
        let band = pdp_band_on_grid(&[&a, &b], &ds, 0, &grid, &AleConfig::default()).unwrap();
        assert!(band.max_std() > 0.05);
    }

    #[test]
    fn band_carries_feature_name() {
        let ds = synth::two_moons(80, 0.2, 6).unwrap();
        let m = Slope(1.0);
        let band = ale_band(&[&m], &ds, 1, 8, &AleConfig::default()).unwrap();
        assert_eq!(band.feature_name, "x1");
    }
}
