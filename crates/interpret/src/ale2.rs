//! Second-order (two-feature) Accumulated Local Effects.
//!
//! The first-order ALE of [`crate::ale`] explains single features; when the
//! model's behaviour hinges on an *interaction* — like the firewall
//! generator's rate-limit rule, where `dst_port ∈ [443, 445]` changes the
//! meaning of `pkts_sent` — the 1-D curves only show the marginal shadows.
//! The second-order ALE surface isolates the pure interaction effect: how
//! much the joint influence of `(x_j, x_k)` deviates from the sum of their
//! individual effects.
//!
//! Implementation follows Apley & Zhu §3: per 2-D grid cell, accumulate the
//! mean second-order finite difference
//!
//! ```text
//! Δ²f = [f(z_j, z_k) − f(z_j−1, z_k)] − [f(z_j, z_k−1) − f(z_j−1, z_k−1)]
//! ```
//!
//! over the rows whose `(x_j, x_k)` falls in the cell, double-accumulate
//! over both axes, then subtract the accumulated first-order row/column
//! means so the surface is centered with zero marginal effects.

use crate::ale::AleConfig;
use crate::grid::Grid;
use crate::{InterpretError, Result};
use aml_dataset::Dataset;
use aml_models::Classifier;

/// A second-order ALE surface on a 2-D grid.
#[derive(Debug, Clone, PartialEq)]
pub struct AleSurface {
    /// First feature (rows of `values`).
    pub feature_j: usize,
    /// Second feature (columns of `values`).
    pub feature_k: usize,
    /// Grid points along feature j (length `nj + 1`).
    pub grid_j: Vec<f64>,
    /// Grid points along feature k (length `nk + 1`).
    pub grid_k: Vec<f64>,
    /// Centered interaction values, `values[a][b]` at `(grid_j[a],
    /// grid_k[b])`.
    pub values: Vec<Vec<f64>>,
    /// Rows per cell (`nj × nk`).
    pub cell_counts: Vec<Vec<usize>>,
}

impl AleSurface {
    /// The largest absolute interaction value — a scalar "interaction
    /// strength" usable for ranking feature pairs.
    pub fn max_abs(&self) -> f64 {
        self.values
            .iter()
            .flatten()
            .map(|v| v.abs())
            .fold(0.0, f64::max)
    }
}

/// Compute the second-order ALE of `model` for the feature pair
/// `(feature_j, feature_k)` over `data`.
///
/// # Errors
/// Bad feature indices, a feature pair with `j == k`, empty data, or
/// degenerate grids.
pub fn ale_surface(
    model: &dyn Classifier,
    data: &Dataset,
    feature_j: usize,
    feature_k: usize,
    grid_j: &Grid,
    grid_k: &Grid,
    config: &AleConfig,
) -> Result<AleSurface> {
    if data.is_empty() {
        return Err(InterpretError::EmptyData);
    }
    if feature_j == feature_k {
        return Err(InterpretError::InvalidParameter(
            "second-order ALE needs two distinct features".into(),
        ));
    }
    for f in [feature_j, feature_k] {
        if f >= data.n_features() {
            return Err(InterpretError::BadFeature {
                index: f,
                n_features: data.n_features(),
            });
        }
    }
    if config.target_class >= model.n_classes() {
        return Err(InterpretError::BadClass {
            class: config.target_class,
            n_classes: model.n_classes(),
        });
    }

    let nj = grid_j.n_intervals();
    let nk = grid_k.n_intervals();
    let mut sums = vec![vec![0.0; nk]; nj];
    let mut counts = vec![vec![0usize; nk]; nj];

    let mut buf = vec![0.0; data.n_features()];
    for i in 0..data.n_rows() {
        let row = data.row(i);
        let cj = grid_j.interval_of(row[feature_j]);
        let ck = grid_k.interval_of(row[feature_k]);
        let (jl, jh) = (grid_j.points()[cj], grid_j.points()[cj + 1]);
        let (kl, kh) = (grid_k.points()[ck], grid_k.points()[ck + 1]);

        let mut eval = |vj: f64, vk: f64| -> Result<f64> {
            buf.copy_from_slice(row);
            buf[feature_j] = vj;
            buf[feature_k] = vk;
            Ok(model.predict_proba_row(&buf)?[config.target_class])
        };
        let d2 = (eval(jh, kh)? - eval(jl, kh)?) - (eval(jh, kl)? - eval(jl, kl)?);
        sums[cj][ck] += d2;
        counts[cj][ck] += 1;
    }

    // Mean local second differences; empty cells contribute zero.
    let mut local = vec![vec![0.0; nk]; nj];
    for a in 0..nj {
        for b in 0..nk {
            if counts[a][b] > 0 {
                local[a][b] = sums[a][b] / counts[a][b] as f64;
            }
        }
    }

    // Double accumulation to grid nodes ((nj+1) × (nk+1)).
    let mut acc = vec![vec![0.0; nk + 1]; nj + 1];
    for a in 1..=nj {
        for b in 1..=nk {
            acc[a][b] = acc[a - 1][b] + acc[a][b - 1] - acc[a - 1][b - 1] + local[a - 1][b - 1];
        }
    }

    // Center: remove data-weighted accumulated row and column means (the
    // first-order shadows), then the global mean — Apley & Zhu's centering,
    // using cell counts as the weights.
    let total: usize = counts.iter().flatten().sum();
    if total > 0 {
        // Row effect per j-node: weighted mean over k of cell midpoints.
        let node_val = |a: usize, b: usize| -> f64 {
            // Mean of the 4 surrounding nodes = cell midpoint value.
            0.25 * (acc[a][b] + acc[a + 1][b] + acc[a][b + 1] + acc[a + 1][b + 1])
        };
        let mut row_effect = vec![0.0; nj];
        let mut col_effect = vec![0.0; nk];
        let mut row_w = vec![0usize; nj];
        let mut col_w = vec![0usize; nk];
        for a in 0..nj {
            for b in 0..nk {
                row_effect[a] += node_val(a, b) * counts[a][b] as f64;
                col_effect[b] += node_val(a, b) * counts[a][b] as f64;
                row_w[a] += counts[a][b];
                col_w[b] += counts[a][b];
            }
        }
        for a in 0..nj {
            if row_w[a] > 0 {
                row_effect[a] /= row_w[a] as f64;
            }
        }
        for b in 0..nk {
            if col_w[b] > 0 {
                col_effect[b] /= col_w[b] as f64;
            }
        }
        let grand: f64 = (0..nj)
            .flat_map(|a| (0..nk).map(move |b| (a, b)))
            .map(|(a, b)| node_val(a, b) * counts[a][b] as f64)
            .sum::<f64>()
            / total as f64;

        // Subtract marginal effects at the node level (nearest cell's
        // effects; boundary nodes use the adjacent cell).
        for (a, acc_row) in acc.iter_mut().enumerate() {
            let ra = a.min(nj - 1);
            for (b, cell) in acc_row.iter_mut().enumerate() {
                let cb = b.min(nk - 1);
                *cell = *cell - row_effect[ra] - col_effect[cb] + grand;
            }
        }
    }

    Ok(AleSurface {
        feature_j,
        feature_k,
        grid_j: grid_j.points().to_vec(),
        grid_k: grid_k.points().to_vec(),
        values: acc,
        cell_counts: counts,
    })
}

/// Rank all feature pairs of `data` by interaction strength
/// ([`AleSurface::max_abs`]), strongest first. Quadratic in features — fine
/// for the ≤ a-dozen-feature datasets of this paper.
pub fn rank_interactions(
    model: &dyn Classifier,
    data: &Dataset,
    n_intervals: usize,
    config: &AleConfig,
) -> Result<Vec<(usize, usize, f64)>> {
    let mut out = Vec::new();
    for j in 0..data.n_features() {
        for k in (j + 1)..data.n_features() {
            let gj = match Grid::quantile(&data.column(j)?, n_intervals) {
                Ok(g) => g,
                Err(InterpretError::DegenerateGrid) => continue, // constant feature
                Err(e) => return Err(e),
            };
            let gk = match Grid::quantile(&data.column(k)?, n_intervals) {
                Ok(g) => g,
                Err(InterpretError::DegenerateGrid) => continue,
                Err(e) => return Err(e),
            };
            let surface = ale_surface(model, data, j, k, &gj, &gk, config)?;
            out.push((j, k, surface.max_abs()));
        }
    }
    out.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("strengths are finite"));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aml_dataset::synth;
    use aml_models::tree::TreeParams;
    use aml_models::DecisionTree;

    /// Additive model: p = clamp(0.5·x0 + 0.5·x1, 0, 1) — NO interaction.
    struct Additive;
    impl Classifier for Additive {
        fn n_classes(&self) -> usize {
            2
        }
        fn n_features(&self) -> usize {
            2
        }
        fn predict_proba_row(&self, row: &[f64]) -> aml_models::Result<Vec<f64>> {
            let p = (0.5 * row[0] + 0.5 * row[1]).clamp(0.0, 1.0);
            Ok(vec![1.0 - p, p])
        }
        fn name(&self) -> &'static str {
            "additive"
        }
    }

    /// Pure interaction: p = x0 · x1 (both in [0,1]).
    struct Product;
    impl Classifier for Product {
        fn n_classes(&self) -> usize {
            2
        }
        fn n_features(&self) -> usize {
            2
        }
        fn predict_proba_row(&self, row: &[f64]) -> aml_models::Result<Vec<f64>> {
            let p = (row[0] * row[1]).clamp(0.0, 1.0);
            Ok(vec![1.0 - p, p])
        }
        fn name(&self) -> &'static str {
            "product"
        }
    }

    fn unit_square(n: usize, seed: u64) -> Dataset {
        synth::noisy_xor(n, 0.0, seed).unwrap()
    }

    fn grids(ds: &Dataset, k: usize) -> (Grid, Grid) {
        (
            Grid::quantile(&ds.column(0).unwrap(), k).unwrap(),
            Grid::quantile(&ds.column(1).unwrap(), k).unwrap(),
        )
    }

    #[test]
    fn additive_model_has_near_zero_interaction() {
        let ds = unit_square(400, 1);
        let (gj, gk) = grids(&ds, 8);
        let s = ale_surface(&Additive, &ds, 0, 1, &gj, &gk, &AleConfig::default()).unwrap();
        assert!(
            s.max_abs() < 0.02,
            "additive model interaction should vanish, got {}",
            s.max_abs()
        );
    }

    #[test]
    fn product_model_has_clear_interaction() {
        let ds = unit_square(400, 2);
        let (gj, gk) = grids(&ds, 8);
        let s = ale_surface(&Product, &ds, 0, 1, &gj, &gk, &AleConfig::default()).unwrap();
        assert!(
            s.max_abs() > 0.05,
            "x0·x1 interaction must register, got {}",
            s.max_abs()
        );
    }

    #[test]
    fn ranking_puts_product_pair_first() {
        // 3 features: x0·x1 interaction, x2 independent noise.
        struct ProductPlusNoise;
        impl Classifier for ProductPlusNoise {
            fn n_classes(&self) -> usize {
                2
            }
            fn n_features(&self) -> usize {
                3
            }
            fn predict_proba_row(&self, row: &[f64]) -> aml_models::Result<Vec<f64>> {
                let p = (row[0] * row[1] + 0.1 * row[2]).clamp(0.0, 1.0);
                Ok(vec![1.0 - p, p])
            }
            fn name(&self) -> &'static str {
                "product_plus_noise"
            }
        }
        use aml_rng::rngs::StdRng;
        use aml_rng::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let rows: Vec<Vec<f64>> = (0..500)
            .map(|_| vec![rng.gen(), rng.gen(), rng.gen()])
            .collect();
        let labels = vec![0usize; 500];
        let mut ds = Dataset::from_rows(&rows, &labels, 2).unwrap();
        // from_rows requires 2 classes represented for models, but here we
        // only interrogate a stub model — patch one label.
        let _ = &mut ds;
        let ranked = rank_interactions(&ProductPlusNoise, &ds, 6, &AleConfig::default()).unwrap();
        assert_eq!((ranked[0].0, ranked[0].1), (0, 1), "ranking: {ranked:?}");
    }

    #[test]
    fn tree_on_xor_shows_interaction() {
        // XOR is the canonical pure interaction; a fitted tree's surface
        // must register it strongly.
        let ds = unit_square(500, 4);
        let tree = DecisionTree::fit(&ds, TreeParams::default()).unwrap();
        let (gj, gk) = grids(&ds, 8);
        let s = ale_surface(&tree, &ds, 0, 1, &gj, &gk, &AleConfig::default()).unwrap();
        assert!(
            s.max_abs() > 0.1,
            "XOR interaction strength {}",
            s.max_abs()
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        let ds = unit_square(50, 5);
        let (gj, gk) = grids(&ds, 4);
        assert!(matches!(
            ale_surface(&Additive, &ds, 0, 0, &gj, &gk, &AleConfig::default()),
            Err(InterpretError::InvalidParameter(_))
        ));
        assert!(matches!(
            ale_surface(&Additive, &ds, 0, 9, &gj, &gk, &AleConfig::default()),
            Err(InterpretError::BadFeature { .. })
        ));
        let empty = ds.empty_like();
        assert!(matches!(
            ale_surface(&Additive, &empty, 0, 1, &gj, &gk, &AleConfig::default()),
            Err(InterpretError::EmptyData)
        ));
    }

    #[test]
    fn cell_counts_partition_data() {
        let ds = unit_square(300, 6);
        let (gj, gk) = grids(&ds, 6);
        let s = ale_surface(&Product, &ds, 0, 1, &gj, &gk, &AleConfig::default()).unwrap();
        let total: usize = s.cell_counts.iter().flatten().sum();
        assert_eq!(total, 300);
        assert_eq!(s.values.len(), s.grid_j.len());
        assert_eq!(s.values[0].len(), s.grid_k.len());
    }
}
