//! Extraction of high-variance feature subspaces.
//!
//! Step 5 of the paper's algorithm: *"Return the subspace where the standard
//! deviation is high (higher than 𝒯) as the region for the user to sample
//! more points from. These subspaces are essentially a collection of
//! hyperplanes ∪ᵢ Aᵢx ≤ bᵢ … the space need not be continuous: … our
//! feedback returns x ≤ 45 ∪ x ≥ 99."*
//!
//! Implementation: along one feature's grid, collect the maximal runs of
//! grid intervals whose endpoint std exceeds 𝒯 into closed intervals, clamp
//! to the declared feature domain, and expose each interval as a tiny
//! half-space system `Aᵢx ≤ bᵢ` over the full feature vector.

use crate::variance::AleBand;
use crate::{InterpretError, Result};
use aml_dataset::FeatureDomain;

/// A closed interval `[lo, hi]` on one feature's axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
}

impl Interval {
    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether `x` lies inside.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && x <= self.hi
    }
}

/// One `Aᵢ x ≤ bᵢ` system describing a single interval of a single feature
/// inside the full `|X|`-dimensional feature space: two rows, `x_j ≤ hi`
/// and `−x_j ≤ −lo`.
#[derive(Debug, Clone, PartialEq)]
pub struct HalfspaceSystem {
    /// Coefficient matrix, `m × n_features` (row-major rows).
    pub a: Vec<Vec<f64>>,
    /// Right-hand side, length `m`.
    pub b: Vec<f64>,
}

impl HalfspaceSystem {
    /// Whether the full feature vector `x` satisfies `Ax ≤ b`.
    pub fn contains(&self, x: &[f64]) -> bool {
        self.a.iter().zip(&self.b).all(|(row, &bi)| {
            let lhs: f64 = row.iter().zip(x).map(|(a, v)| a * v).sum();
            lhs <= bi + 1e-12
        })
    }
}

/// The high-variance regions of one feature: a union of intervals, i.e. the
/// paper's `∪ᵢ Aᵢx ≤ bᵢ`.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureRegions {
    /// Feature index.
    pub feature: usize,
    /// Feature name (for the human-readable explanation).
    pub feature_name: String,
    /// The threshold used.
    pub threshold: f64,
    /// Maximal high-variance intervals, left to right, non-overlapping.
    pub intervals: Vec<Interval>,
    /// The feature's full domain (for rendering one-sided bounds).
    pub domain: FeatureDomain,
}

impl FeatureRegions {
    /// Extract regions from an ALE band: maximal runs of grid points with
    /// `std > threshold`, each run widened to the span of grid intervals it
    /// touches and clamped to `domain`.
    ///
    /// # Errors
    /// Negative/non-finite threshold.
    pub fn from_band(band: &AleBand, threshold: f64, domain: FeatureDomain) -> Result<Self> {
        let _span = aml_telemetry::span!("interpret.region.extract");
        if !threshold.is_finite() || threshold < 0.0 {
            return Err(InterpretError::InvalidParameter(format!(
                "threshold {threshold} must be finite and >= 0"
            )));
        }
        let g = &band.grid;
        let mut intervals: Vec<Interval> = Vec::new();
        let mut run_start: Option<usize> = None;
        for (i, &s) in band.std.iter().enumerate() {
            if s > threshold {
                run_start.get_or_insert(i);
            } else if let Some(start) = run_start.take() {
                intervals.push(make_interval(g, start, i - 1, domain));
            }
        }
        if let Some(start) = run_start {
            intervals.push(make_interval(g, start, g.len() - 1, domain));
        }
        // Widening each run by one grid interval can make neighbouring runs
        // touch or overlap; merge them so the union is minimal.
        let intervals = merge_touching(intervals);
        Ok(FeatureRegions {
            feature: band.feature,
            feature_name: band.feature_name.clone(),
            threshold,
            intervals,
            domain,
        })
    }

    /// Whether any interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        self.intervals.iter().any(|iv| iv.contains(x))
    }

    /// Total width of the suggested subspace (the "area for the user to
    /// sample" that the paper's threshold discussion trades off).
    pub fn total_width(&self) -> f64 {
        self.intervals.iter().map(Interval::width).sum()
    }

    /// Fraction of the feature's domain covered by the regions.
    pub fn coverage(&self) -> f64 {
        let w = self.domain.width();
        if w > 0.0 {
            (self.total_width() / w).min(1.0)
        } else {
            0.0
        }
    }

    /// The `∪ᵢ Aᵢx ≤ bᵢ` representation over an `n_features`-dimensional
    /// feature space.
    pub fn halfspaces(&self, n_features: usize) -> Vec<HalfspaceSystem> {
        self.intervals
            .iter()
            .map(|iv| {
                let mut upper = vec![0.0; n_features];
                upper[self.feature] = 1.0; //  x_j ≤ hi
                let mut lower = vec![0.0; n_features];
                lower[self.feature] = -1.0; // −x_j ≤ −lo
                HalfspaceSystem {
                    a: vec![upper, lower],
                    b: vec![iv.hi, -iv.lo],
                }
            })
            .collect()
    }

    /// Paper-style human-readable rendering: one-sided at domain edges,
    /// e.g. `config.link_rate <= 45 ∪ config.link_rate >= 99`.
    pub fn describe(&self) -> String {
        if self.intervals.is_empty() {
            return format!(
                "{}: no region exceeds threshold {}",
                self.feature_name, self.threshold
            );
        }
        let eps = 1e-9 * self.domain.width().max(1.0);
        let parts: Vec<String> = self
            .intervals
            .iter()
            .map(|iv| {
                let at_lo = (iv.lo - self.domain.lo()).abs() < eps;
                let at_hi = (self.domain.hi() - iv.hi).abs() < eps;
                match (at_lo, at_hi) {
                    (true, true) => format!("{} unbounded (entire domain)", self.feature_name),
                    (true, false) => format!("{} <= {:.4}", self.feature_name, iv.hi),
                    (false, true) => format!("{} >= {:.4}", self.feature_name, iv.lo),
                    (false, false) => {
                        format!("{:.4} <= {} <= {:.4}", iv.lo, self.feature_name, iv.hi)
                    }
                }
            })
            .collect();
        parts.join(" \u{222a} ")
    }
}

/// Merge sorted intervals that touch or overlap.
fn merge_touching(intervals: Vec<Interval>) -> Vec<Interval> {
    let mut out: Vec<Interval> = Vec::with_capacity(intervals.len());
    for iv in intervals {
        match out.last_mut() {
            Some(last) if iv.lo <= last.hi => last.hi = last.hi.max(iv.hi),
            _ => out.push(iv),
        }
    }
    out
}

/// Widen a run of flagged grid *points* `[start, end]` to the span of grid
/// intervals that touch them: a flagged point means the curve is uncertain
/// there, so both adjacent intervals are worth sampling.
fn make_interval(grid: &[f64], start: usize, end: usize, domain: FeatureDomain) -> Interval {
    let lo = if start == 0 {
        domain.lo()
    } else {
        grid[start - 1]
    };
    let hi = if end + 1 >= grid.len() {
        domain.hi()
    } else {
        grid[end + 1]
    };
    Interval {
        lo: lo.max(domain.lo()),
        hi: hi.min(domain.hi()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variance::AleBand;

    fn band(std: Vec<f64>) -> AleBand {
        let n = std.len();
        AleBand {
            feature: 0,
            feature_name: "config.link_rate".into(),
            grid: (0..n).map(|i| i as f64 * 10.0).collect(),
            mean: vec![0.0; n],
            std,
            n_models: 3,
        }
    }

    fn dom() -> FeatureDomain {
        FeatureDomain::continuous(0.0, 100.0)
    }

    #[test]
    fn no_region_when_all_below_threshold() {
        let b = band(vec![0.01; 11]);
        let r = FeatureRegions::from_band(&b, 0.02, dom()).unwrap();
        assert!(r.intervals.is_empty());
        assert!(r.describe().contains("no region"));
        assert_eq!(r.coverage(), 0.0);
    }

    #[test]
    fn paper_example_shape_low_and_high_ends() {
        // High variance at both ends of the link-rate axis, quiet middle —
        // exactly Figure 1's shape. Grid points at 0,10,…,100.
        let mut std = vec![0.005; 11];
        std[0] = 0.05;
        std[1] = 0.05;
        std[2] = 0.05;
        std[3] = 0.05;
        std[4] = 0.05; // points 0..=4 → x in [0, 50]
        std[10] = 0.05; // point 10 → x in [90, 100]
        let r = FeatureRegions::from_band(&band(std), 0.02, dom()).unwrap();
        assert_eq!(r.intervals.len(), 2);
        assert_eq!(r.intervals[0].lo, 0.0);
        assert_eq!(r.intervals[0].hi, 50.0);
        assert_eq!(r.intervals[1].lo, 90.0);
        assert_eq!(r.intervals[1].hi, 100.0);
        let d = r.describe();
        assert!(d.contains("config.link_rate <= 50"), "{d}");
        assert!(d.contains("config.link_rate >= 90"), "{d}");
        assert!(d.contains('\u{222a}'), "{d}");
    }

    #[test]
    fn interior_region_is_two_sided() {
        let mut std = vec![0.0; 11];
        std[5] = 1.0;
        let r = FeatureRegions::from_band(&band(std), 0.5, dom()).unwrap();
        assert_eq!(r.intervals.len(), 1);
        // Point 5 (x = 50) flagged → widened to adjacent grid points [40, 60].
        assert_eq!(r.intervals[0].lo, 40.0);
        assert_eq!(r.intervals[0].hi, 60.0);
        assert!(r
            .describe()
            .contains("40.0000 <= config.link_rate <= 60.0000"));
    }

    #[test]
    fn halfspace_systems_match_intervals() {
        let mut std = vec![0.0; 11];
        std[2] = 1.0;
        std[8] = 1.0;
        let r = FeatureRegions::from_band(&band(std), 0.5, dom()).unwrap();
        let systems = r.halfspaces(3);
        assert_eq!(systems.len(), 2);
        for (sys, iv) in systems.iter().zip(&r.intervals) {
            // A point inside the interval (other features arbitrary).
            let mid = 0.5 * (iv.lo + iv.hi);
            assert!(sys.contains(&[mid, -999.0, 999.0]));
            // A point outside.
            assert!(!sys.contains(&[iv.hi + 1.0, 0.0, 0.0]));
            assert!(!sys.contains(&[iv.lo - 1.0, 0.0, 0.0]));
        }
    }

    #[test]
    fn contains_and_coverage() {
        let mut std = vec![0.0; 11];
        std[0] = 1.0; // [0, 10]
        let r = FeatureRegions::from_band(&band(std), 0.5, dom()).unwrap();
        assert!(r.contains(5.0));
        assert!(!r.contains(50.0));
        assert!((r.coverage() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn whole_domain_flagged() {
        let r = FeatureRegions::from_band(&band(vec![1.0; 11]), 0.5, dom()).unwrap();
        assert_eq!(r.intervals.len(), 1);
        assert_eq!(r.intervals[0].lo, 0.0);
        assert_eq!(r.intervals[0].hi, 100.0);
        assert!(r.describe().contains("entire domain"));
    }

    #[test]
    fn lower_threshold_gives_wider_regions() {
        // The paper's threshold discussion: lower 𝒯 ⇒ larger subspaces.
        let std = vec![0.01, 0.03, 0.05, 0.03, 0.01, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let tight = FeatureRegions::from_band(&band(std.clone()), 0.04, dom()).unwrap();
        let loose = FeatureRegions::from_band(&band(std), 0.02, dom()).unwrap();
        assert!(loose.total_width() > tight.total_width());
    }

    #[test]
    fn invalid_threshold_rejected() {
        let b = band(vec![0.0; 4]);
        assert!(FeatureRegions::from_band(&b, -1.0, dom()).is_err());
        assert!(FeatureRegions::from_band(&b, f64::NAN, dom()).is_err());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::variance::AleBand;
    use aml_propcheck::prelude::*;

    fn band_of(std: Vec<f64>) -> AleBand {
        let n = std.len();
        AleBand {
            feature: 0,
            feature_name: "f".into(),
            grid: (0..n).map(|i| i as f64).collect(),
            mean: vec![0.0; n],
            std,
            n_models: 2,
        }
    }

    proptest! {
        /// Every flagged grid point ends up inside some interval, and every
        /// interval endpoint stays within the domain. Raising the threshold
        /// never increases coverage.
        #[test]
        fn prop_regions_cover_flagged_points(
            std in aml_propcheck::collection::vec(0.0f64..0.1, 3..40),
            t1 in 0.0f64..0.1,
            t2 in 0.0f64..0.1,
        ) {
            let n = std.len();
            let dom = FeatureDomain::continuous(0.0, (n - 1) as f64);
            let b = band_of(std.clone());
            let (lo_t, hi_t) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
            let loose = FeatureRegions::from_band(&b, lo_t, dom).unwrap();
            let tight = FeatureRegions::from_band(&b, hi_t, dom).unwrap();
            for (i, &s) in std.iter().enumerate() {
                if s > lo_t {
                    prop_assert!(loose.contains(i as f64),
                        "flagged point {i} not covered");
                }
            }
            for iv in loose.intervals.iter().chain(&tight.intervals) {
                prop_assert!(iv.lo >= dom.lo() - 1e-9 && iv.hi <= dom.hi() + 1e-9);
                prop_assert!(iv.lo <= iv.hi);
            }
            prop_assert!(loose.total_width() >= tight.total_width() - 1e-9);
        }
    }
}
