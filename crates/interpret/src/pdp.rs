//! Partial dependence (PDP) and Individual Conditional Expectation (ICE)
//! curves.
//!
//! The paper's algorithm uses ALE, but §3 notes that "other model-agnostic
//! interpretation methods" slot into the same framework. PDP/ICE are the
//! obvious alternatives, and the ablation benches compare PDP-variance
//! feedback against ALE-variance feedback.

use crate::ale::AleConfig;
use crate::grid::Grid;
use crate::{InterpretError, Result};
use aml_dataset::Dataset;
use aml_models::Classifier;

/// A partial-dependence curve: the average model response with one feature
/// clamped to each grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct PdpCurve {
    /// Explained feature.
    pub feature: usize,
    /// Grid points.
    pub grid: Vec<f64>,
    /// `mean_i f(z, x_{-j}(i))` at each grid point.
    pub values: Vec<f64>,
}

/// ICE curves: one response line per data row (PDP is their mean).
#[derive(Debug, Clone, PartialEq)]
pub struct IceCurves {
    /// Explained feature.
    pub feature: usize,
    /// Grid points.
    pub grid: Vec<f64>,
    /// `lines[row][grid_point]`.
    pub lines: Vec<Vec<f64>>,
}

fn validate(
    model: &dyn Classifier,
    data: &Dataset,
    feature: usize,
    config: &AleConfig,
) -> Result<()> {
    if data.is_empty() {
        return Err(InterpretError::EmptyData);
    }
    if feature >= data.n_features() {
        return Err(InterpretError::BadFeature {
            index: feature,
            n_features: data.n_features(),
        });
    }
    if config.target_class >= model.n_classes() {
        return Err(InterpretError::BadClass {
            class: config.target_class,
            n_classes: model.n_classes(),
        });
    }
    Ok(())
}

/// Compute the PDP curve of `model` for `feature` over `data`.
pub fn pdp_curve(
    model: &dyn Classifier,
    data: &Dataset,
    feature: usize,
    grid: &Grid,
    config: &AleConfig,
) -> Result<PdpCurve> {
    validate(model, data, feature, config)?;
    aml_telemetry::ledger::emit_with(|| aml_telemetry::LedgerEvent::AleCurveComputed {
        feature: feature as u64,
        model: model.name().to_string(),
        method: "pdp".to_string(),
        grid_points: grid.points().len() as u64,
        rows: data.n_rows() as u64,
    });
    let mut values = Vec::with_capacity(grid.points().len());
    let mut row_buf = vec![0.0; data.n_features()];
    for &z in grid.points() {
        let mut acc = 0.0;
        for i in 0..data.n_rows() {
            row_buf.copy_from_slice(data.row(i));
            row_buf[feature] = z;
            acc += model.predict_proba_row(&row_buf)?[config.target_class];
        }
        values.push(acc / data.n_rows() as f64);
    }
    Ok(PdpCurve {
        feature,
        grid: grid.points().to_vec(),
        values,
    })
}

/// Compute ICE curves of `model` for `feature` over (up to `max_lines` rows
/// of) `data`. Rows beyond `max_lines` are skipped deterministically by
/// stride so the sample spans the dataset.
pub fn ice_curves(
    model: &dyn Classifier,
    data: &Dataset,
    feature: usize,
    grid: &Grid,
    config: &AleConfig,
    max_lines: usize,
) -> Result<IceCurves> {
    validate(model, data, feature, config)?;
    if max_lines == 0 {
        return Err(InterpretError::InvalidParameter(
            "max_lines must be >= 1".into(),
        ));
    }
    let stride = (data.n_rows() / max_lines).max(1);
    let mut lines = Vec::new();
    let mut row_buf = vec![0.0; data.n_features()];
    for i in (0..data.n_rows()).step_by(stride).take(max_lines) {
        let mut line = Vec::with_capacity(grid.points().len());
        for &z in grid.points() {
            row_buf.copy_from_slice(data.row(i));
            row_buf[feature] = z;
            line.push(model.predict_proba_row(&row_buf)?[config.target_class]);
        }
        lines.push(line);
    }
    Ok(IceCurves {
        feature,
        grid: grid.points().to_vec(),
        lines,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aml_dataset::synth;
    use aml_models::tree::TreeParams;
    use aml_models::DecisionTree;

    struct LinearInX0;
    impl Classifier for LinearInX0 {
        fn n_classes(&self) -> usize {
            2
        }
        fn n_features(&self) -> usize {
            2
        }
        fn predict_proba_row(&self, row: &[f64]) -> aml_models::Result<Vec<f64>> {
            let p = row[0].clamp(0.0, 1.0);
            Ok(vec![1.0 - p, p])
        }
        fn name(&self) -> &'static str {
            "linear_in_x0"
        }
    }

    #[test]
    fn pdp_of_linear_model_equals_identity() {
        let ds = synth::noisy_xor(200, 0.0, 1).unwrap();
        let grid = Grid::uniform(aml_dataset::FeatureDomain::continuous(0.0, 1.0), 5).unwrap();
        let pdp = pdp_curve(&LinearInX0, &ds, 0, &grid, &AleConfig::default()).unwrap();
        for (z, v) in pdp.grid.iter().zip(&pdp.values) {
            assert!((v - z).abs() < 1e-12, "PDP({z}) = {v}");
        }
    }

    #[test]
    fn ice_mean_equals_pdp() {
        let ds = synth::two_moons(100, 0.2, 2).unwrap();
        let tree = DecisionTree::fit(&ds, TreeParams::default()).unwrap();
        let grid = Grid::quantile(&ds.column(0).unwrap(), 6).unwrap();
        let cfg = AleConfig::default();
        let pdp = pdp_curve(&tree, &ds, 0, &grid, &cfg).unwrap();
        let ice = ice_curves(&tree, &ds, 0, &grid, &cfg, usize::MAX).unwrap();
        assert_eq!(ice.lines.len(), ds.n_rows());
        for (g, &pv) in pdp.values.iter().enumerate() {
            let mean: f64 = ice.lines.iter().map(|l| l[g]).sum::<f64>() / ice.lines.len() as f64;
            assert!((mean - pv).abs() < 1e-12);
        }
    }

    #[test]
    fn ice_respects_max_lines() {
        let ds = synth::two_moons(100, 0.2, 3).unwrap();
        let grid = Grid::quantile(&ds.column(0).unwrap(), 4).unwrap();
        let ice = ice_curves(&LinearInX0, &ds, 0, &grid, &AleConfig::default(), 10).unwrap();
        assert!(ice.lines.len() <= 10);
        assert!(!ice.lines.is_empty());
    }

    #[test]
    fn bad_inputs_rejected() {
        let ds = synth::two_moons(50, 0.2, 4).unwrap();
        let grid = Grid::quantile(&ds.column(0).unwrap(), 4).unwrap();
        assert!(pdp_curve(&LinearInX0, &ds, 9, &grid, &AleConfig::default()).is_err());
        assert!(ice_curves(&LinearInX0, &ds, 0, &grid, &AleConfig::default(), 0).is_err());
    }
}
