//! Permutation feature importance.
//!
//! A complementary interpretability tool for the operator's triage: the ALE
//! band says *where along a feature* the ensemble is confused; permutation
//! importance says *how much the model relies on the feature at all*. The
//! firewall walk-through pairs them — a feature with high ALE variance but
//! near-zero importance (like `src_port`) is safe to discard, exactly the
//! §4.2 operator's reasoning.

use crate::{InterpretError, Result};
use aml_dataset::Dataset;
use aml_models::metrics::balanced_accuracy;
use aml_models::Classifier;
use aml_rng::rngs::StdRng;
use aml_rng::seq::SliceRandom;
use aml_rng::SeedableRng;

/// Importance of one feature: the balanced-accuracy drop when its column
/// is shuffled.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureImportance {
    /// Feature index.
    pub feature: usize,
    /// Feature name.
    pub feature_name: String,
    /// Mean accuracy drop over the repeats (≥ 0 means the feature helps;
    /// small negatives are shuffle noise).
    pub importance: f64,
    /// Std of the drop across repeats.
    pub std: f64,
}

/// Compute permutation importance for every feature.
///
/// For each feature, its column is shuffled `repeats` times (seeded) and
/// the model's balanced-accuracy drop relative to the unshuffled baseline
/// is averaged.
pub fn permutation_importance(
    model: &dyn Classifier,
    data: &Dataset,
    repeats: usize,
    seed: u64,
) -> Result<Vec<FeatureImportance>> {
    if data.is_empty() {
        return Err(InterpretError::EmptyData);
    }
    if repeats == 0 {
        return Err(InterpretError::InvalidParameter(
            "repeats must be >= 1".into(),
        ));
    }
    let baseline_preds = model.predict(data)?;
    let baseline = balanced_accuracy(data.labels(), &baseline_preds, data.n_classes())
        .map_err(InterpretError::Model)?;

    let n = data.n_rows();
    let mut out = Vec::with_capacity(data.n_features());
    for feature in 0..data.n_features() {
        let column = data.column(feature)?;
        let mut drops = Vec::with_capacity(repeats);
        for r in 0..repeats {
            let mut rng = StdRng::seed_from_u64(seed ^ (feature as u64 * 1000 + r as u64 + 1));
            let mut shuffled = column.clone();
            shuffled.shuffle(&mut rng);
            // Predict with the shuffled column patched in row-by-row.
            let mut preds = Vec::with_capacity(n);
            let mut row_buf = vec![0.0; data.n_features()];
            for (i, &patched) in shuffled.iter().enumerate().take(n) {
                row_buf.copy_from_slice(data.row(i));
                row_buf[feature] = patched;
                preds.push(model.predict_row(&row_buf)?);
            }
            let acc = balanced_accuracy(data.labels(), &preds, data.n_classes())
                .map_err(InterpretError::Model)?;
            drops.push(baseline - acc);
        }
        let mean = drops.iter().sum::<f64>() / repeats as f64;
        let var = drops.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / repeats as f64;
        out.push(FeatureImportance {
            feature,
            feature_name: data.features()[feature].name.clone(),
            importance: mean,
            std: var.sqrt(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aml_dataset::Dataset;
    use aml_models::tree::TreeParams;
    use aml_models::DecisionTree;

    /// Label depends only on feature 0; feature 1 is pure noise.
    fn one_informative_feature(seed: u64) -> Dataset {
        use aml_rng::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..300)
            .map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>()])
            .collect();
        let labels: Vec<usize> = rows.iter().map(|r| usize::from(r[0] > 0.5)).collect();
        Dataset::from_rows(&rows, &labels, 2).unwrap()
    }

    #[test]
    fn informative_feature_dominates() {
        let ds = one_informative_feature(1);
        let tree = DecisionTree::fit(&ds, TreeParams::default()).unwrap();
        let imp = permutation_importance(&tree, &ds, 3, 7).unwrap();
        assert!(
            imp[0].importance > 0.3,
            "x0 importance {}",
            imp[0].importance
        );
        assert!(
            imp[1].importance.abs() < 0.05,
            "x1 is noise, importance {}",
            imp[1].importance
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = one_informative_feature(2);
        let tree = DecisionTree::fit(&ds, TreeParams::default()).unwrap();
        let a = permutation_importance(&tree, &ds, 2, 3).unwrap();
        let b = permutation_importance(&tree, &ds, 2, 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_inputs() {
        let ds = one_informative_feature(3);
        let tree = DecisionTree::fit(&ds, TreeParams::default()).unwrap();
        assert!(permutation_importance(&tree, &ds, 0, 0).is_err());
        let empty = ds.empty_like();
        assert!(permutation_importance(&tree, &empty, 1, 0).is_err());
    }

    #[test]
    fn importances_carry_names() {
        let ds = one_informative_feature(4);
        let tree = DecisionTree::fit(&ds, TreeParams::default()).unwrap();
        let imp = permutation_importance(&tree, &ds, 1, 1).unwrap();
        assert_eq!(imp[0].feature_name, "x0");
        assert_eq!(imp[1].feature_name, "x1");
    }
}
