//! Rendering of ALE bands: CSV (machine-readable), ASCII (terminal) and SVG
//! (figures). Step 6 of the paper's algorithm returns "the average ALE plots
//! (along with error-bars) as explanations to the user" — these renderers
//! are that explanation surface.

use crate::variance::AleBand;
use std::fmt::Write as _;

/// CSV with columns `grid,mean,std` (one row per grid point).
pub fn band_to_csv(band: &AleBand) -> String {
    let mut out = String::from("grid,mean,std\n");
    for i in 0..band.grid.len() {
        let _ = writeln!(out, "{},{},{}", band.grid[i], band.mean[i], band.std[i]);
    }
    out
}

/// A fixed-size ASCII plot of the mean curve with `+`/`-` error whiskers.
///
/// `width`/`height` are the plot area in characters (axes add a margin).
pub fn band_to_ascii(band: &AleBand, width: usize, height: usize) -> String {
    let width = width.max(16);
    let height = height.max(6);
    let (gmin, gmax) = (band.grid[0], *band.grid.last().expect("non-empty grid"));
    let lo = band
        .mean
        .iter()
        .zip(&band.std)
        .map(|(m, s)| m - s)
        .fold(f64::INFINITY, f64::min);
    let hi = band
        .mean
        .iter()
        .zip(&band.std)
        .map(|(m, s)| m + s)
        .fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);

    let mut cells = vec![vec![b' '; width]; height];
    let col_of = |x: f64| -> usize {
        (((x - gmin) / (gmax - gmin).max(1e-12)) * (width - 1) as f64).round() as usize
    };
    let row_of = |y: f64| -> usize {
        let r = ((hi - y) / span) * (height - 1) as f64;
        (r.round() as usize).min(height - 1)
    };

    for i in 0..band.grid.len() {
        let c = col_of(band.grid[i]);
        let top = row_of(band.mean[i] + band.std[i]);
        let bot = row_of(band.mean[i] - band.std[i]);
        for cell in cells.iter_mut().take(bot + 1).skip(top) {
            if cell[c] == b' ' {
                cell[c] = b'.';
            }
        }
        cells[row_of(band.mean[i])][c] = b'*';
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "ALE of {} across {} models (y: [{:.4}, {:.4}])",
        band.feature_name, band.n_models, lo, hi
    );
    for row in &cells {
        out.push('|');
        out.push_str(std::str::from_utf8(row).expect("ASCII bytes"));
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    let _ = writeln!(out, " x: [{gmin:.4}, {gmax:.4}]  (* mean, . ±1 std)");
    out
}

/// A minimal self-contained SVG of the mean curve with a shaded ±1 std band
/// and an optional horizontal threshold line on the std axis is *not* drawn
/// (std is encoded as the band width, matching the paper's figures).
pub fn band_to_svg(band: &AleBand, width: u32, height: u32) -> String {
    let w = width.max(100) as f64;
    let h = height.max(80) as f64;
    let margin = 40.0;
    let (gmin, gmax) = (band.grid[0], *band.grid.last().expect("non-empty grid"));
    let lo = band
        .mean
        .iter()
        .zip(&band.std)
        .map(|(m, s)| m - s)
        .fold(f64::INFINITY, f64::min);
    let hi = band
        .mean
        .iter()
        .zip(&band.std)
        .map(|(m, s)| m + s)
        .fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    let gspan = (gmax - gmin).max(1e-12);

    let px = |x: f64| margin + (x - gmin) / gspan * (w - 2.0 * margin);
    let py = |y: f64| margin + (hi - y) / span * (h - 2.0 * margin);

    // Shaded band polygon: upper edge left→right then lower edge right→left.
    let mut poly = String::new();
    for i in 0..band.grid.len() {
        let _ = write!(
            poly,
            "{:.2},{:.2} ",
            px(band.grid[i]),
            py(band.mean[i] + band.std[i])
        );
    }
    for i in (0..band.grid.len()).rev() {
        let _ = write!(
            poly,
            "{:.2},{:.2} ",
            px(band.grid[i]),
            py(band.mean[i] - band.std[i])
        );
    }
    let mut line = String::new();
    for (i, (&g, &m)) in band.grid.iter().zip(&band.mean).enumerate() {
        let cmd = if i == 0 { 'M' } else { 'L' };
        let _ = write!(line, "{cmd}{:.2} {:.2} ", px(g), py(m));
    }

    format!(
        concat!(
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">"#,
            r#"<rect width="100%" height="100%" fill="white"/>"#,
            r##"<polygon points="{poly}" fill="#9ecae1" fill-opacity="0.5"/>"##,
            r##"<path d="{line}" stroke="#08519c" fill="none" stroke-width="2"/>"##,
            r#"<text x="{tx}" y="20" font-family="monospace" font-size="12" text-anchor="middle">ALE of {name} ({n} models)</text>"#,
            r#"<text x="{tx}" y="{by}" font-family="monospace" font-size="10" text-anchor="middle">{gmin:.3} … {gmax:.3}</text>"#,
            "</svg>"
        ),
        w = w,
        h = h,
        poly = poly.trim_end(),
        line = line.trim_end(),
        tx = w / 2.0,
        by = h - 8.0,
        name = band.feature_name,
        n = band.n_models,
        gmin = gmin,
        gmax = gmax,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variance::AleBand;

    fn demo_band() -> AleBand {
        AleBand {
            feature: 0,
            feature_name: "config.link_rate".into(),
            grid: vec![0.0, 25.0, 50.0, 75.0, 100.0],
            mean: vec![-0.02, 0.01, 0.03, 0.01, -0.03],
            std: vec![0.03, 0.01, 0.005, 0.01, 0.04],
            n_models: 10,
        }
    }

    #[test]
    fn csv_has_header_and_all_rows() {
        let csv = band_to_csv(&demo_band());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "grid,mean,std");
        assert_eq!(lines.len(), 6);
        assert!(lines[1].starts_with("0,"));
    }

    #[test]
    fn ascii_contains_curve_and_axes() {
        let a = band_to_ascii(&demo_band(), 40, 10);
        assert!(a.contains("config.link_rate"));
        assert!(a.contains('*'));
        assert!(a.contains('.'));
        assert!(a.contains("10 models"));
    }

    #[test]
    fn ascii_clamps_tiny_dimensions() {
        // Must not panic even with absurd sizes.
        let a = band_to_ascii(&demo_band(), 1, 1);
        assert!(a.contains('*'));
    }

    #[test]
    fn svg_is_wellformed_enough() {
        let s = band_to_svg(&demo_band(), 400, 240);
        assert!(s.starts_with("<svg"));
        assert!(s.ends_with("</svg>"));
        assert!(s.contains("<polygon"));
        assert!(s.contains("<path"));
        assert!(s.contains("config.link_rate"));
        // Balanced tags.
        assert_eq!(s.matches("<svg").count(), s.matches("</svg>").count());
    }

    #[test]
    fn flat_band_renders_without_nan() {
        let band = AleBand {
            feature: 0,
            feature_name: "flat".into(),
            grid: vec![0.0, 1.0],
            mean: vec![0.0, 0.0],
            std: vec![0.0, 0.0],
            n_models: 1,
        };
        let s = band_to_svg(&band, 200, 100);
        assert!(!s.contains("NaN"));
        let a = band_to_ascii(&band, 20, 6);
        assert!(!a.contains("NaN"));
    }
}
