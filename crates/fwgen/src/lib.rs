//! # aml-fwgen
//!
//! Synthetic generator reproducing the schema and documented structure of
//! the UCI **"Internet Firewall Data"** dataset (65 532 rows, 11 numeric
//! features + a 4-class action) that the paper's §4.2 experiments use.
//! The real archive cannot be bundled, so this generator encodes the
//! generative mechanisms the paper's interpretability story depends on:
//!
//! * **Source ports are kernel-assigned ephemeral ports** — noisy and only
//!   weakly informative; the rare low-valued source ports carry a weak,
//!   contradictory signal (legacy services vs. spoofing scanners), which is
//!   why Figure 2a's ALE shows high cross-model variance at low values.
//! * **Destination ports concentrate on well-known services**; the
//!   443–445 region mixes heavy legitimate HTTPS (allow) with
//!   DDoS-targeted traffic (deny/drop) distinguishable only through the
//!   volume features — the genuine decision region of Figure 2b.
//! * **NAT ports are zero for blocked traffic** (the firewall never
//!   translates what it denies/drops), a strong structural signal matching
//!   the real dataset.
//! * **Volume features** (bytes/packets/elapsed) are log-normal for allowed
//!   flows and near-degenerate for blocked ones, with the label imbalance
//!   of the original (allow ≈ 57%, deny ≈ 23%, drop ≈ 20%,
//!   reset-both ≈ 0.3%).
//!
//! ## Example
//!
//! ```
//! use aml_fwgen::{FwGenConfig, generate};
//!
//! let ds = generate(&FwGenConfig { n: 2000, seed: 7, ..Default::default() }).unwrap();
//! assert_eq!(ds.n_features(), 11);
//! assert_eq!(ds.n_classes(), 4);
//! ```

pub mod gen;
pub mod profiles;
pub mod schema;

pub use gen::{generate, FwGenConfig};
pub use schema::{feature_metas, FwAction, FEATURE_NAMES};

/// Errors from the generator.
#[derive(Debug, Clone, PartialEq)]
pub enum FwGenError {
    /// Invalid configuration.
    InvalidConfig(String),
    /// Dataset layer failure.
    Data(aml_dataset::DataError),
}

impl std::fmt::Display for FwGenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FwGenError::InvalidConfig(m) => write!(f, "invalid fwgen config: {m}"),
            FwGenError::Data(e) => write!(f, "dataset error: {e}"),
        }
    }
}

impl std::error::Error for FwGenError {}

impl From<aml_dataset::DataError> for FwGenError {
    fn from(e: aml_dataset::DataError) -> Self {
        FwGenError::Data(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, FwGenError>;
