//! The top-level dataset generator.

use crate::profiles::{confuse_action_for_low_src, sample_row_with, LOW_SRC_PORT_RATE};
use crate::schema::{class_names, feature_metas, FwAction};
use crate::{FwGenError, Result};
use aml_dataset::Dataset;
use aml_rng::rngs::StdRng;
use aml_rng::{Rng, SeedableRng};

/// Generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FwGenConfig {
    /// Number of rows to generate.
    pub n: usize,
    /// RNG seed.
    pub seed: u64,
    /// Override of the class priors (must sum to ~1). `None` uses the
    /// UCI-like imbalance from [`FwAction::prior`].
    pub priors: Option<[f64; 4]>,
}

impl Default for FwGenConfig {
    fn default() -> Self {
        FwGenConfig {
            n: 65_532, // the real dataset's size
            seed: 0,
            priors: None,
        }
    }
}

/// Generate a synthetic firewall dataset.
///
/// # Errors
/// `n == 0`, or priors that don't form a distribution.
pub fn generate(config: &FwGenConfig) -> Result<Dataset> {
    if config.n == 0 {
        return Err(FwGenError::InvalidConfig("n must be >= 1".into()));
    }
    let priors: Vec<f64> = match config.priors {
        Some(p) => {
            if p.iter().any(|&x| x < 0.0) || (p.iter().sum::<f64>() - 1.0).abs() > 1e-6 {
                return Err(FwGenError::InvalidConfig(
                    "priors must be non-negative and sum to 1".into(),
                ));
            }
            p.to_vec()
        }
        None => FwAction::ALL.iter().map(|a| a.prior()).collect(),
    };

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut ds = Dataset::new(feature_metas(), class_names())?;
    for _ in 0..config.n {
        let action = draw_action(&priors, &mut rng);
        let low_src = rng.gen::<f64>() < LOW_SRC_PORT_RATE;
        let row = sample_row_with(action, low_src, &mut rng);
        // Label-noise mechanisms (applied AFTER feature sampling so the
        // features keep the true action's signature while the label is
        // noisy — that mismatch is what makes ensemble members disagree):
        //
        // * low source ports get a near-uniform confused label (Figure 2a);
        // * the 443-445 destination region mixes rate-limited legitimate
        //   flows and slipped-through attacks (Figure 2b).
        let label = if low_src {
            confuse_action_for_low_src(action, &mut rng)
        } else {
            https_ambiguity(action, &row, &mut rng)
        };
        ds.push_row(&row, label.class())?;
    }
    Ok(ds)
}

/// Port-conditional ambiguity in the HTTPS region (Figure 2b's mechanism).
///
/// In dst ports 443–445 the firewall applies an extra **rate-limiting
/// rule**: allow-profiled flows sending more than ~30 packets are blocked
/// (soft threshold), and a slice of attack traffic slips through as
/// allowed. The blocked/allowed boundary inside the 443 region therefore
/// depends on a *feature interaction* (`dst_port × pkts_sent`) plus noise —
/// model families with different inductive biases (axis-aligned trees,
/// Gaussian NB, linear models) summarize that interaction differently, so
/// their one-dimensional `dst_port` ALE curves genuinely disagree there,
/// which is exactly the Figure 2b signal. Everywhere else the label
/// follows the profile.
fn https_ambiguity(action: FwAction, row: &[f64], rng: &mut StdRng) -> FwAction {
    let dst_port = row[1];
    if !(443.0..=445.0).contains(&dst_port) {
        return action;
    }
    let pkts_sent = row[9];
    match action {
        FwAction::Allow => {
            // Soft rate-limit threshold at ~15 packets: the block
            // probability jumps from 10% (small flows) to 90% (large).
            let p_block = if pkts_sent > 15.0 { 0.9 } else { 0.1 };
            if rng.gen::<f64>() < p_block {
                if rng.gen() {
                    FwAction::Deny
                } else {
                    FwAction::Drop
                }
            } else {
                FwAction::Allow
            }
        }
        FwAction::Deny | FwAction::Drop if rng.gen::<f64>() < 0.15 => FwAction::Allow,
        other => other,
    }
}

fn draw_action(priors: &[f64], rng: &mut StdRng) -> FwAction {
    let r: f64 = rng.gen();
    let mut acc = 0.0;
    for (i, &p) in priors.iter().enumerate() {
        acc += p;
        if r < acc {
            return FwAction::ALL[i];
        }
    }
    FwAction::ALL[3]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_rows_and_schema() {
        let ds = generate(&FwGenConfig {
            n: 500,
            seed: 1,
            priors: None,
        })
        .unwrap();
        assert_eq!(ds.n_rows(), 500);
        assert_eq!(ds.n_features(), 11);
        assert_eq!(
            ds.class_names(),
            &["allow", "deny", "drop", "reset-both"].map(String::from)
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&FwGenConfig {
            n: 300,
            seed: 9,
            priors: None,
        })
        .unwrap();
        let b = generate(&FwGenConfig {
            n: 300,
            seed: 9,
            priors: None,
        })
        .unwrap();
        assert_eq!(a, b);
        let c = generate(&FwGenConfig {
            n: 300,
            seed: 10,
            priors: None,
        })
        .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn class_imbalance_matches_priors() {
        let ds = generate(&FwGenConfig {
            n: 20_000,
            seed: 2,
            priors: None,
        })
        .unwrap();
        let counts = ds.class_counts();
        let total: usize = counts.iter().sum();
        let frac = |c: usize| counts[c] as f64 / total as f64;
        // Effective fractions differ slightly from the raw priors because
        // the 443-region ambiguity moves ~6% of allow mass to deny/drop and
        // ~3% back: allow ≈ 0.54, deny ≈ 0.25, drop ≈ 0.21.
        assert!((frac(0) - 0.54).abs() < 0.04, "allow {}", frac(0));
        assert!((frac(1) - 0.245).abs() < 0.04, "deny {}", frac(1));
        assert!((frac(2) - 0.21).abs() < 0.04, "drop {}", frac(2));
        assert!(counts[3] > 0, "reset-both must appear");
    }

    #[test]
    fn custom_priors_respected() {
        let ds = generate(&FwGenConfig {
            n: 4000,
            seed: 3,
            priors: Some([0.25, 0.25, 0.25, 0.25]),
        })
        .unwrap();
        let counts = ds.class_counts();
        for (c, &count) in counts.iter().enumerate() {
            let frac = count as f64 / ds.n_rows() as f64;
            assert!((frac - 0.25).abs() < 0.05, "class {c}: {frac}");
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(generate(&FwGenConfig {
            n: 0,
            seed: 0,
            priors: None
        })
        .is_err());
        assert!(generate(&FwGenConfig {
            n: 10,
            seed: 0,
            priors: Some([0.5, 0.5, 0.5, 0.5])
        })
        .is_err());
        assert!(generate(&FwGenConfig {
            n: 10,
            seed: 0,
            priors: Some([-0.5, 0.5, 0.5, 0.5])
        })
        .is_err());
    }

    #[test]
    fn low_source_ports_are_rare_but_present() {
        let ds = generate(&FwGenConfig {
            n: 20_000,
            seed: 4,
            priors: None,
        })
        .unwrap();
        let low = (0..ds.n_rows()).filter(|&i| ds.row(i)[0] < 1024.0).count();
        let frac = low as f64 / ds.n_rows() as f64;
        assert!(frac > 0.005 && frac < 0.05, "low-src-port fraction {frac}");
    }

    #[test]
    fn low_source_port_labels_are_noisier_than_average() {
        // Measure label entropy among low-src-port rows vs the rest; the
        // confusion mechanism should visibly raise it.
        let ds = generate(&FwGenConfig {
            n: 40_000,
            seed: 5,
            priors: None,
        })
        .unwrap();
        let entropy = |rows: &[usize]| -> f64 {
            let mut counts = [0usize; 4];
            for &i in rows {
                counts[ds.label(i)] += 1;
            }
            let total = rows.len() as f64;
            counts
                .iter()
                .filter(|&&c| c > 0)
                .map(|&c| {
                    let p = c as f64 / total;
                    -p * p.log2()
                })
                .sum()
        };
        let low: Vec<usize> = (0..ds.n_rows())
            .filter(|&i| ds.row(i)[0] < 1024.0)
            .collect();
        let high: Vec<usize> = (0..ds.n_rows())
            .filter(|&i| ds.row(i)[0] >= 1024.0)
            .collect();
        assert!(low.len() > 100);
        assert!(
            entropy(&low) > entropy(&high) + 0.1,
            "low-port entropy {} must exceed high-port entropy {}",
            entropy(&low),
            entropy(&high)
        );
    }

    #[test]
    fn https_region_has_cross_profile_labels() {
        // The 443-445 ambiguity: some allow-profiled rows (NAT translated,
        // bytes received) carry blocked labels and vice versa.
        let ds = generate(&FwGenConfig {
            n: 30_000,
            seed: 8,
            priors: None,
        })
        .unwrap();
        let mut allow_features_blocked_label = 0usize;
        let mut blocked_features_allow_label = 0usize;
        for i in 0..ds.n_rows() {
            let row = ds.row(i);
            if !(443.0..=445.0).contains(&row[1]) {
                continue;
            }
            let nat_translated = row[2] > 0.0;
            match (nat_translated, ds.label(i)) {
                (true, 1) | (true, 2) => allow_features_blocked_label += 1,
                (false, 0) => blocked_features_allow_label += 1,
                _ => {}
            }
        }
        assert!(
            allow_features_blocked_label > 50,
            "rate-limited legit flows: {allow_features_blocked_label}"
        );
        assert!(
            blocked_features_allow_label > 50,
            "slipped-through attacks: {blocked_features_allow_label}"
        );
    }

    #[test]
    fn ambiguity_is_confined_to_https_region() {
        // Outside 443-445 (and away from low src ports) the features fully
        // determine the label: NAT translation implies allow.
        let ds = generate(&FwGenConfig {
            n: 20_000,
            seed: 9,
            priors: None,
        })
        .unwrap();
        for i in 0..ds.n_rows() {
            let row = ds.row(i);
            if row[0] < 1024.0 || (443.0..=445.0).contains(&row[1]) {
                continue;
            }
            if row[2] > 0.0 {
                assert_eq!(ds.label(i), 0, "NAT-translated non-HTTPS row must be allow");
            }
        }
    }

    #[test]
    fn dst_443_region_is_label_mixed() {
        // The 443–445 region must contain both allowed and blocked traffic
        // in real proportion — the precondition for Figure 2b's confusion.
        let ds = generate(&FwGenConfig {
            n: 30_000,
            seed: 6,
            priors: None,
        })
        .unwrap();
        let mut allow = 0usize;
        let mut blocked = 0usize;
        for i in 0..ds.n_rows() {
            let dst = ds.row(i)[1];
            if (443.0..=445.0).contains(&dst) {
                match ds.label(i) {
                    0 => allow += 1,
                    1 | 2 => blocked += 1,
                    _ => {}
                }
            }
        }
        assert!(allow > 500, "legit HTTPS present: {allow}");
        assert!(blocked > 500, "DDoS traffic present: {blocked}");
    }
}
