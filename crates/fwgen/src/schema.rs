//! The firewall dataset schema: feature names/domains and the 4 actions.
//!
//! Feature order mirrors the UCI "Internet Firewall Data" columns.

use aml_dataset::FeatureMeta;

/// The 11 numeric feature columns, in dataset order.
pub const FEATURE_NAMES: [&str; 11] = [
    "src_port",
    "dst_port",
    "nat_src_port",
    "nat_dst_port",
    "bytes",
    "bytes_sent",
    "bytes_received",
    "packets",
    "elapsed_s",
    "pkts_sent",
    "pkts_received",
];

/// The firewall's action — the 4-class label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FwAction {
    /// Traffic permitted and forwarded.
    Allow,
    /// Traffic rejected with notification.
    Deny,
    /// Traffic silently dropped.
    Drop,
    /// Both sides sent TCP RST.
    ResetBoth,
}

impl FwAction {
    /// All actions in label order (class index = position).
    pub const ALL: [FwAction; 4] = [
        FwAction::Allow,
        FwAction::Deny,
        FwAction::Drop,
        FwAction::ResetBoth,
    ];

    /// Class index of this action.
    pub fn class(&self) -> usize {
        match self {
            FwAction::Allow => 0,
            FwAction::Deny => 1,
            FwAction::Drop => 2,
            FwAction::ResetBoth => 3,
        }
    }

    /// Stable name matching the UCI labels.
    pub fn name(&self) -> &'static str {
        match self {
            FwAction::Allow => "allow",
            FwAction::Deny => "deny",
            FwAction::Drop => "drop",
            FwAction::ResetBoth => "reset-both",
        }
    }

    /// Marginal probability of each action, approximating the real
    /// dataset's imbalance (allow 57.4%, deny 22.9%, drop 19.6%,
    /// reset-both 0.08% — we lift reset-both to 0.3% so stratified splits
    /// of modest samples keep at least a couple of examples).
    pub fn prior(&self) -> f64 {
        match self {
            FwAction::Allow => 0.574,
            FwAction::Deny => 0.229,
            FwAction::Drop => 0.194,
            FwAction::ResetBoth => 0.003,
        }
    }
}

/// Feature metadata (names + domains `R(X_s)`) for the generated dataset.
pub fn feature_metas() -> Vec<FeatureMeta> {
    vec![
        FeatureMeta::integer("src_port", 0, 65535),
        FeatureMeta::integer("dst_port", 0, 65535),
        FeatureMeta::integer("nat_src_port", 0, 65535),
        FeatureMeta::integer("nat_dst_port", 0, 65535),
        FeatureMeta::continuous("bytes", 0.0, 1e8),
        FeatureMeta::continuous("bytes_sent", 0.0, 1e8),
        FeatureMeta::continuous("bytes_received", 0.0, 1e8),
        FeatureMeta::continuous("packets", 0.0, 1e6),
        FeatureMeta::continuous("elapsed_s", 0.0, 10_000.0),
        FeatureMeta::continuous("pkts_sent", 0.0, 1e6),
        FeatureMeta::continuous("pkts_received", 0.0, 1e6),
    ]
}

/// Class names in label order.
pub fn class_names() -> Vec<String> {
    FwAction::ALL.iter().map(|a| a.name().to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priors_sum_to_one() {
        let s: f64 = FwAction::ALL.iter().map(|a| a.prior()).sum();
        assert!((s - 1.0).abs() < 1e-9, "priors sum to {s}");
    }

    #[test]
    fn class_indices_match_positions() {
        for (i, a) in FwAction::ALL.iter().enumerate() {
            assert_eq!(a.class(), i);
        }
    }

    #[test]
    fn schema_sizes_agree() {
        assert_eq!(feature_metas().len(), FEATURE_NAMES.len());
        assert_eq!(class_names().len(), 4);
        for (m, n) in feature_metas().iter().zip(FEATURE_NAMES) {
            assert_eq!(m.name, n);
        }
    }

    #[test]
    fn port_domains_are_16_bit() {
        let metas = feature_metas();
        assert_eq!(metas[0].domain.lo(), 0.0);
        assert_eq!(metas[0].domain.hi(), 65535.0);
        assert!(metas[1].domain.contains(443.0));
    }
}
