//! Per-action generative traffic profiles.
//!
//! Each profile draws an 11-feature row conditioned on the action, encoding
//! the mechanisms documented in the crate docs. The sampling helpers
//! implement the handful of distributions needed (log-normal via
//! Box–Muller, categorical, bounded uniforms) on top of plain `rand`.

use crate::schema::FwAction;
use aml_rng::rngs::StdRng;
use aml_rng::Rng;

/// Standard normal via Box–Muller.
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Log-normal with the given log-scale parameters, clamped to `[0, cap]`.
fn lognormal(rng: &mut StdRng, mu: f64, sigma: f64, cap: f64) -> f64 {
    (mu + sigma * normal(rng)).exp().clamp(0.0, cap)
}

/// An ephemeral (kernel-assigned) source port: 49152–65535 dominates, with
/// the 1024–49151 registered range as a minority.
fn ephemeral_port(rng: &mut StdRng) -> f64 {
    if rng.gen::<f64>() < 0.8 {
        rng.gen_range(49152..=65535) as f64
    } else {
        rng.gen_range(1024..=49151) as f64
    }
}

/// A low source port (< 1024): rare, and deliberately *contradictory* —
/// legacy services and spoofing scanners both live here, so the label
/// signal at low source ports is weak. This sparse inconsistent region is
/// what makes ensemble members disagree (Figure 2a).
fn low_src_port(rng: &mut StdRng) -> f64 {
    rng.gen_range(1..1024) as f64
}

/// Well-known service destination ports with realistic frequencies.
fn service_dst_port(rng: &mut StdRng) -> f64 {
    let r: f64 = rng.gen();
    if r < 0.40 {
        443.0
    } else if r < 0.62 {
        80.0
    } else if r < 0.74 {
        53.0
    } else if r < 0.80 {
        25.0
    } else if r < 0.84 {
        445.0
    } else if r < 0.88 {
        22.0
    } else {
        rng.gen_range(1024..=65535) as f64
    }
}

/// Probability that a generated sample uses a low (< 1024) source port.
pub const LOW_SRC_PORT_RATE: f64 = 0.02;

/// Fraction of blocked (deny/drop) traffic that is part of the HTTPS DDoS
/// campaign concentrated on destination ports 443–445.
pub const DDOS_FRACTION: f64 = 0.45;

/// Draw one feature row for `action`, with the low-source-port coin drawn
/// internally at [`LOW_SRC_PORT_RATE`].
///
/// Row layout matches [`crate::schema::FEATURE_NAMES`].
pub fn sample_row(action: FwAction, rng: &mut StdRng) -> Vec<f64> {
    let low_src = rng.gen::<f64>() < LOW_SRC_PORT_RATE;
    sample_row_with(action, low_src, rng)
}

/// Draw one feature row for `action` with the low-source-port choice made
/// by the caller (the generator controls the exact low-port rate this way).
pub fn sample_row_with(action: FwAction, low_src: bool, rng: &mut StdRng) -> Vec<f64> {
    let src_port = if low_src {
        low_src_port(rng)
    } else {
        ephemeral_port(rng)
    };

    match action {
        FwAction::Allow => {
            // Legitimate service traffic, NAT-translated, real volume.
            let dst_port = service_dst_port(rng);
            let nat_src = ephemeral_port(rng);
            let nat_dst = dst_port;
            let pkts_sent = lognormal(rng, 2.3, 1.2, 5e5).max(1.0).round();
            let pkts_received = lognormal(rng, 2.1, 1.3, 5e5).round();
            let packets = pkts_sent + pkts_received;
            let bytes_sent = (pkts_sent * lognormal(rng, 6.0, 0.8, 9000.0).max(60.0)).min(5e7);
            let bytes_received =
                (pkts_received * lognormal(rng, 6.3, 0.9, 9000.0).max(60.0)).min(5e7);
            let elapsed = lognormal(rng, 1.5, 1.5, 9_000.0);
            vec![
                src_port,
                dst_port,
                nat_src,
                nat_dst,
                bytes_sent + bytes_received,
                bytes_sent,
                bytes_received,
                packets,
                elapsed,
                pkts_sent,
                pkts_received,
            ]
        }
        FwAction::Deny | FwAction::Drop => {
            // Blocked traffic: a blend of a 443-targeted DDoS campaign and
            // background scanning. NAT ports are zero (never translated).
            let ddos = rng.gen::<f64>() < DDOS_FRACTION;
            let dst_port = if ddos {
                // The campaign hits 443 mostly, bleeding into 444/445.
                let r: f64 = rng.gen();
                if r < 0.7 {
                    443.0
                } else if r < 0.85 {
                    444.0
                } else {
                    445.0
                }
            } else if rng.gen::<f64>() < 0.3 {
                service_dst_port(rng)
            } else {
                rng.gen_range(1..=65535) as f64
            };
            let pkts_sent = if ddos {
                lognormal(rng, 1.2, 0.8, 1e4).max(1.0).round()
            } else {
                (1.0 + rng.gen_range(0..3) as f64).round()
            };
            let bytes_sent = pkts_sent * rng.gen_range(60.0..120.0);
            // A *deny* actively rejects (TCP RST / ICMP unreachable), so a
            // small notification comes back; a *drop* is silent. This is
            // the real dataset's distinguishing structure between the two
            // blocked classes.
            let (pkts_back, bytes_back) = if action == FwAction::Deny {
                let p = 1.0 + rng.gen_range(0..2) as f64;
                (p, p * rng.gen_range(40.0..80.0))
            } else {
                (0.0, 0.0)
            };
            vec![
                src_port,
                dst_port,
                0.0, // nat_src_port
                0.0, // nat_dst_port
                bytes_sent + bytes_back,
                bytes_sent,
                bytes_back,
                pkts_sent + pkts_back,
                0.0, // blocked flows have no duration
                pkts_sent,
                pkts_back,
            ]
        }
        FwAction::ResetBoth => {
            // Rare TCP resets: tiny symmetric exchanges on service ports.
            let dst_port = service_dst_port(rng);
            let pkts = 2.0 + rng.gen_range(0..4) as f64;
            let bytes = pkts * rng.gen_range(40.0..80.0);
            vec![
                src_port,
                dst_port,
                0.0,
                0.0,
                bytes,
                bytes / 2.0,
                bytes / 2.0,
                pkts,
                0.0,
                (pkts / 2.0).ceil(),
                (pkts / 2.0).floor(),
            ]
        }
    }
}

/// For low source ports the label is re-drawn to be contradictory: a
/// near-uniform mixture regardless of the traffic's other properties
/// (legacy services and spoofing scanners share this range). Callers apply
/// this *after* sampling the row, so the features keep the original
/// action's signature while the label is noise — the recipe for ensemble
/// disagreement.
pub fn confuse_action_for_low_src(action: FwAction, rng: &mut StdRng) -> FwAction {
    // 50%: keep; 50%: uniformly random action.
    if rng.gen::<f64>() < 0.5 {
        action
    } else {
        FwAction::ALL[rng.gen_range(0..4)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aml_rng::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn rows_have_eleven_features() {
        let mut r = rng(1);
        for action in FwAction::ALL {
            assert_eq!(sample_row(action, &mut r).len(), 11);
        }
    }

    #[test]
    fn dropped_traffic_has_zero_nat_and_no_response() {
        let mut r = rng(2);
        for _ in 0..100 {
            let row = sample_row(FwAction::Drop, &mut r);
            assert_eq!(row[2], 0.0, "nat_src_port");
            assert_eq!(row[3], 0.0, "nat_dst_port");
            assert_eq!(row[6], 0.0, "bytes_received");
            assert_eq!(row[8], 0.0, "elapsed");
        }
    }

    #[test]
    fn denied_traffic_gets_a_rejection_notification() {
        let mut r = rng(12);
        for _ in 0..100 {
            let row = sample_row(FwAction::Deny, &mut r);
            assert_eq!(row[2], 0.0, "nat_src_port still zero");
            assert!(row[6] > 0.0, "deny sends bytes back");
            assert!(row[10] >= 1.0, "deny sends packets back");
        }
    }

    #[test]
    fn allowed_traffic_is_translated_and_voluminous() {
        let mut r = rng(3);
        let mut total_bytes = 0.0;
        for _ in 0..200 {
            let row = sample_row(FwAction::Allow, &mut r);
            assert!(row[2] >= 1024.0, "allow NAT src port is ephemeral");
            assert_eq!(row[3], row[1], "allow NAT dst = dst");
            assert_eq!(row[4], row[5] + row[6], "bytes = sent + received");
            total_bytes += row[4];
        }
        assert!(
            total_bytes / 200.0 > 1_000.0,
            "allowed flows carry real volume"
        );
    }

    #[test]
    fn ddos_concentrates_blocked_traffic_on_443_445() {
        let mut r = rng(4);
        let mut in_region = 0;
        let n = 2000;
        for _ in 0..n {
            let row = sample_row(FwAction::Deny, &mut r);
            if (443.0..=445.0).contains(&row[1]) {
                in_region += 1;
            }
        }
        let frac = in_region as f64 / n as f64;
        assert!(
            frac > 0.35 && frac < 0.65,
            "~45% of blocked traffic targets 443-445, got {frac}"
        );
    }

    #[test]
    fn ports_are_valid_u16() {
        let mut r = rng(5);
        for action in FwAction::ALL {
            for _ in 0..200 {
                let row = sample_row(action, &mut r);
                for (j, &v) in row.iter().enumerate().take(4) {
                    assert!((0.0..=65535.0).contains(&v), "feature {j} = {v}");
                    assert_eq!(v, v.round(), "ports are integral");
                }
            }
        }
    }

    #[test]
    fn confusion_mixes_labels() {
        let mut r = rng(6);
        let mut changed = 0;
        for _ in 0..400 {
            if confuse_action_for_low_src(FwAction::Allow, &mut r) != FwAction::Allow {
                changed += 1;
            }
        }
        // 50% redraw × 75% different = 37.5% expected change rate.
        assert!((100..200).contains(&changed), "changed {changed} of 400");
    }
}
