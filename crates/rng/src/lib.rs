//! First-party deterministic pseudo-randomness for the whole workspace.
//!
//! Every stochastic component in the repo — dataset synthesis, splits,
//! bootstrap resampling, forest/boosting subsampling, the AutoML search,
//! the network simulator — draws from this crate and nothing else. The
//! generator is SplitMix64 (Steele, Lea & Flood, "Fast splittable
//! pseudorandom number generators", OOPSLA '14): one 64-bit add + three
//! xor-multiply mixes per draw, full 2^64 period, passes BigCrush.
//!
//! Keeping the PRNG in-tree (rather than depending on an external crate)
//! pins the stream *algorithmically*: a seeded experiment reproduces
//! bit-for-bit on any machine, forever, independent of upstream crate
//! versions. That property is load-bearing — the experiment ledger's
//! cross-thread-count determinism oracle and every golden test assume it.
//!
//! The API mirrors the familiar `rand` shape (`Rng`, `SeedableRng`,
//! `rngs::StdRng`, `seq::SliceRandom`) so call sites read idiomatically,
//! but this is an independent implementation with a fixed, documented
//! stream. **Never** change the constants or mixing below: that would
//! invalidate every seeded artifact in EXPERIMENTS.md.

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The raw 64-bit source every other draw is derived from.
pub trait RngCore {
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// Derived draws: typed uniforms, ranges, Bernoulli.
pub trait Rng: RngCore {
    /// A uniform value of `T` (`f64`/`f32` in `[0, 1)`, integers over
    /// their full range, `bool` fair).
    fn gen<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Uniform draw from a range (`lo..hi` half-open, `lo..=hi` closed).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types that know how to draw themselves uniformly from raw bits.
pub trait FromRng {
    /// Draw one uniform value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 explicit mantissa bits -> uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl FromRng for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) / (1u64 << 24) as f32
    }
}

impl FromRng for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Scalars that can be drawn uniformly from a bounded interval.
pub trait SampleUniform: Sized + PartialOrd {
    /// Sample from `[lo, hi)` (`inclusive == false`) or `[lo, hi]`.
    fn sample_uniform<R: Rng + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

impl SampleUniform for f64 {
    fn sample_uniform<R: Rng + ?Sized>(lo: Self, hi: Self, _inclusive: bool, rng: &mut R) -> Self {
        assert!(lo <= hi, "empty range");
        lo + (hi - lo) * f64::from_rng(rng)
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: Rng + ?Sized>(lo: Self, hi: Self, _inclusive: bool, rng: &mut R) -> Self {
        assert!(lo <= hi, "empty range");
        lo + (hi - lo) * f32::from_rng(rng)
    }
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng + ?Sized>(
                lo: Self, hi: Self, inclusive: bool, rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "empty range");
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_uniform(lo, hi, true, rng)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    ///
    /// State advances by the golden-gamma constant `0x9e3779b97f4a7c15`
    /// and each output is the Stafford variant-13 mix of the new state.
    /// The constants are frozen (see the crate docs).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// Alias: the workspace has exactly one generator.
    pub type SmallRng = StdRng;
}

pub mod seq {
    //! Sequence-level draws: shuffles and element choice.

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    /// The stream is pinned: these exact values must never change, or
    /// every seeded experiment artifact in the repo silently shifts.
    #[test]
    fn stream_is_frozen() {
        let mut rng = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                0x6e78_9e6a_a1b9_65f4,
                0x06c4_5d18_8009_454f,
                0xf88b_b8a8_724c_81ec,
                0x1b39_896a_51a8_749b,
            ]
        );
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert!((0..10).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let i = rng.gen_range(3..17usize);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&j));
            let f = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = StdRng::seed_from_u64(3);
        let draws: Vec<u8> = (0..200).map(|_| rng.gen_range(0..=1u8)).collect();
        assert!(draws.contains(&0));
        assert!(draws.contains(&1));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(17);
        let v = [1u8, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(*v.choose(&mut rng).unwrap() - 1) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
