//! Criterion benchmarks for the network simulator: full simulation runs
//! per protocol and condition-labeling cost (the data-generation hot
//! path behind every Scream-vs-rest dataset).

use aml_microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use aml_netsim::cc::CcKind;
use aml_netsim::runner::label_condition;
use aml_netsim::sim::{SimConfig, Simulation};
use aml_netsim::NetworkCondition;

fn cond(mbps: f64, rtt: f64, loss: f64, flows: usize) -> NetworkCondition {
    NetworkCondition {
        link_rate_mbps: mbps,
        rtt_ms: rtt,
        loss_rate: loss,
        n_flows: flows,
    }
}

fn bench_single_protocol_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_run_10mbps_40ms");
    group.sample_size(10);
    for kind in CcKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
            b.iter(|| {
                Simulation::new(SimConfig::for_condition(cond(10.0, 40.0, 0.0, 1), k, 1))
                    .expect("config")
                    .run()
                    .expect("run")
            })
        });
    }
    group.finish();
}

fn bench_labeling(c: &mut Criterion) {
    let mut group = c.benchmark_group("label_condition_all6");
    group.sample_size(10);
    let scenarios = [
        ("slow_3mbps", cond(3.0, 40.0, 0.01, 1)),
        ("mid_20mbps", cond(20.0, 60.0, 0.0, 2)),
        ("fast_100mbps", cond(100.0, 30.0, 0.0, 1)),
    ];
    for (name, condition) in scenarios {
        group.bench_with_input(BenchmarkId::from_parameter(name), &condition, |b, &cnd| {
            b.iter(|| label_condition(cnd, 7).expect("label"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_protocol_run, bench_labeling);
criterion_main!(benches);
