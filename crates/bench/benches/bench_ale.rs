//! Criterion benchmarks for the interpretation layer: single-model ALE
//! curves, cross-model bands, PDP (the alternative), and region
//! extraction + sampling. ALE dominates the feedback algorithm's cost
//! (2 model evaluations per row per feature), so its scaling with grid
//! resolution matters.

use aml_core::{AleFeedback, ThresholdRule};
use aml_dataset::synth;
use aml_interpret::ale::{ale_curve, AleConfig};
use aml_interpret::grid::Grid;
use aml_interpret::pdp::pdp_curve;
use aml_interpret::region::FeatureRegions;
use aml_interpret::variance::ale_band;
use aml_microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use aml_models::forest::ForestParams;
use aml_models::tree::TreeParams;
use aml_models::{Classifier, DecisionTree, RandomForest};

fn bench_ale_curve(c: &mut Criterion) {
    let ds = synth::gaussian_blobs(500, 4, 2, 2.0, 1).unwrap();
    let tree = DecisionTree::fit(&ds, TreeParams::default()).unwrap();
    let forest = RandomForest::fit(
        &ds,
        ForestParams {
            n_trees: 30,
            ..Default::default()
        },
    )
    .unwrap();
    let mut group = c.benchmark_group("ale_curve_500rows");
    for k in [8usize, 16, 32, 64] {
        let grid = Grid::quantile(&ds.column(0).unwrap(), k).unwrap();
        group.bench_with_input(BenchmarkId::new("tree", k), &grid, |b, g| {
            b.iter(|| ale_curve(&tree, &ds, 0, g, &AleConfig::default()).expect("ale"))
        });
        group.bench_with_input(BenchmarkId::new("forest30", k), &grid, |b, g| {
            b.iter(|| ale_curve(&forest, &ds, 0, g, &AleConfig::default()).expect("ale"))
        });
    }
    group.finish();
}

fn bench_ale_vs_pdp(c: &mut Criterion) {
    let ds = synth::gaussian_blobs(500, 4, 2, 2.0, 1).unwrap();
    let tree = DecisionTree::fit(&ds, TreeParams::default()).unwrap();
    let grid = Grid::quantile(&ds.column(0).unwrap(), 24).unwrap();
    let mut group = c.benchmark_group("interpretation_method");
    group.bench_function("ale_24", |b| {
        b.iter(|| ale_curve(&tree, &ds, 0, &grid, &AleConfig::default()).expect("ale"))
    });
    group.bench_function("pdp_24", |b| {
        b.iter(|| pdp_curve(&tree, &ds, 0, &grid, &AleConfig::default()).expect("pdp"))
    });
    group.finish();
}

fn bench_band_and_regions(c: &mut Criterion) {
    let ds = synth::gaussian_blobs(400, 4, 2, 2.0, 1).unwrap();
    let models: Vec<Box<dyn Classifier>> = (0..6)
        .map(|s| {
            Box::new(
                DecisionTree::fit(
                    &ds,
                    TreeParams {
                        seed: s,
                        max_features: Some(2),
                        ..Default::default()
                    },
                )
                .unwrap(),
            ) as Box<dyn Classifier>
        })
        .collect();
    let refs: Vec<&dyn Classifier> = models.iter().map(|m| m.as_ref()).collect();
    c.bench_function("ale_band_6models", |b| {
        b.iter(|| ale_band(&refs, &ds, 0, 24, &AleConfig::default()).expect("band"))
    });
    let band = ale_band(&refs, &ds, 0, 24, &AleConfig::default()).unwrap();
    let domain = ds.domain(0).unwrap();
    c.bench_function("region_extraction", |b| {
        b.iter(|| FeatureRegions::from_band(&band, 0.01, domain).expect("regions"))
    });
    let _ = AleFeedback {
        threshold: ThresholdRule::Fixed(0.01),
        ..Default::default()
    };
}

criterion_group!(
    benches,
    bench_ale_curve,
    bench_ale_vs_pdp,
    bench_band_and_regions
);
criterion_main!(benches);
