//! Criterion micro-benchmarks: model fitting and prediction for every
//! family in the AutoML search space. These set the per-candidate cost
//! that dominates AutoML wall-clock.

use aml_automl::{CandidateConfig, ModelFamily};
use aml_dataset::synth;

use aml_microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fit(c: &mut Criterion) {
    let train = synth::gaussian_blobs(400, 4, 3, 1.5, 1).unwrap();
    let mut group = c.benchmark_group("model_fit_400x4");
    group.sample_size(10);
    for family in ModelFamily::ALL {
        let config = CandidateConfig::sample(family, 7);
        group.bench_with_input(
            BenchmarkId::from_parameter(family.name()),
            &config,
            |b, cfg| b.iter(|| cfg.fit(&train).expect("fit")),
        );
    }
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let train = synth::gaussian_blobs(400, 4, 3, 1.5, 1).unwrap();
    let test = synth::gaussian_blobs(200, 4, 3, 1.5, 2).unwrap();
    let mut group = c.benchmark_group("model_predict_200x4");
    for family in ModelFamily::ALL {
        let model = CandidateConfig::sample(family, 7).fit(&train).expect("fit");
        group.bench_with_input(
            BenchmarkId::from_parameter(family.name()),
            &model,
            |b, m| b.iter(|| m.predict_proba(&test).expect("predict")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fit, bench_predict);
criterion_main!(benches);
