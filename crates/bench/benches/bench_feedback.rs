//! Criterion benchmarks for the feedback layer: the Wilcoxon test (exact
//! DP vs normal approximation), SMOTE, QBC selection, and the end-to-end
//! Within-ALE analysis on a fitted AutoML ensemble.

use aml_automl::{AutoMl, AutoMlConfig};
use aml_core::qbc::qbc_select;
use aml_core::upsampling::smote;
use aml_core::AleFeedback;
use aml_dataset::synth;
use aml_microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use aml_stats::wilcoxon::{wilcoxon_signed_rank, Alternative};

fn bench_wilcoxon(c: &mut Criterion) {
    let mut group = c.benchmark_group("wilcoxon");
    for n in [10usize, 20, 25, 26, 100, 1000] {
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() + 0.1).collect();
        // n ≤ 25 exercises the exact DP, above it the normal approximation.
        group.bench_with_input(BenchmarkId::from_parameter(n), &(x, y), |b, (x, y)| {
            b.iter(|| wilcoxon_signed_rank(x, y, Alternative::Less).expect("test"))
        });
    }
    group.finish();
}

fn bench_smote(c: &mut Criterion) {
    // 90/10 imbalance, 500 rows.
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for i in 0..450 {
        rows.push(vec![i as f64 * 0.01, (i % 7) as f64]);
        labels.push(0usize);
    }
    for i in 0..50 {
        rows.push(vec![100.0 + i as f64 * 0.01, (i % 5) as f64]);
        labels.push(1usize);
    }
    let ds = aml_dataset::Dataset::from_rows(&rows, &labels, 2).unwrap();
    c.bench_function("smote_500rows_90_10", |b| {
        b.iter(|| smote(&ds, 5, 1).expect("smote"))
    });
}

fn bench_qbc_and_ale(c: &mut Criterion) {
    let train = synth::two_moons(300, 0.25, 1).unwrap();
    let pool = synth::two_moons(500, 0.25, 2).unwrap();
    let run = AutoMl::new(AutoMlConfig {
        n_candidates: 8,
        seed: 1,
        ..Default::default()
    })
    .fit(&train)
    .expect("automl");

    c.bench_function("qbc_select_500pool", |b| {
        b.iter(|| qbc_select(run.ensemble(), &pool, 50).expect("qbc"))
    });

    let runs = [run];
    let ale = AleFeedback::default();
    c.bench_function("within_ale_analysis_300rows", |b| {
        b.iter(|| ale.analyze(&runs, &train).expect("analysis"))
    });
}

criterion_group!(benches, bench_wilcoxon, bench_smote, bench_qbc_and_ale);
criterion_main!(benches);
