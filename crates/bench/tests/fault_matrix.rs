//! Fault-matrix integration test (DESIGN.md §7): run the AutoML search
//! and the feedback loop under every injected fault class of the
//! `aml-faults` plan and pin the resulting ledger shapes — a panicking
//! trial, a trial blowing its wall-clock budget, a NaN validation score,
//! and NaN-poisoned oracle labels each degrade the run without killing
//! it, and each leaves its typed `trial_failed` reason (or dropped-row
//! count) behind as evidence.
//!
//! An integration test (own process) because the fault plan, the
//! telemetry sink list, and the ledger round counter are process-global;
//! the tests in this file serialize on a local mutex.

use aml_automl::{ModelFamily, SearchLimits};
use aml_core::{run_strategy, ExperimentConfig, Strategy};
use aml_dataset::{split::train_test_split, synth, Dataset};
use aml_telemetry::sink::{self, Sink, SpanEvent};
use aml_telemetry::{LedgerEvent, Snapshot};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Serializes the tests in this binary: the fault plan and the sink
/// list are process-global.
static GLOBAL: Mutex<()> = Mutex::new(());

fn serialize() -> MutexGuard<'static, ()> {
    GLOBAL.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Captures ledger lines in memory.
struct CollectingLedger {
    lines: Mutex<Vec<String>>,
}

impl Sink for CollectingLedger {
    fn on_span_close(&self, _event: &SpanEvent) {}
    fn on_ledger_event(&self, event: &LedgerEvent) {
        self.lines.lock().unwrap().push(event.to_json_line());
    }
    fn wants_ledger(&self) -> bool {
        true
    }
    fn finish(&self, _snapshot: &Snapshot) -> std::io::Result<()> {
        Ok(())
    }
    fn target(&self) -> String {
        "collector".into()
    }
}

struct Fwd(&'static CollectingLedger);

impl Sink for Fwd {
    fn on_span_close(&self, e: &SpanEvent) {
        self.0.on_span_close(e)
    }
    fn on_ledger_event(&self, e: &LedgerEvent) {
        self.0.on_ledger_event(e)
    }
    fn wants_ledger(&self) -> bool {
        true
    }
    fn finish(&self, s: &Snapshot) -> std::io::Result<()> {
        self.0.finish(s)
    }
    fn target(&self) -> String {
        self.0.target()
    }
}

fn splits() -> (Dataset, Dataset) {
    let ds = synth::two_moons(300, 0.2, 5).unwrap();
    train_test_split(&ds, 0.25, true, 1).unwrap()
}

/// One search run under `plan`, returning its ledger lines.
fn search_under_plan(plan: &str, limits: &SearchLimits) -> Vec<String> {
    let (train, val) = splits();
    let collector = Box::leak(Box::new(CollectingLedger {
        lines: Mutex::new(Vec::new()),
    }));
    sink::install(Box::new(Fwd(collector)));
    aml_faults::install(aml_faults::FaultPlan::parse(plan).unwrap());
    let result = aml_automl::search::run_search(
        aml_automl::SearchStrategy::SuccessiveHalving,
        8,
        &ModelFamily::ALL,
        &train,
        &val,
        7,
        2,
        limits,
    );
    aml_faults::clear();
    sink::finish(&Snapshot::default());
    assert!(
        result.is_ok(),
        "search must survive the fault plan: {:?}",
        result.err().map(|e| e.to_string())
    );
    assert!(!result.unwrap().is_empty(), "survivors expected");
    std::mem::take(&mut collector.lines.lock().unwrap())
}

fn failed_line(lines: &[String], trial: u64, reason: &str) -> bool {
    lines.iter().any(|l| {
        l.contains("\"type\":\"trial_failed\"")
            && l.contains(&format!("\"trial\":{trial},"))
            && l.contains(&format!("\"reason\":\"{reason}\""))
    })
}

#[test]
fn injected_trial_faults_become_typed_trial_failed_events() {
    let _guard = serialize();
    let lines = search_under_plan(
        "trial_panic@1,trial_nan@2,trial_slow@3:2000ms",
        &SearchLimits {
            max_trial_time: Some(Duration::from_millis(400)),
            min_trials: 1,
        },
    );
    assert!(
        failed_line(&lines, 1, "panic"),
        "trial 1 must fail with reason panic: {lines:#?}"
    );
    assert!(
        failed_line(&lines, 2, "nonfinite"),
        "trial 2 must fail with reason nonfinite: {lines:#?}"
    );
    assert!(
        failed_line(&lines, 3, "timeout"),
        "trial 3 must fail with reason timeout: {lines:#?}"
    );
    // The healthy trials still finish: the run degrades, it doesn't die.
    assert!(
        lines
            .iter()
            .any(|l| l.contains("\"type\":\"trial_finished\"")),
        "healthy trials must still finish"
    );
    // A faulted trial never also finishes.
    for trial in [1u64, 2, 3] {
        assert!(
            !lines
                .iter()
                .any(|l| l.contains("\"type\":\"trial_finished\"")
                    && l.contains(&format!("\"trial\":{trial},"))),
            "trial {trial} must not appear as finished"
        );
    }
}

#[test]
fn min_trials_floor_is_a_typed_error_not_a_degraded_ensemble() {
    let _guard = serialize();
    let (train, val) = splits();
    aml_faults::clear();
    let result = aml_automl::search::run_search(
        aml_automl::SearchStrategy::SuccessiveHalving,
        4,
        &ModelFamily::ALL,
        &train,
        &val,
        7,
        1,
        &SearchLimits {
            max_trial_time: None,
            min_trials: 999,
        },
    );
    match result {
        Err(aml_automl::AutoMlError::Search(aml_automl::SearchError::TooFewSurvivors {
            survived,
            required,
        })) => {
            assert_eq!(required, 999);
            assert!(survived < required);
        }
        other => panic!(
            "expected TooFewSurvivors, got {:?}",
            other.map(|v| v.len()).map_err(|e| e.to_string())
        ),
    }
}

/// `nan_labels` poisons rows the oracle is about to label; the loop
/// drops them (counting `core.nonfinite_rows_dropped`) and completes
/// with a smaller feedback budget instead of crashing model training.
#[test]
fn nan_poisoned_oracle_rows_shrink_the_round_but_complete_it() {
    let _guard = serialize();
    let (train, test) = splits();
    let test_sets = vec![test];
    let oracle = |rows: &[Vec<f64>]| -> aml_core::Result<Dataset> {
        let labels: Vec<usize> = rows.iter().map(|r| usize::from(r[0] > 0.5)).collect();
        Dataset::from_rows(rows, &labels, 2)
            .map_err(|e| aml_core::CoreError::InvalidParameter(e.to_string()))
    };
    let cfg = ExperimentConfig {
        automl: aml_automl::AutoMlConfig {
            n_candidates: 8,
            parallelism: 2,
            ..Default::default()
        },
        n_feedback_points: 12,
        n_cross_runs: 2,
        seed: 21,
        ..Default::default()
    };

    aml_faults::install(aml_faults::FaultPlan::parse("nan_labels@0").unwrap());
    let out = run_strategy(
        Strategy::Uniform,
        &cfg,
        &train,
        None,
        Some(&oracle),
        &test_sets,
    );
    aml_faults::clear();

    let out = out.expect("the run must complete under poisoned labels");
    assert!(
        out.n_points_added > 0 && out.n_points_added < 12,
        "every other row is poisoned: expected 0 < added < 12, got {}",
        out.n_points_added
    );

    // Off (cleared) plan: the same round adds the full budget.
    let clean = run_strategy(
        Strategy::Uniform,
        &cfg,
        &train,
        None,
        Some(&oracle),
        &test_sets,
    )
    .expect("clean run");
    assert_eq!(clean.n_points_added, 12, "clean run keeps the full budget");
}
