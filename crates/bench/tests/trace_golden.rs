//! Golden test for the export sinks, end to end: install the Chrome
//! trace and JSONL sinks exactly as `--trace-out` / `--events-out` do,
//! run a small multi-threaded span tree, finish, and validate the files
//! structurally with [`aml_bench::minijson`] — valid JSON, the stable
//! field order Perfetto relies on, balanced B/E pairs, thread lanes,
//! and counter events. Integration tests get their own process, so the
//! global sink registry cannot race with the unit-test suites.

use aml_bench::minijson::{self, Value};
use aml_telemetry::{
    counter_add, global, set_level, sink, ChromeTraceSink, JsonlSink, RunHeader, TelemetryLevel,
};

/// Run a deterministic little workload: nested spans on the main thread
/// and one span on a worker thread, plus a counter.
fn exercise() {
    {
        let _outer = aml_telemetry::span!("bench.datagen");
        {
            let _inner = aml_telemetry::span!("netsim.step");
            std::hint::black_box(
                (0..2000u64)
                    .map(|i| i.wrapping_mul(0x9E37_79B9))
                    .sum::<u64>(),
            );
        }
        counter_add("netsim.sim.events", 42);
    }
    std::thread::spawn(|| {
        let _w = aml_telemetry::span!("bench.strategies");
        std::hint::black_box((0..2000u64).map(|i| i ^ 0x5bd1_e995).sum::<u64>());
    })
    .join()
    .unwrap();
}

#[test]
fn trace_and_events_files_are_well_formed() {
    set_level(TelemetryLevel::Summary);
    global().reset();

    let dir = std::env::temp_dir().join(format!("aml_trace_golden_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("trace.json");
    let events_path = dir.join("events.jsonl");

    let header = RunHeader::new("trace_golden", 7);
    sink::install(Box::new(JsonlSink::create(&events_path, &header).unwrap()));
    sink::install(Box::new(
        ChromeTraceSink::create(&trace_path, &header).unwrap(),
    ));

    exercise();

    for (_, result) in sink::finish(&global().snapshot()) {
        result.unwrap();
    }

    check_trace(&std::fs::read_to_string(&trace_path).unwrap());
    check_events(&std::fs::read_to_string(&events_path).unwrap());

    set_level(TelemetryLevel::Off);
    std::fs::remove_dir_all(&dir).ok();
}

fn check_trace(text: &str) {
    let doc = minijson::parse(text).expect("trace.json is valid JSON");

    // Top-level shape, stable key order.
    let top: Vec<&str> = doc
        .as_obj()
        .unwrap()
        .iter()
        .map(|(k, _)| k.as_str())
        .collect();
    assert_eq!(top, ["displayTimeUnit", "otherData", "traceEvents"]);
    assert_eq!(
        doc.get("otherData")
            .unwrap()
            .get("workload")
            .unwrap()
            .as_str(),
        Some("trace_golden")
    );

    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    assert!(!events.is_empty());

    let mut begins = 0u64;
    let mut ends = 0u64;
    let mut names = Vec::new();
    let mut tids = std::collections::BTreeSet::new();
    let mut counters = 0u64;
    let mut thread_names = 0u64;
    let mut last_ts = f64::MIN;
    for ev in events {
        // Per-phase stable field order — Perfetto and diff-based golden
        // checks both rely on it.
        let keys: Vec<&str> = ev
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(ev.get("pid").unwrap().as_u64(), Some(1));
        let ph = ev.get("ph").unwrap().as_str().unwrap();
        match ph {
            "M" => assert_eq!(keys, ["name", "ph", "pid", "tid", "args"], "M field order"),
            "C" => assert_eq!(
                keys,
                ["name", "cat", "ph", "pid", "tid", "ts", "args"],
                "C field order"
            ),
            _ => assert_eq!(
                keys,
                ["name", "cat", "ph", "pid", "tid", "ts"],
                "{ph} order"
            ),
        }
        match ph {
            "B" => {
                begins += 1;
                names.push(ev.get("name").unwrap().as_str().unwrap().to_string());
                tids.insert(ev.get("tid").unwrap().as_u64().unwrap());
                let ts = ev.get("ts").unwrap().as_f64().unwrap();
                assert!(ts >= last_ts, "B/E events must be sorted by ts");
                last_ts = ts;
            }
            "E" => {
                ends += 1;
                let ts = ev.get("ts").unwrap().as_f64().unwrap();
                assert!(ts >= last_ts, "B/E events must be sorted by ts");
                last_ts = ts;
            }
            "M" => {
                assert_eq!(ev.get("name").unwrap().as_str(), Some("thread_name"));
                thread_names += 1;
            }
            "C" => counters += 1,
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert_eq!(begins, ends, "unbalanced B/E events");
    assert_eq!(begins, 3, "three spans were closed");
    for name in ["bench.datagen", "netsim.step", "bench.strategies"] {
        assert!(names.contains(&name.to_string()), "missing span {name}");
    }
    // Main thread and the worker each get a lane with a metadata name.
    assert_eq!(tids.len(), 2, "expected two thread lanes: {tids:?}");
    assert_eq!(thread_names, 2);
    assert!(counters >= 1, "counter events missing");
}

fn check_events(text: &str) {
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 5, "expected run + spans + counter lines");

    // Every line is a standalone JSON object; the first is the header.
    let first = minijson::parse(lines[0]).expect("line 0 parses");
    assert_eq!(first.get("type").unwrap().as_str(), Some("run"));
    assert_eq!(
        first.get("workload").unwrap().as_str(),
        Some("trace_golden")
    );
    assert_eq!(first.get("seed").unwrap().as_u64(), Some(7));

    let mut span_lines = 0;
    let mut counter_lines = 0;
    for (i, line) in lines.iter().enumerate() {
        let v = minijson::parse(line).unwrap_or_else(|e| panic!("line {i} invalid: {e}"));
        match v.get("type").and_then(Value::as_str) {
            Some("span") => {
                span_lines += 1;
                for key in ["name", "tid", "depth", "ts_us", "dur_us"] {
                    assert!(v.get(key).is_some(), "span line {i} lacks {key}");
                }
                assert!(v.get("dur_us").unwrap().as_f64().unwrap() >= 0.0);
            }
            Some("counter") => counter_lines += 1,
            Some(_) => {}
            None => panic!("line {i} has no type"),
        }
    }
    assert_eq!(span_lines, 3, "one line per closed span");
    assert!(counter_lines >= 1, "counter flush lines missing");
}
