//! End-to-end golden tests for causal tracing and critical-path
//! analysis (PR 7).
//!
//! * a full `RunOpts` round trip with `--crit-out` and `--serve` answers
//!   `/crit` mid-run (active, versioned schema) and leaves a `crit.json`
//!   behind whose bytes are exactly what the pinned renderer produces —
//!   `parse_crit` followed by `render_json` must reproduce the file;
//! * the causal tree (span ids, parent links, parallel marks) and the
//!   critical path derived from it are identical whether a fan-out runs
//!   on one worker or four — the determinism contract that makes two
//!   crit reports diffable across machines and thread counts.

use aml_bench::critview::parse_crit;
use aml_bench::RunOpts;
use aml_telemetry::{crit, set_level, tracetree, TelemetryLevel, TraceContext};
use std::io::{Read as _, Write as _};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// All tests mutate process-global telemetry state; serialize them.
static LOCK: Mutex<()> = Mutex::new(());

fn hold() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn http_get(addr: &str, path: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to live plane");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

/// A deterministic two-phase program: a dominant `bench.datagen` phase
/// fanning three scenarios out across `workers` threads, then a short
/// serial `bench.strategies` phase. Slot 2 sleeps an order of magnitude
/// longer than its siblings so the greedy critical-path descent picks
/// the same scenario regardless of scheduler jitter.
fn sample_run(workers: usize) {
    {
        let _datagen = aml_telemetry::span!("bench.datagen");
        let ctx = TraceContext::current();
        let run_slot = |slot: u64| {
            let _handoff = ctx.attach(slot);
            let _span = aml_telemetry::span!("netsim.scenario");
            let ms = if slot == 2 { 20 } else { 1 };
            std::thread::sleep(std::time::Duration::from_millis(ms));
        };
        if workers == 1 {
            (0..3u64).for_each(run_slot);
        } else {
            std::thread::scope(|s| {
                for slot in 0..3u64 {
                    s.spawn(move || run_slot(slot));
                }
            });
        }
    }
    let _strategies = aml_telemetry::span!("bench.strategies");
    std::thread::sleep(std::time::Duration::from_millis(1));
}

#[test]
fn crit_out_round_trips_and_crit_route_answers_mid_run() {
    let _guard = hold();
    let dir = std::env::temp_dir().join(format!("aml_crit_e2e_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let crit_path = dir.join("crit.json");

    let args: Vec<String> = [
        "--crit-out",
        &crit_path.to_string_lossy(),
        "--serve",
        "127.0.0.1:0",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut opts = RunOpts::parse_from(&args).unwrap().unwrap();
    opts.workload = "crit_e2e".into();
    opts.out_dir = dir.clone();
    opts.prepare()
        .expect("prepare activates the trace collector");
    assert!(tracetree::active(), "--crit-out must arm the collector");

    let addr = std::fs::read_to_string(dir.join("serve.addr"))
        .expect("serve.addr written")
        .trim()
        .to_string();

    sample_run(4);

    // /crit mid-run: a live, versioned analysis of the tree so far.
    let live = http_get(&addr, "/crit");
    assert!(live.starts_with("HTTP/1.1 200 OK"), "{live}");
    assert!(live.contains("application/json"), "{live}");
    assert!(live.contains("\"active\":true"), "{live}");
    assert!(
        live.contains(&format!(
            "\"schema_version\":{}",
            aml_telemetry::CRIT_SCHEMA_VERSION
        )),
        "{live}"
    );
    assert!(live.contains("\"critical_path_ns\""), "{live}");

    opts.finish();
    assert!(!tracetree::active(), "finish must disarm the collector");

    // The artifact parses, and re-rendering reproduces it byte for byte:
    // the on-disk format is exactly the pinned renderer's output.
    let text = std::fs::read_to_string(&crit_path).expect("crit.json written");
    let report = parse_crit(&text).expect("crit.json parses");
    assert_eq!(report.render_json(), text, "crit.json bytes drifted");

    // Shape invariants of a real run: the chain is bounded by the wall,
    // contributions partition the dominant phase, datagen dominates.
    assert_eq!(report.dominant_phase, "bench.datagen");
    assert!(report.critical_path_ns <= report.wall_ns, "{report:?}");
    let contrib: u64 = report.path.iter().map(|s| s.contribution_ns).sum();
    assert!(contrib <= report.wall_ns, "{report:?}");
    assert!(!report.path.is_empty());
    assert_eq!(report.path[0].name, "bench.datagen");
    assert!(
        report.path.iter().any(|s| s.name == "netsim.scenario"),
        "{report:?}"
    );
    assert!(report.amdahl.max_speedup >= 1.0, "{report:?}");
    // datagen + three scenarios + strategies.
    assert_eq!(report.nodes, 5, "{report:?}");

    tracetree::reset();
    set_level(TelemetryLevel::Off);
    aml_telemetry::global().reset();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_tree_and_critical_path_are_identical_across_worker_counts() {
    let _guard = hold();
    set_level(TelemetryLevel::Summary);
    aml_telemetry::global().reset();

    let run = |workers: usize| {
        tracetree::reset();
        tracetree::set_active(true);
        sample_run(workers);
        tracetree::set_active(false);
        let nodes = tracetree::entries();
        let shape: Vec<(u64, u64, String, bool)> = nodes
            .iter()
            .map(|n| (n.id, n.parent, n.name.clone(), n.parallel))
            .collect();
        let report = crit::analyze(&nodes, &aml_telemetry::global().snapshot());
        let path: Vec<(String, u64, bool)> = report
            .path
            .iter()
            .map(|s| (s.name.clone(), s.id, s.parallel))
            .collect();
        (shape, path, report.dominant_phase)
    };

    let (shape1, path1, dom1) = run(1);
    let (shape4, path4, dom4) = run(4);
    assert_eq!(shape1, shape4, "tree structure depends on worker count");
    assert_eq!(path1, path4, "critical path depends on worker count");
    assert_eq!(dom1, dom4);
    assert_eq!(dom1, "bench.datagen");
    // The fan-out is visible: every scenario is marked parallel.
    let pars = shape1
        .iter()
        .filter(|(_, _, n, p)| n == "netsim.scenario" && *p);
    assert_eq!(pars.count(), 3);

    tracetree::reset();
    set_level(TelemetryLevel::Off);
    aml_telemetry::global().reset();
}
