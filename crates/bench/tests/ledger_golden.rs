//! Golden test for the experiment-ledger line shapes.
//!
//! Every [`LedgerEvent`] variant's JSON line is pinned byte-for-byte,
//! along with the schema version and the file header. If any assertion
//! here changes, `LEDGER_SCHEMA_VERSION` must be bumped and downstream
//! consumers (`amlreport`, external tooling reading `ledger.jsonl`)
//! revisited — adding a *new* event type or a trailing field is the only
//! change that may land without a bump.

use aml_bench::amlreport;
use aml_telemetry::sink::RunHeader;
use aml_telemetry::{
    EnsembleMember, LedgerEvent, LedgerJsonlSink, ParamValue, Sink, Snapshot, SpaceDim,
    SpaceFamily, LEDGER_SCHEMA_VERSION,
};

#[test]
fn schema_version_is_pinned() {
    assert_eq!(
        LEDGER_SCHEMA_VERSION, 1,
        "bumping the ledger schema version requires updating this golden test \
         and the amlreport parser together"
    );
}

#[test]
fn every_event_line_shape_is_pinned() {
    let cases: Vec<(LedgerEvent, &str)> = vec![
        (
            LedgerEvent::TrialStarted {
                trial: 4,
                rung: 1,
                family: "forest".into(),
                config: "ForestConfig { trees: 8 }".into(),
                params: vec![
                    ("trees".into(), ParamValue::Int(8)),
                    ("lr".into(), ParamValue::Float(0.125)),
                    ("criterion".into(), ParamValue::Cat("gini".into())),
                ],
            },
            r#"{"type":"trial_started","trial":4,"rung":1,"family":"forest","config":"ForestConfig { trees: 8 }","params":{"trees":8,"lr":0.125,"criterion":"gini"}}"#,
        ),
        (
            // An empty params map still renders the object, so schema-v1
            // consumers see a stable trailing field.
            LedgerEvent::TrialStarted {
                trial: 5,
                rung: 0,
                family: "nb".into(),
                config: "NbConfig".into(),
                params: vec![],
            },
            r#"{"type":"trial_started","trial":5,"rung":0,"family":"nb","config":"NbConfig","params":{}}"#,
        ),
        (
            LedgerEvent::SearchSpace {
                families: vec![SpaceFamily {
                    family: "knn".into(),
                    dims: vec![
                        SpaceDim {
                            name: "k".into(),
                            kind: "int".into(),
                            scale: "linear".into(),
                            lo: 1.0,
                            hi: 25.0,
                            choices: vec![],
                        },
                        SpaceDim {
                            name: "weights".into(),
                            kind: "cat".into(),
                            scale: "linear".into(),
                            lo: 0.0,
                            hi: 0.0,
                            choices: vec!["uniform".into(), "distance".into()],
                        },
                    ],
                }],
            },
            r#"{"type":"search_space","families":[{"family":"knn","dims":[{"name":"k","kind":"int","scale":"linear","lo":1,"hi":25,"choices":[]},{"name":"weights","kind":"cat","scale":"linear","lo":0,"hi":0,"choices":["uniform","distance"]}]}]}"#,
        ),
        (
            LedgerEvent::TrialFinished {
                trial: 4,
                rung: 1,
                family: "forest".into(),
                score: 0.875,
            },
            r#"{"type":"trial_finished","trial":4,"rung":1,"family":"forest","score":0.875}"#,
        ),
        (
            LedgerEvent::TrialFailed {
                trial: 9,
                rung: 0,
                family: "mlp".into(),
                reason: "timeout".into(),
            },
            r#"{"type":"trial_failed","trial":9,"rung":0,"family":"mlp","reason":"timeout"}"#,
        ),
        (
            LedgerEvent::EnsembleSelected {
                val_score: 0.9375,
                members: vec![
                    EnsembleMember {
                        trial: 4,
                        family: "forest".into(),
                        weight: 3.0,
                        score: 0.875,
                    },
                    EnsembleMember {
                        trial: 7,
                        family: "logreg".into(),
                        weight: 1.0,
                        score: 0.75,
                    },
                ],
            },
            r#"{"type":"ensemble_selected","val_score":0.9375,"members":[{"trial":4,"family":"forest","weight":3,"score":0.875},{"trial":7,"family":"logreg","weight":1,"score":0.75}]}"#,
        ),
        (
            LedgerEvent::RoundCompleted {
                round: 2,
                strategy: "Within-ALE".into(),
                acc_mean: 0.8125,
                acc_min: 0.75,
                acc_max: 0.875,
                points_added: 40,
                regions: 3,
                ale_std_mean: 0.0625,
                ale_std_max: 0.125,
            },
            r#"{"type":"round_completed","round":2,"strategy":"Within-ALE","acc_mean":0.8125,"acc_min":0.75,"acc_max":0.875,"points_added":40,"regions":3,"ale_std_mean":0.0625,"ale_std_max":0.125}"#,
        ),
        (
            LedgerEvent::RegionSuggested {
                feature: 0,
                name: "pkt_size".into(),
                threshold: 0.0625,
                intervals: vec![(0.25, 0.5), (0.75, 1.0)],
                grid: vec![0.0, 0.5, 1.0],
                mean: vec![0.125, 0.25, 0.125],
                std: vec![0.03125, 0.0625, 0.03125],
            },
            r#"{"type":"region_suggested","feature":0,"name":"pkt_size","threshold":0.0625,"intervals":[[0.25,0.5],[0.75,1]],"grid":[0,0.5,1],"mean":[0.125,0.25,0.125],"std":[0.03125,0.0625,0.03125]}"#,
        ),
        (
            LedgerEvent::AleCurveComputed {
                feature: 1,
                model: "forest".into(),
                method: "ale".into(),
                grid_points: 16,
                rows: 400,
            },
            r#"{"type":"ale_curve","feature":1,"model":"forest","method":"ale","grid_points":16,"rows":400}"#,
        ),
    ];
    for (event, golden) in &cases {
        assert_eq!(&event.to_json_line(), golden, "line shape drifted");
    }
    // Non-finite floats are encoded as null, never NaN/inf tokens.
    let line = LedgerEvent::TrialFinished {
        trial: 0,
        rung: 0,
        family: "mlp".into(),
        score: f64::INFINITY,
    }
    .to_json_line();
    assert_eq!(
        line,
        r#"{"type":"trial_finished","trial":0,"rung":0,"family":"mlp","score":null}"#
    );
}

/// The full file round trip: header + every variant through the sink,
/// back through the `amlreport` parser.
#[test]
fn ledger_file_round_trips_through_amlreport_parser() {
    let dir = std::env::temp_dir().join(format!("aml_ledger_golden_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ledger.jsonl");
    let header = RunHeader {
        run_id: "table1_scream-s11-p2".into(),
        workload: "table1_scream".into(),
        seed: 11,
        git: "abc1234".into(),
    };
    let sink = LedgerJsonlSink::create(&path, &header).unwrap();
    sink.on_ledger_event(&LedgerEvent::SearchSpace {
        families: vec![SpaceFamily {
            family: "forest".into(),
            dims: vec![SpaceDim {
                name: "trees".into(),
                kind: "int".into(),
                scale: "linear".into(),
                lo: 4.0,
                hi: 16.0,
                choices: vec![],
            }],
        }],
    });
    sink.on_ledger_event(&LedgerEvent::TrialStarted {
        trial: 0,
        rung: 0,
        family: "forest".into(),
        config: "ForestConfig { trees: 8 }".into(),
        params: vec![("trees".into(), ParamValue::Int(8))],
    });
    sink.on_ledger_event(&LedgerEvent::TrialFinished {
        trial: 0,
        rung: 0,
        family: "forest".into(),
        score: 0.875,
    });
    sink.on_ledger_event(&LedgerEvent::TrialFailed {
        trial: 1,
        rung: 0,
        family: "mlp".into(),
        reason: "error".into(),
    });
    sink.on_ledger_event(&LedgerEvent::EnsembleSelected {
        val_score: 0.9375,
        members: vec![EnsembleMember {
            trial: 0,
            family: "forest".into(),
            weight: 2.0,
            score: 0.875,
        }],
    });
    sink.on_ledger_event(&LedgerEvent::RoundCompleted {
        round: 0,
        strategy: "Random".into(),
        acc_mean: 0.75,
        acc_min: 0.5,
        acc_max: 1.0,
        points_added: 40,
        regions: 0,
        ale_std_mean: 0.0,
        ale_std_max: 0.0,
    });
    sink.on_ledger_event(&LedgerEvent::RegionSuggested {
        feature: 2,
        name: "ttl".into(),
        threshold: 0.125,
        intervals: vec![(0.5, 0.75)],
        grid: vec![0.0, 0.5, 1.0],
        mean: vec![0.25, 0.5, 0.25],
        std: vec![0.0625, 0.25, 0.0625],
    });
    sink.on_ledger_event(&LedgerEvent::AleCurveComputed {
        feature: 2,
        model: "forest".into(),
        method: "pdp".into(),
        grid_points: 3,
        rows: 100,
    });
    sink.finish(&Snapshot::default()).unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    // Pin the header shape too.
    assert!(
        text.starts_with(
            "{\"type\":\"ledger\",\"schema_version\":1,\"run_id\":\"table1_scream-s11-p2\",\
             \"workload\":\"table1_scream\",\"seed\":11,\"git\":\"abc1234\"}\n"
        ),
        "header drifted: {}",
        text.lines().next().unwrap_or_default()
    );

    let parsed = amlreport::parse_ledger(&text).unwrap();
    assert_eq!(parsed.run_id, "table1_scream-s11-p2");
    assert_eq!(parsed.workload, "table1_scream");
    assert_eq!(parsed.seed, 11);
    assert_eq!(parsed.git, "abc1234");
    assert_eq!(parsed.started, 1);
    assert_eq!(parsed.finished.len(), 1);
    assert_eq!(parsed.failed.len(), 1);
    assert_eq!(parsed.ensembles.len(), 1);
    assert_eq!(parsed.rounds.len(), 1);
    assert_eq!(parsed.bands.len(), 1);
    assert_eq!(parsed.bands[0].intervals, vec![(0.5, 0.75)]);
    assert_eq!(parsed.curves.len(), 1);
    assert_eq!(parsed.curves[0].2, "pdp");

    // The same file feeds the search-observability parser: the declared
    // space and the typed params come back out.
    let search = aml_bench::searchview::parse_search_ledger(&text).unwrap();
    assert_eq!(search.started, 1);
    assert_eq!(search.finished, 1);
    assert_eq!(search.families[0].family, "forest");
    assert_eq!(search.families[0].dims[0].name, "trees");
    assert_eq!(search.families[0].dims[0].visited, 1);

    std::fs::remove_dir_all(&dir).ok();
}
