//! Satellite: checkpoint/resume determinism under *concurrency*.
//!
//! `resume_identity.rs` proves one interrupted job resumes to a
//! byte-identical sorted ledger. The run server adds a new axis: N
//! worker processes checkpointing into sibling directories at the same
//! time. This test drives the real `amlserve --worker` binary —
//! process isolation is exactly what makes concurrent ledgers sound,
//! since the telemetry sink list and the ledger round counter are
//! process-global — and checks that:
//!
//! 1. N jobs run concurrently into sibling dirs without cross-talk;
//! 2. each job, killed mid-run and resumed (again concurrently),
//!    reproduces its uninterrupted reference ledger byte-for-byte
//!    after sorting.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const N_JOBS: usize = 3;

fn worker_exe() -> &'static str {
    env!("CARGO_BIN_EXE_amlserve")
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aml_{name}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Hand-write a job directory the way the server's `/submit` does:
/// `job.json` with an id and a spec. Each job gets its own seed and
/// dataset so cross-talk between siblings would be visible as a ledger
/// diff, not a coincidence.
fn write_job(root: &Path, idx: usize, round_sleep_ms: u64) -> PathBuf {
    let id = format!("c{idx}");
    let dir = root.join(&id);
    fs::create_dir_all(&dir).unwrap();
    let job = format!(
        "{{\"id\":\"{id}\",\"tenant\":\"t\",\"spec\":{{\"name\":\"conc{idx}\",\
         \"seed\":{seed},\"dataset\":{{\"kind\":\"two_moons\",\"n\":200,\"noise\":0.25,\
         \"seed\":{dsseed}}},\"rounds\":[\"Without feedback\",\"Uniform\",\"Within-ALE\"],\
         \"n_candidates\":5,\"round_sleep_ms\":{round_sleep_ms}}}}}",
        seed = 100 + idx as u64 * 13,
        dsseed = 7 + idx as u64,
    );
    fs::write(dir.join("job.json"), job).unwrap();
    dir
}

fn spawn_worker(dir: &Path) -> Child {
    Command::new(worker_exe())
        .arg("--worker")
        .arg(dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap()
}

fn sorted_ledger(dir: &Path) -> Vec<String> {
    let text = fs::read_to_string(dir.join("ledger.jsonl")).unwrap();
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    lines.sort();
    lines
}

#[test]
fn concurrent_sibling_resumes_are_byte_identical() {
    // Reference: the same three jobs run concurrently, uninterrupted.
    let ref_root = fresh_dir("serve_conc_ref");
    let ref_dirs: Vec<PathBuf> = (0..N_JOBS).map(|i| write_job(&ref_root, i, 0)).collect();
    let mut children: Vec<Child> = ref_dirs.iter().map(|d| spawn_worker(d)).collect();
    for child in &mut children {
        let status = child.wait().unwrap();
        assert_eq!(status.code(), Some(0), "reference worker failed");
    }
    let references: Vec<Vec<String>> = ref_dirs.iter().map(|d| sorted_ledger(d)).collect();
    for (i, r) in references.iter().enumerate() {
        assert!(!r.is_empty(), "reference ledger {i} empty");
    }

    // Interrupted: same specs with an inter-round pause, killed as soon
    // as each has a checkpoint on disk, then resumed — all concurrently.
    let cut_root = fresh_dir("serve_conc_cut");
    let cut_dirs: Vec<PathBuf> = (0..N_JOBS).map(|i| write_job(&cut_root, i, 1500)).collect();
    let mut children: Vec<Option<Child>> = cut_dirs.iter().map(|d| Some(spawn_worker(d))).collect();
    let deadline = Instant::now() + Duration::from_secs(120);
    while children.iter().any(Option::is_some) {
        assert!(
            Instant::now() < deadline,
            "timed out waiting for checkpoints"
        );
        for (i, slot) in children.iter_mut().enumerate() {
            let Some(child) = slot.as_mut() else { continue };
            if cut_dirs[i].join("run.ckpt").exists() {
                // SIGKILL — no cooperative path, the crash case.
                child.kill().unwrap();
                child.wait().unwrap();
                *slot = None;
            } else if let Some(status) = child.try_wait().unwrap() {
                panic!("worker {i} exited before checkpointing: {status:?}");
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    // Remove the pause for the resume leg (the pause is not part of the
    // ledger contract) by rewriting job.json with round_sleep_ms 0.
    for (i, dir) in cut_dirs.iter().enumerate() {
        let _ = dir; // specs regenerated from scratch, same fields
        let fresh = write_job(&cut_root, i, 0);
        assert_eq!(&fresh, dir);
    }
    let mut children: Vec<Child> = cut_dirs.iter().map(|d| spawn_worker(d)).collect();
    for (i, child) in children.iter_mut().enumerate() {
        let status = child.wait().unwrap();
        assert_eq!(status.code(), Some(0), "resumed worker {i} failed");
    }

    for (i, dir) in cut_dirs.iter().enumerate() {
        assert_eq!(
            sorted_ledger(dir),
            references[i],
            "job {i}: resumed sorted ledger differs from uninterrupted reference"
        );
        assert!(dir.join("result.json").exists(), "job {i} missing result");
    }

    // Sibling isolation: distinct seeds must yield distinct ledgers —
    // if two jobs had cross-talked through shared state they could
    // converge; identical ledgers across different seeds would be a
    // red flag, not a pass.
    assert_ne!(references[0], references[1]);
    assert_ne!(references[1], references[2]);

    fs::remove_dir_all(&ref_root).ok();
    fs::remove_dir_all(&cut_root).ok();
}
