//! Golden test for the run manifest: a tiny-scale replica of the
//! `table1_scream --quick` pipeline (datagen → strategy with automl search,
//! ALE computation, and oracle labeling → manifest) asserting that
//! `manifest.json` names the expected phases with strictly positive
//! timings. Runs the real simulator and real AutoML — just very small.

use aml_automl::AutoMlConfig;
use aml_bench::RunOpts;
use aml_core::{run_strategy, AleFeedback, ExperimentConfig, Strategy, ThresholdRule};
use aml_dataset::split::split_into_k;
use aml_dataset::Dataset;
use aml_netsim::datagen::{generate_dataset, label_rows};
use aml_netsim::ConditionDomain;
use aml_telemetry::{global, set_level, TelemetryLevel};

/// Span names the manifest of a table1-style run must contain.
const EXPECTED_SPANS: &[&str] = &[
    "bench.datagen",       // dataset generation phase
    "automl.search.run",   // automl search
    "interpret.ale.curve", // ALE computation
    "netsim.labeling",     // oracle labeling of feedback points
    "core.strategy.run[Cross-ALE]",
    "core.strategy.refit[Cross-ALE]",
];

/// Counter names the run must have bumped.
const EXPECTED_COUNTERS: &[&str] = &[
    "automl.candidates_trained",
    "interpret.ale.predictions",
    "netsim.labels",
    "netsim.sim.events",
];

#[test]
fn table1_style_run_writes_expected_manifest() {
    // Own-process global state: integration tests get their own binary, so
    // flipping the level here cannot race with the unit-test suites.
    set_level(TelemetryLevel::Summary);
    global().reset();

    let out_dir = std::env::temp_dir().join(format!("aml_manifest_golden_{}", std::process::id()));
    std::fs::create_dir_all(&out_dir).unwrap();

    let args: Vec<String> = [
        "--quick",
        "--seed",
        "7",
        "--threads",
        "2",
        "--telemetry",
        "summary",
        "--out",
        out_dir.to_str().unwrap(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut opts = RunOpts::parse_from(&args)
        .expect("flags parse")
        .expect("not --help");
    opts.workload = "manifest_golden".into();

    // Tiny but non-degenerate: enough rows for a stratified split and a
    // committee, fast enough for `cargo test`.
    let domain = ConditionDomain {
        link_rate: (2.0, 10.0),
        rtt: (20.0, 60.0),
        loss: (0.0, 0.04),
        flows: (1, 2),
    };

    let (train, test) = {
        let _datagen = aml_telemetry::span!("bench.datagen");
        let train = generate_dataset(&domain, 40, opts.seed, opts.threads).expect("datagen");
        let test =
            generate_dataset(&domain, 40, opts.seed ^ 0x7E57, opts.threads).expect("datagen");
        (train, test)
    };
    let test_sets = split_into_k(&test, 2, opts.seed).expect("test split");

    let oracle = |rows: &[Vec<f64>]| -> aml_core::Result<Dataset> {
        label_rows(rows, &domain, opts.seed ^ 0x04AC1E, opts.threads)
            .map_err(|e| aml_core::CoreError::InvalidParameter(e.to_string()))
    };
    let cfg = ExperimentConfig {
        automl: AutoMlConfig {
            n_candidates: 4,
            parallelism: opts.threads,
            ..Default::default()
        },
        n_feedback_points: 6,
        n_cross_runs: 2,
        ale: AleFeedback {
            threshold: ThresholdRule::QuantileStd(0.75),
            ..Default::default()
        },
        seed: opts.seed,
    };
    run_strategy(
        Strategy::CrossAle,
        &cfg,
        &train,
        None,
        Some(&oracle),
        &test_sets,
    )
    .expect("Cross-ALE runs");

    // Every expected phase was recorded with strictly positive wall time.
    let snapshot = global().snapshot();
    for name in EXPECTED_SPANS {
        let span = snapshot
            .spans
            .iter()
            .find(|s| s.name == *name)
            .unwrap_or_else(|| {
                panic!(
                    "span '{name}' missing from {:?}",
                    snapshot.spans.iter().map(|s| &s.name).collect::<Vec<_>>()
                )
            });
        assert!(span.calls > 0, "span '{name}' has zero calls");
        assert!(span.total_ns > 0, "span '{name}' has zero wall time");
    }
    for name in EXPECTED_COUNTERS {
        let counter = snapshot
            .counters
            .iter()
            .find(|c| c.0 == *name)
            .unwrap_or_else(|| {
                panic!(
                    "counter '{name}' missing from {:?}",
                    snapshot.counters.iter().map(|c| &c.0).collect::<Vec<_>>()
                )
            });
        assert!(counter.1 > 0, "counter '{name}' is zero");
    }

    // finish() writes <out>/manifest.json and the file names the phases.
    opts.finish();
    let manifest_path = out_dir.join("manifest.json");
    let manifest = std::fs::read_to_string(&manifest_path).expect("manifest.json written");
    assert!(manifest.contains("\"schema_version\""), "{manifest}");
    assert!(
        manifest.contains("\"binary\": \"manifest_golden\""),
        "{manifest}"
    );
    assert!(manifest.contains("\"seed\": 7"), "{manifest}");
    for name in EXPECTED_SPANS.iter().chain(EXPECTED_COUNTERS) {
        assert!(
            manifest.contains(&format!("\"{name}\"")),
            "manifest lacks '{name}'"
        );
    }
    // Spans serialize with per-phase timing fields.
    assert!(manifest.contains("\"total_s\""), "{manifest}");
    assert!(manifest.contains("\"mean_ms\""), "{manifest}");

    std::fs::remove_dir_all(&out_dir).ok();
}
