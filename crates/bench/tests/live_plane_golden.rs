//! Golden tests for the live observability plane (ISSUE: PR 4, extended
//! for cross-run observability in PR 6).
//!
//! * the Prometheus text exposition for a fixed registry snapshot is
//!   pinned byte-for-byte — scrape-side dashboards can rely on the shape;
//! * the folded-stack profiler output for a deterministic nested-span
//!   program is pinned (stack keys exactly, self-times by invariant);
//! * a full `RunOpts` round trip with `--serve 127.0.0.1:0` and
//!   `--profile-out` answers `/metrics` mid-run and leaves a
//!   `profile.folded` behind;
//! * the `/events` SSE stream's chunked framing is pinned byte-for-byte,
//!   a stalled client loses frames (counted) instead of growing server
//!   memory, `/runs?tail=N` clamps, `/dashboard` and `/history` serve,
//!   and `--record` appends a parsable history line end to end.

use aml_bench::RunOpts;
use aml_telemetry::ledger::{self, LedgerEvent};
use aml_telemetry::registry::{HistSnapshot, Snapshot, SpanSnapshot, HIST_BUCKETS};
use aml_telemetry::sink::RunHeader;
use aml_telemetry::{profile, serve, set_level, TelemetryLevel};
use std::io::{Read as _, Write as _};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// The tests below all mutate process-global telemetry state; serialize
/// them so `cargo test`'s parallelism cannot interleave.
static LOCK: Mutex<()> = Mutex::new(());

fn hold() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

#[test]
fn prometheus_exposition_is_pinned_byte_for_byte() {
    // Fixed snapshot exercising every section: a plain counter, a labeled
    // counter, a gauge, a span summary, and a labeled histogram with
    // observations 1, 31, 100 (log2 buckets 1, 5, 7).
    let mut buckets = vec![0u64; HIST_BUCKETS];
    buckets[1] = 1;
    buckets[5] = 1;
    buckets[7] = 1;
    let snap = Snapshot {
        spans: vec![SpanSnapshot {
            name: "bench.datagen".into(),
            calls: 2,
            total_ns: 3_500_000_000,
            max_ns: 2_000_000_000,
            min_ns: 1_500_000_000,
        }],
        counters: vec![
            ("automl.candidates_trained".into(), 42),
            ("core.labeler.queries[Cross-ALE]".into(), 7),
        ],
        gauges: vec![("proc.rss_bytes".into(), 8192)],
        histograms: vec![HistSnapshot {
            name: "automl.fit_us[forest]".into(),
            count: 3,
            sum: 132,
            min: 1,
            max: 100,
            p50: 31,
            p95: 127,
            buckets,
        }],
    };
    let expected = "\
# TYPE automl_candidates_trained counter
automl_candidates_trained 42
# TYPE core_labeler_queries counter
core_labeler_queries{key=\"Cross-ALE\"} 7
# TYPE proc_rss_bytes gauge
proc_rss_bytes 8192
# TYPE aml_span_duration_seconds summary
aml_span_duration_seconds{span=\"bench.datagen\",quantile=\"0\"} 1.5
aml_span_duration_seconds{span=\"bench.datagen\",quantile=\"1\"} 2
aml_span_duration_seconds_sum{span=\"bench.datagen\"} 3.5
aml_span_duration_seconds_count{span=\"bench.datagen\"} 2
# TYPE automl_fit_us histogram
automl_fit_us_bucket{key=\"forest\",le=\"1\"} 1
automl_fit_us_bucket{key=\"forest\",le=\"31\"} 2
automl_fit_us_bucket{key=\"forest\",le=\"127\"} 3
automl_fit_us_bucket{key=\"forest\",le=\"+Inf\"} 3
automl_fit_us_sum{key=\"forest\"} 132
automl_fit_us_count{key=\"forest\"} 3
";
    assert_eq!(serve::render_prometheus(&snap), expected);
}

#[test]
fn folded_profile_of_a_deterministic_program_is_pinned() {
    let _guard = hold();
    set_level(TelemetryLevel::Summary);
    aml_telemetry::global().reset();
    profile::reset();
    profile::set_active(true);
    {
        let _root = aml_telemetry::span!("golden.root");
        for _ in 0..3 {
            let _mid = aml_telemetry::span!("golden.mid");
            let _leaf = aml_telemetry::span!("golden.leaf", "x");
        }
        let _solo = aml_telemetry::span!("golden.solo");
    }
    profile::set_active(false);

    // The set of stacks (and their call counts) is fully deterministic.
    let entries = profile::entries();
    let keyed: Vec<(&str, u64)> = entries.iter().map(|(k, s)| (k.as_str(), s.calls)).collect();
    assert_eq!(
        keyed,
        vec![
            ("golden.root", 1),
            ("golden.root;golden.mid", 3),
            ("golden.root;golden.mid;golden.leaf[x]", 3),
            ("golden.root;golden.solo", 1),
        ]
    );
    // Exclusive accounting partitions the root: self-times can never sum
    // past the root span's total wall time.
    let snap = aml_telemetry::global().snapshot();
    let root_total = snap
        .spans
        .iter()
        .find(|s| s.name == "golden.root")
        .unwrap()
        .total_ns;
    let self_sum: u64 = entries.iter().map(|(_, s)| s.self_ns).sum();
    assert!(
        self_sum <= root_total,
        "self {self_sum} > root {root_total}"
    );

    // The folded rendering itself is pinned byte-for-byte on fixed stats.
    let fixed = vec![
        (
            "golden.root".to_string(),
            profile::StackStat {
                self_ns: 1_999_999,
                calls: 1,
            },
        ),
        (
            "golden.root;golden.mid".to_string(),
            profile::StackStat {
                self_ns: 3_000_000,
                calls: 3,
            },
        ),
    ];
    assert_eq!(
        profile::render_folded(&fixed),
        "golden.root 1999\ngolden.root;golden.mid 3000\n"
    );

    profile::reset();
    set_level(TelemetryLevel::Off);
    aml_telemetry::global().reset();
}

fn http_get(addr: &str, path: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to live plane");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

#[test]
fn serve_and_profile_flags_round_trip_through_runopts() {
    let _guard = hold();
    let dir = std::env::temp_dir().join(format!("aml_live_plane_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let args: Vec<String> = [
        "--serve",
        "127.0.0.1:0",
        "--profile-out",
        &dir.join("profile.folded").to_string_lossy(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut opts = RunOpts::parse_from(&args).unwrap().unwrap();
    opts.workload = "live_plane_test".into();
    opts.out_dir = dir.clone();
    opts.prepare().expect("prepare starts the live plane");
    assert_eq!(opts.telemetry, TelemetryLevel::Summary);

    // prepare() wrote the bound address for scripts to pick up.
    let addr = std::fs::read_to_string(dir.join("serve.addr"))
        .expect("serve.addr written")
        .trim()
        .to_string();
    assert_eq!(Some(addr.parse().unwrap()), serve::bound_addr());

    // Produce some span traffic for the plane to report.
    {
        let _root = aml_telemetry::span!("bench.datagen");
        let _inner = aml_telemetry::span!("bench.inner");
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    // /metrics mid-run: valid exposition with span summaries, and — when
    // /proc exists — the resource sampler's gauges. The sampler publishes
    // from its own thread, so poll briefly.
    let metrics = http_get(&addr, "/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
    assert!(
        metrics.contains("aml_span_duration_seconds_count{span=\"bench.datagen\"} 1"),
        "{metrics}"
    );
    if aml_telemetry::resource::sample().is_some() {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let metrics = http_get(&addr, "/metrics");
            if metrics.contains("proc_rss_bytes") {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "sampler gauges never appeared:\n{metrics}"
            );
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
    }
    let health = http_get(&addr, "/healthz");
    assert!(health.contains("\"status\":\"ok\""), "{health}");

    opts.finish();
    // The plane is down and the folded profile is on disk, non-empty.
    assert!(serve::bound_addr().is_none());
    let folded = std::fs::read_to_string(dir.join("profile.folded")).expect("profile.folded");
    assert!(folded.contains("bench.datagen;bench.inner"), "{folded}");

    profile::set_active(false);
    profile::reset();
    set_level(TelemetryLevel::Off);
    aml_telemetry::global().reset();
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Cross-run observability (PR 6): /events, ?tail, /dashboard, /history,
// and the --record history store.
// ---------------------------------------------------------------------

fn test_header(workload: &str) -> RunHeader {
    RunHeader {
        run_id: format!("{workload}-s1-p1"),
        workload: workload.into(),
        seed: 1,
        git: "abc".into(),
    }
}

/// Open `/events` on `addr`, consume the HTTP response head, and return
/// the still-streaming socket positioned at the first chunk.
fn open_events(addr: &str) -> std::net::TcpStream {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect /events");
    write!(stream, "GET /events HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_millis(100)))
        .unwrap();
    let mut head = Vec::new();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        assert!(
            std::time::Instant::now() < deadline,
            "response head never completed: {}",
            String::from_utf8_lossy(&head)
        );
        match stream.read(&mut byte) {
            Ok(1) => head.push(byte[0]),
            Ok(_) => break,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) => panic!("reading response head: {e}"),
        }
    }
    let head = String::from_utf8_lossy(&head).to_string();
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(head.contains("text/event-stream"), "{head}");
    assert!(head.contains("Transfer-Encoding: chunked"), "{head}");
    stream
}

/// Read exactly `n` bytes from a non-blocking-ish stream, bounded by a
/// deadline (the serve thread flushes on a 20ms cycle).
fn read_n(stream: &mut std::net::TcpStream, n: usize) -> Vec<u8> {
    let mut buf = Vec::with_capacity(n);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let mut chunk = [0u8; 4096];
    while buf.len() < n && std::time::Instant::now() < deadline {
        let want = (n - buf.len()).min(chunk.len());
        match stream.read(&mut chunk[..want]) {
            Ok(0) => break,
            Ok(m) => buf.extend_from_slice(&chunk[..m]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) => panic!("reading stream: {e}"),
        }
    }
    buf
}

#[test]
fn sse_frames_are_chunk_encoded_byte_for_byte() {
    let _guard = hold();
    set_level(TelemetryLevel::Summary);
    aml_telemetry::global().reset();
    let addr = serve::start("127.0.0.1:0", &test_header("sse_golden"))
        .unwrap()
        .to_string();
    let mut stream = open_events(&addr);

    // The prologue comment chunk is pinned: 0x19 = 25 payload bytes.
    let prologue = b"19\r\n: aml-telemetry /events\n\n\r\n";
    assert_eq!(
        read_n(&mut stream, prologue.len()),
        prologue,
        "prologue chunk drifted"
    );

    // A phase transition then a ledger event arrive as two SSE frames,
    // in order, each wrapped as one HTTP chunk — pinned byte-for-byte.
    serve::set_phase("search");
    ledger::emit_with(|| LedgerEvent::TrialFailed {
        trial: 3,
        rung: 1,
        family: "mlp".into(),
        reason: "error".into(),
    });
    let expected = "27\r\nevent: phase\ndata: {\"phase\":\"search\"}\n\n\r\n\
                    60\r\nevent: ledger\ndata: {\"type\":\"trial_failed\",\"trial\":3,\"rung\":1,\"family\":\"mlp\",\"reason\":\"error\"}\n\n\r\n";
    let got = read_n(&mut stream, expected.len());
    assert_eq!(String::from_utf8_lossy(&got), expected);

    serve::stop();
    aml_telemetry::sink::finish(&Snapshot::default());
    set_level(TelemetryLevel::Off);
    aml_telemetry::global().reset();
}

#[test]
fn a_stalled_events_client_loses_frames_not_server_memory() {
    let _guard = hold();
    set_level(TelemetryLevel::Summary);
    aml_telemetry::global().reset();
    let addr = serve::start("127.0.0.1:0", &test_header("sse_stall"))
        .unwrap()
        .to_string();
    // Connect, read the head + nothing more: a stalled client.
    let _stalled = open_events(&addr);

    let dropped = || {
        aml_telemetry::global()
            .snapshot()
            .counters
            .iter()
            .find(|(n, _)| n == "serve.events_dropped")
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    // Emit 8 KiB events until the client's bounded buffer overflows.
    // The pending cap is 64 KiB, kernel socket buffers a few hundred KiB
    // more; 4096 * 8 KiB = 32 MiB bounds the test far past either.
    let reason = "x".repeat(8 * 1024);
    let mut emitted = 0u32;
    for _ in 0..4096 {
        ledger::emit_with(|| LedgerEvent::TrialFailed {
            trial: 0,
            rung: 0,
            family: "f".into(),
            reason: reason.clone(),
        });
        emitted += 1;
        if dropped() > 0 {
            break;
        }
    }
    assert!(
        dropped() > 0,
        "no frames dropped after {emitted} 8 KiB events"
    );

    serve::stop();
    aml_telemetry::sink::finish(&Snapshot::default());
    set_level(TelemetryLevel::Off);
    aml_telemetry::global().reset();
}

#[test]
fn runs_tail_param_limits_and_clamps() {
    let _guard = hold();
    set_level(TelemetryLevel::Summary);
    aml_telemetry::global().reset();
    let addr = serve::start("127.0.0.1:0", &test_header("tail_test"))
        .unwrap()
        .to_string();
    for trial in 0..10 {
        ledger::emit_with(|| LedgerEvent::TrialFinished {
            trial,
            rung: 0,
            family: "forest".into(),
            score: 0.5,
        });
    }
    let count = |body: &str| body.matches("\"type\":\"trial_finished\"").count();

    let tail3 = http_get(&addr, "/runs?tail=3");
    assert_eq!(count(&tail3), 3, "{tail3}");
    assert!(tail3.contains("\"trial\":9"), "newest kept: {tail3}");
    assert!(!tail3.contains("\"trial\":6"), "oldest trimmed: {tail3}");

    // tail=0 clamps up to 1; oversized and garbage values fall back to
    // the whole ring.
    assert_eq!(count(&http_get(&addr, "/runs?tail=0")), 1);
    assert_eq!(count(&http_get(&addr, "/runs?tail=9999")), 10);
    assert_eq!(count(&http_get(&addr, "/runs?tail=bogus")), 10);
    assert_eq!(count(&http_get(&addr, "/runs")), 10);

    serve::stop();
    aml_telemetry::sink::finish(&Snapshot::default());
    set_level(TelemetryLevel::Off);
    aml_telemetry::global().reset();
}

#[test]
fn dashboard_and_history_routes_serve_self_contained_content() {
    let _guard = hold();
    set_level(TelemetryLevel::Summary);
    aml_telemetry::global().reset();
    let dir = std::env::temp_dir().join(format!("aml_dash_routes_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let history = dir.join("history.jsonl");
    std::fs::write(
        &history,
        "{\"type\":\"history\",\"schema_version\":1,\"workload\":\"w\",\"seed\":1,\"git\":\"g\",\
         \"source\":\"run\",\"wall_time_s\":10.5,\"top_span_total_s\":9.0,\"peak_rss_bytes\":4096,\
         \"alloc_peak_bytes\":0,\"final_acc\":0.9,\"trials_finished\":3,\"trials_failed\":1,\"rounds\":2}\n\
         not json, a torn line\n",
    )
    .unwrap();
    serve::set_history_path(&history);
    let addr = serve::start("127.0.0.1:0", &test_header("dash_test"))
        .unwrap()
        .to_string();

    let page = http_get(&addr, "/dashboard");
    assert!(page.starts_with("HTTP/1.1 200 OK"), "{page}");
    assert!(page.contains("text/html"), "{page}");
    assert!(page.contains("<!doctype html"), "{page}");
    // Live via SSE + polling, trends via the history store.
    assert!(page.contains("EventSource"), "{page}");
    assert!(page.contains("/metrics"), "{page}");
    assert!(page.contains("/history"), "{page}");
    // Self-contained: no external assets.
    assert!(!page.contains("https://"), "external asset: {page}");
    assert!(!page.contains("src=\"http"), "external asset: {page}");

    let hist = http_get(&addr, "/history");
    assert!(hist.contains("application/json"), "{hist}");
    assert!(hist.contains("\"wall_time_s\":10.5"), "{hist}");
    assert!(!hist.contains("torn"), "torn line leaked: {hist}");

    serve::stop();
    serve::set_history_path(std::path::Path::new(
        aml_telemetry::history::DEFAULT_HISTORY_PATH,
    ));
    aml_telemetry::sink::finish(&Snapshot::default());
    set_level(TelemetryLevel::Off);
    aml_telemetry::global().reset();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn record_flag_appends_a_parsable_history_line_end_to_end() {
    let _guard = hold();
    let dir = std::env::temp_dir().join(format!("aml_record_e2e_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let history = dir.join("history.jsonl");

    let args: Vec<String> = ["--record", &history.to_string_lossy()]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut opts = RunOpts::parse_from(&args).unwrap().unwrap();
    opts.workload = "record_e2e".into();
    opts.out_dir = dir.clone();
    opts.prepare()
        .expect("prepare installs the summary collector");

    // A small run: one finished trial, one failure, one feedback round.
    ledger::emit_with(|| LedgerEvent::TrialFinished {
        trial: 0,
        rung: 0,
        family: "forest".into(),
        score: 0.9,
    });
    ledger::emit_with(|| LedgerEvent::TrialFailed {
        trial: 1,
        rung: 0,
        family: "mlp".into(),
        reason: "error".into(),
    });
    ledger::emit_with(|| LedgerEvent::RoundCompleted {
        round: 0,
        strategy: "Within-ALE".into(),
        acc_mean: 0.8,
        acc_min: 0.7,
        acc_max: 0.9,
        points_added: 10,
        regions: 1,
        ale_std_mean: 0.01,
        ale_std_max: 0.02,
    });
    opts.finish();

    let text = std::fs::read_to_string(&history).expect("history.jsonl written");
    let records = aml_bench::gate::parse_history(&text);
    assert_eq!(records.len(), 1, "{text}");
    let r = &records[0];
    assert_eq!(r.workload, "record_e2e");
    assert_eq!(r.source, "run");
    assert!(r.wall_time_s >= 0.0);
    assert_eq!(r.trials_finished, 1);
    assert_eq!(r.trials_failed, 1);
    assert_eq!(r.rounds, 1);
    assert_eq!(r.final_acc, Some(0.8));
    if aml_telemetry::resource::sample().is_some() {
        assert!(r.peak_rss_bytes > 0, "{r:?}");
    }

    serve::set_history_path(std::path::Path::new(
        aml_telemetry::history::DEFAULT_HISTORY_PATH,
    ));
    set_level(TelemetryLevel::Off);
    aml_telemetry::global().reset();
    std::fs::remove_dir_all(&dir).ok();
}
