//! Golden tests for the live observability plane (ISSUE: PR 4).
//!
//! * the Prometheus text exposition for a fixed registry snapshot is
//!   pinned byte-for-byte — scrape-side dashboards can rely on the shape;
//! * the folded-stack profiler output for a deterministic nested-span
//!   program is pinned (stack keys exactly, self-times by invariant);
//! * a full `RunOpts` round trip with `--serve 127.0.0.1:0` and
//!   `--profile-out` answers `/metrics` mid-run and leaves a
//!   `profile.folded` behind.

use aml_bench::RunOpts;
use aml_telemetry::registry::{HistSnapshot, Snapshot, SpanSnapshot, HIST_BUCKETS};
use aml_telemetry::{profile, serve, set_level, TelemetryLevel};
use std::io::{Read as _, Write as _};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// The tests below all mutate process-global telemetry state; serialize
/// them so `cargo test`'s parallelism cannot interleave.
static LOCK: Mutex<()> = Mutex::new(());

fn hold() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

#[test]
fn prometheus_exposition_is_pinned_byte_for_byte() {
    // Fixed snapshot exercising every section: a plain counter, a labeled
    // counter, a gauge, a span summary, and a labeled histogram with
    // observations 1, 31, 100 (log2 buckets 1, 5, 7).
    let mut buckets = vec![0u64; HIST_BUCKETS];
    buckets[1] = 1;
    buckets[5] = 1;
    buckets[7] = 1;
    let snap = Snapshot {
        spans: vec![SpanSnapshot {
            name: "bench.datagen".into(),
            calls: 2,
            total_ns: 3_500_000_000,
            max_ns: 2_000_000_000,
            min_ns: 1_500_000_000,
        }],
        counters: vec![
            ("automl.candidates_trained".into(), 42),
            ("core.labeler.queries[Cross-ALE]".into(), 7),
        ],
        gauges: vec![("proc.rss_bytes".into(), 8192)],
        histograms: vec![HistSnapshot {
            name: "automl.fit_us[forest]".into(),
            count: 3,
            sum: 132,
            min: 1,
            max: 100,
            p50: 31,
            p95: 127,
            buckets,
        }],
    };
    let expected = "\
# TYPE automl_candidates_trained counter
automl_candidates_trained 42
# TYPE core_labeler_queries counter
core_labeler_queries{key=\"Cross-ALE\"} 7
# TYPE proc_rss_bytes gauge
proc_rss_bytes 8192
# TYPE aml_span_duration_seconds summary
aml_span_duration_seconds{span=\"bench.datagen\",quantile=\"0\"} 1.5
aml_span_duration_seconds{span=\"bench.datagen\",quantile=\"1\"} 2
aml_span_duration_seconds_sum{span=\"bench.datagen\"} 3.5
aml_span_duration_seconds_count{span=\"bench.datagen\"} 2
# TYPE automl_fit_us histogram
automl_fit_us_bucket{key=\"forest\",le=\"1\"} 1
automl_fit_us_bucket{key=\"forest\",le=\"31\"} 2
automl_fit_us_bucket{key=\"forest\",le=\"127\"} 3
automl_fit_us_bucket{key=\"forest\",le=\"+Inf\"} 3
automl_fit_us_sum{key=\"forest\"} 132
automl_fit_us_count{key=\"forest\"} 3
";
    assert_eq!(serve::render_prometheus(&snap), expected);
}

#[test]
fn folded_profile_of_a_deterministic_program_is_pinned() {
    let _guard = hold();
    set_level(TelemetryLevel::Summary);
    aml_telemetry::global().reset();
    profile::reset();
    profile::set_active(true);
    {
        let _root = aml_telemetry::span!("golden.root");
        for _ in 0..3 {
            let _mid = aml_telemetry::span!("golden.mid");
            let _leaf = aml_telemetry::span!("golden.leaf", "x");
        }
        let _solo = aml_telemetry::span!("golden.solo");
    }
    profile::set_active(false);

    // The set of stacks (and their call counts) is fully deterministic.
    let entries = profile::entries();
    let keyed: Vec<(&str, u64)> = entries.iter().map(|(k, s)| (k.as_str(), s.calls)).collect();
    assert_eq!(
        keyed,
        vec![
            ("golden.root", 1),
            ("golden.root;golden.mid", 3),
            ("golden.root;golden.mid;golden.leaf[x]", 3),
            ("golden.root;golden.solo", 1),
        ]
    );
    // Exclusive accounting partitions the root: self-times can never sum
    // past the root span's total wall time.
    let snap = aml_telemetry::global().snapshot();
    let root_total = snap
        .spans
        .iter()
        .find(|s| s.name == "golden.root")
        .unwrap()
        .total_ns;
    let self_sum: u64 = entries.iter().map(|(_, s)| s.self_ns).sum();
    assert!(
        self_sum <= root_total,
        "self {self_sum} > root {root_total}"
    );

    // The folded rendering itself is pinned byte-for-byte on fixed stats.
    let fixed = vec![
        (
            "golden.root".to_string(),
            profile::StackStat {
                self_ns: 1_999_999,
                calls: 1,
            },
        ),
        (
            "golden.root;golden.mid".to_string(),
            profile::StackStat {
                self_ns: 3_000_000,
                calls: 3,
            },
        ),
    ];
    assert_eq!(
        profile::render_folded(&fixed),
        "golden.root 1999\ngolden.root;golden.mid 3000\n"
    );

    profile::reset();
    set_level(TelemetryLevel::Off);
    aml_telemetry::global().reset();
}

fn http_get(addr: &str, path: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to live plane");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

#[test]
fn serve_and_profile_flags_round_trip_through_runopts() {
    let _guard = hold();
    let dir = std::env::temp_dir().join(format!("aml_live_plane_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let args: Vec<String> = [
        "--serve",
        "127.0.0.1:0",
        "--profile-out",
        &dir.join("profile.folded").to_string_lossy(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut opts = RunOpts::parse_from(&args).unwrap().unwrap();
    opts.workload = "live_plane_test".into();
    opts.out_dir = dir.clone();
    opts.prepare().expect("prepare starts the live plane");
    assert_eq!(opts.telemetry, TelemetryLevel::Summary);

    // prepare() wrote the bound address for scripts to pick up.
    let addr = std::fs::read_to_string(dir.join("serve.addr"))
        .expect("serve.addr written")
        .trim()
        .to_string();
    assert_eq!(Some(addr.parse().unwrap()), serve::bound_addr());

    // Produce some span traffic for the plane to report.
    {
        let _root = aml_telemetry::span!("bench.datagen");
        let _inner = aml_telemetry::span!("bench.inner");
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    // /metrics mid-run: valid exposition with span summaries, and — when
    // /proc exists — the resource sampler's gauges. The sampler publishes
    // from its own thread, so poll briefly.
    let metrics = http_get(&addr, "/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
    assert!(
        metrics.contains("aml_span_duration_seconds_count{span=\"bench.datagen\"} 1"),
        "{metrics}"
    );
    if aml_telemetry::resource::sample().is_some() {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let metrics = http_get(&addr, "/metrics");
            if metrics.contains("proc_rss_bytes") {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "sampler gauges never appeared:\n{metrics}"
            );
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
    }
    let health = http_get(&addr, "/healthz");
    assert!(health.contains("\"status\":\"ok\""), "{health}");

    opts.finish();
    // The plane is down and the folded profile is on disk, non-empty.
    assert!(serve::bound_addr().is_none());
    let folded = std::fs::read_to_string(dir.join("profile.folded")).expect("profile.folded");
    assert!(folded.contains("bench.datagen;bench.inner"), "{folded}");

    profile::set_active(false);
    profile::reset();
    set_level(TelemetryLevel::Off);
    aml_telemetry::global().reset();
    std::fs::remove_dir_all(&dir).ok();
}
