//! Tentpole acceptance tests for `amlserve`.
//!
//! * `kill_and_restart_recovers_all_jobs` — the headline robustness
//!   claim: submit three jobs (one with an injected `worker_crash@0`),
//!   SIGKILL the *server* mid-run with jobs queued/running/checkpointed,
//!   restart over the same data directory, and watch recovery drive
//!   every job to `done` — with the interrupted job's final sorted
//!   ledger byte-identical to an uninterrupted reference run.
//! * `overload_gets_429_with_retry_after` — admission control: beyond
//!   the queue bound submissions get 429 + `Retry-After`, and the
//!   `serve_jobs_queued` gauge never exceeds the bound (backpressure,
//!   not buffering).
//! * `submit_burst_fault_rejects_deterministically` — the injected
//!   `submit_burst@N` admission fault.
//! * `tenant_budget_rejects_when_spent` — per-tenant token budgets.
//! * `cancel_paths` — queued jobs cancel immediately; running jobs at
//!   the next round boundary; terminal jobs 409.

use std::fs;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn exe() -> &'static str {
    env!("CARGO_BIN_EXE_amlserve")
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aml_{name}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Start a server with an ephemeral port; resolve the bound address
/// from `<data>/serve.addr`. Every test kills or drains the child and
/// then waits on it; the zombie window clippy flags here is the test
/// body itself.
#[allow(clippy::zombie_processes)]
fn start_server(data: &Path, extra: &[&str]) -> (Child, String) {
    let _ = fs::remove_file(data.join("serve.addr"));
    let child = Command::new(exe())
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--data")
        .arg(data)
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(addr) = fs::read_to_string(data.join("serve.addr")) {
            let addr = addr.trim().to_string();
            if !addr.is_empty() {
                return (child, addr);
            }
        }
        assert!(Instant::now() < deadline, "server never wrote serve.addr");
        std::thread::sleep(Duration::from_millis(20));
    }
}

struct HttpReply {
    status: u32,
    headers: String,
    body: String,
}

impl HttpReply {
    fn header(&self, name: &str) -> Option<String> {
        let lower = name.to_ascii_lowercase();
        self.headers.lines().find_map(|l| {
            let (k, v) = l.split_once(':')?;
            (k.trim().to_ascii_lowercase() == lower).then(|| v.trim().to_string())
        })
    }
}

/// Minimal one-shot HTTP client (the server always answers
/// `Connection: close`, so read-to-EOF is the framing).
fn http(addr: &str, method: &str, path: &str, body: &str) -> HttpReply {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).unwrap();
    let status: u32 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad response: {text}"));
    let (head, payload) = text.split_once("\r\n\r\n").unwrap_or((text.as_str(), ""));
    HttpReply {
        status,
        headers: head.to_string(),
        body: payload.to_string(),
    }
}

/// Poll `GET /jobs` until `pred` on the raw JSON holds.
fn wait_for_jobs(addr: &str, secs: u64, pred: impl Fn(&str) -> bool) -> String {
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        let reply = http(addr, "GET", "/jobs", "");
        if pred(&reply.body) {
            return reply.body;
        }
        assert!(
            Instant::now() < deadline,
            "timed out; last /jobs: {}",
            reply.body
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

fn count(haystack: &str, needle: &str) -> usize {
    haystack.matches(needle).count()
}

fn sorted_ledger(path: &Path) -> Vec<String> {
    let mut lines: Vec<String> = fs::read_to_string(path)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect();
    lines.sort();
    lines
}

const SLOW_SPEC: &str = "{\"name\":\"slow\",\"seed\":41,\"rounds\":[\"Without feedback\",\
    \"Uniform\",\"Within-ALE\",\"Confidence based\"],\"n_candidates\":5,\"round_sleep_ms\":700}";
const FAST_SPEC: &str =
    "{\"name\":\"fast\",\"seed\":42,\"rounds\":[\"Without feedback\",\"Uniform\"],\"n_candidates\":5}";

#[test]
fn kill_and_restart_recovers_all_jobs() {
    let data = fresh_dir("serve_recovery");

    // Life 1: worker_crash@0 makes the FIRST worker launch abort right
    // after checkpointing its first fresh round (exercising crash →
    // retry → resume), --workers 1 keeps the other jobs queued so the
    // SIGKILL below catches jobs in queued/running/checkpointed states.
    let (mut server, addr) = start_server(
        &data,
        &[
            "--workers",
            "1",
            "--fault-plan",
            "worker_crash@0",
            "--retry-base-ms",
            "100",
        ],
    );
    let crash = http(addr.as_str(), "POST", "/submit", SLOW_SPEC);
    assert_eq!(crash.status, 202, "{}", crash.body);
    assert!(crash.body.contains("\"job\":\"j000001\""), "{}", crash.body);
    for _ in 0..2 {
        let r = http(addr.as_str(), "POST", "/submit", FAST_SPEC);
        assert_eq!(r.status, 202, "{}", r.body);
    }

    // Wait until the crash-target job has a checkpoint on disk (i.e. it
    // launched, recorded a round, aborted, and left durable state).
    let j1 = data.join("jobs/j000001");
    let deadline = Instant::now() + Duration::from_secs(60);
    while !j1.join("run.ckpt").exists() {
        assert!(Instant::now() < deadline, "job never checkpointed");
        std::thread::sleep(Duration::from_millis(50));
    }

    // SIGKILL the server. No drain, no cleanup — the crash case.
    server.kill().unwrap();
    server.wait().unwrap();

    // Life 2: same data dir, no fault plan (launch counters restart at
    // zero, so keeping worker_crash@0 would crash the recovery run too
    // — a *new* server life is a new fault schedule). Recovery replays
    // the journal, fences any orphaned worker, requeues unfinished
    // jobs, and the checkpointed one resumes mid-experiment.
    let (mut server, addr) = start_server(&data, &["--workers", "2", "--retry-base-ms", "100"]);
    let jobs = wait_for_jobs(addr.as_str(), 120, |body| {
        count(body, "\"state\":\"done\"") == 3
    });
    assert_eq!(count(&jobs, "\"state\":\"failed\""), 0, "{jobs}");

    // Detail route: result present, checkpoint flagged, ledger tail.
    let detail = http(addr.as_str(), "GET", "/jobs/j000001?tail=5", "");
    assert_eq!(detail.status, 200);
    assert!(
        detail.body.contains("\"state\":\"done\""),
        "{}",
        detail.body
    );
    assert!(
        detail.body.contains("\"checkpoint\":true"),
        "{}",
        detail.body
    );
    assert!(detail.body.contains("\"final_acc\":"), "{}", detail.body);

    // Completion appended one history record per job.
    let history = fs::read_to_string(data.join("history.jsonl")).unwrap();
    assert_eq!(count(&history, "\"source\":\"amlserve\""), 3, "{history}");

    // Metrics surface the lifecycle counters.
    let metrics = http(addr.as_str(), "GET", "/metrics", "").body;
    assert!(metrics.contains("serve_jobs_done"), "{metrics}");
    assert!(metrics.contains("serve_jobs_queued"), "{metrics}");

    // Graceful shutdown drains and exits.
    let reply = http(addr.as_str(), "POST", "/shutdown", "");
    assert_eq!(reply.status, 200, "{}", reply.body);
    let status = server.wait().unwrap();
    assert!(status.success(), "server exit after drain: {status:?}");

    // The journal survived both lives and tells the whole story.
    let journal = fs::read_to_string(data.join("queue.jsonl")).unwrap();
    assert_eq!(count(&journal, "\"event\":\"submitted\""), 3, "{journal}");
    assert!(count(&journal, "\"event\":\"retried\"") >= 1, "{journal}");
    assert_eq!(count(&journal, "\"event\":\"done\""), 3, "{journal}");

    // Byte-identity: re-run the crashed job's spec uninterrupted (same
    // job.json, fresh sibling dir) and compare sorted ledgers.
    let ref_dir = fresh_dir("serve_recovery_ref");
    let job_dir = ref_dir.join("j000001");
    fs::create_dir_all(&job_dir).unwrap();
    // Drop round_sleep_ms from the reference spec: the pause only slows
    // the test down and is not part of the ledger contract.
    let job_json = fs::read_to_string(j1.join("job.json"))
        .unwrap()
        .replace("\"round_sleep_ms\":700", "\"round_sleep_ms\":0");
    fs::write(job_dir.join("job.json"), job_json).unwrap();
    let status = Command::new(exe())
        .arg("--worker")
        .arg(&job_dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(0));
    assert_eq!(
        sorted_ledger(&j1.join("ledger.jsonl")),
        sorted_ledger(&job_dir.join("ledger.jsonl")),
        "crashed+resumed ledger differs from uninterrupted reference"
    );

    fs::remove_dir_all(&data).ok();
    fs::remove_dir_all(&ref_dir).ok();
}

#[test]
fn overload_gets_429_with_retry_after() {
    let data = fresh_dir("serve_overload");
    let (mut server, addr) = start_server(&data, &["--workers", "1", "--queue-cap", "2"]);
    let addr = addr.as_str();

    // One long job occupies the single worker...
    let slow = "{\"name\":\"occupy\",\"seed\":5,\"rounds\":[\"Without feedback\",\"Uniform\"],\
                \"n_candidates\":5,\"round_sleep_ms\":8000}";
    assert_eq!(http(addr, "POST", "/submit", slow).status, 202);
    wait_for_jobs(addr, 30, |b| count(b, "\"state\":\"running\"") == 1);

    // ...two more fill the queue; beyond the cap it's 429 + Retry-After.
    assert_eq!(http(addr, "POST", "/submit", FAST_SPEC).status, 202);
    assert_eq!(http(addr, "POST", "/submit", FAST_SPEC).status, 202);
    for _ in 0..5 {
        let reply = http(addr, "POST", "/submit", FAST_SPEC);
        assert_eq!(reply.status, 429, "{}", reply.body);
        let retry_after: u64 = reply
            .header("Retry-After")
            .expect("429 without Retry-After")
            .parse()
            .unwrap();
        assert!(retry_after >= 1);
    }

    // The queue gauge is pinned at the bound — rejected submissions
    // never buffered anything.
    let metrics = http(addr, "GET", "/metrics", "").body;
    let queued: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("serve_jobs_queued "))
        .expect("serve_jobs_queued gauge missing")
        .trim()
        .parse()
        .unwrap();
    assert!(queued <= 2, "queue gauge exceeds cap: {metrics}");
    assert!(metrics.contains("serve_jobs_rejected"), "{metrics}");

    server.kill().unwrap();
    server.wait().unwrap();
    fs::remove_dir_all(&data).ok();
}

#[test]
fn submit_burst_fault_rejects_deterministically() {
    let data = fresh_dir("serve_burst");
    let (mut server, addr) = start_server(&data, &["--fault-plan", "submit_burst@0"]);
    // Submission 0 hits the injected burst rejection; submission 1 lands.
    let first = http(addr.as_str(), "POST", "/submit", FAST_SPEC);
    assert_eq!(first.status, 429, "{}", first.body);
    assert!(first.body.contains("submit_burst"), "{}", first.body);
    assert!(first.header("Retry-After").is_some());
    let second = http(addr.as_str(), "POST", "/submit", FAST_SPEC);
    assert_eq!(second.status, 202, "{}", second.body);
    server.kill().unwrap();
    server.wait().unwrap();
    fs::remove_dir_all(&data).ok();
}

#[test]
fn tenant_budget_rejects_when_spent() {
    let data = fresh_dir("serve_budget");
    // Budget of 3 tokens; FAST_SPEC costs 2 (one per round).
    let (mut server, addr) = start_server(&data, &["--tenant-budget", "3", "--workers", "1"]);
    let addr = addr.as_str();
    let ok = http(addr, "POST", "/submit", FAST_SPEC);
    assert_eq!(ok.status, 202, "{}", ok.body);
    // Same tenant (default): 2 + 2 > 3 → rejected.
    let broke = http(addr, "POST", "/submit", FAST_SPEC);
    assert_eq!(broke.status, 429, "{}", broke.body);
    assert!(broke.body.contains("budget"), "{}", broke.body);
    // A different tenant has its own budget.
    let mut stream = TcpStream::connect(addr).unwrap();
    let req = format!(
        "POST /submit HTTP/1.1\r\nHost: t\r\nX-Tenant: other\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{FAST_SPEC}",
        FAST_SPEC.len()
    );
    stream.write_all(req.as_bytes()).unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).unwrap();
    assert!(text.starts_with("HTTP/1.1 202"), "{text}");
    server.kill().unwrap();
    server.wait().unwrap();
    fs::remove_dir_all(&data).ok();
}

#[test]
fn cancel_paths() {
    let data = fresh_dir("serve_cancel");
    let (mut server, addr) = start_server(&data, &["--workers", "1"]);
    let addr = addr.as_str();

    // j000001 occupies the worker; j000002 stays queued.
    let slow = "{\"name\":\"victim\",\"seed\":3,\"rounds\":[\"Without feedback\",\"Uniform\",\
                \"Within-ALE\"],\"n_candidates\":5,\"round_sleep_ms\":1500}";
    assert_eq!(http(addr, "POST", "/submit", slow).status, 202);
    assert_eq!(http(addr, "POST", "/submit", FAST_SPEC).status, 202);
    wait_for_jobs(addr, 30, |b| count(b, "\"state\":\"running\"") == 1);

    // Queued job cancels immediately.
    let reply = http(addr, "DELETE", "/jobs/j000002", "");
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert!(reply.body.contains("\"canceled\""), "{}", reply.body);

    // Running job: cooperative cancel at the next round boundary.
    let reply = http(addr, "DELETE", "/jobs/j000001", "");
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert!(reply.body.contains("cancel_requested"), "{}", reply.body);
    wait_for_jobs(addr, 60, |b| count(b, "\"state\":\"canceled\"") == 2);

    // Terminal jobs answer 409; unknown jobs 404.
    assert_eq!(http(addr, "DELETE", "/jobs/j000001", "").status, 409);
    assert_eq!(http(addr, "DELETE", "/jobs/zzz", "").status, 404);

    // The canceled running job kept its durable state for inspection.
    assert!(data.join("jobs/j000001/run.ckpt").exists());

    let reply = http(addr, "POST", "/shutdown", "");
    assert_eq!(reply.status, 200);
    assert!(server.wait().unwrap().success());
    fs::remove_dir_all(&data).ok();
}
