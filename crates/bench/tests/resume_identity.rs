//! Kill-and-resume identity (DESIGN.md §7): a run checkpointed after
//! every feedback round and killed mid-experiment, then resumed with
//! `--resume`, must produce a final ledger whose sorted lines are
//! byte-identical to the same-seed run left uninterrupted.
//!
//! The test drives the same machinery the bench bins use —
//! [`aml_core::ExperimentLoop`] + [`aml_telemetry::LedgerJsonlSink`] —
//! in-process: it runs four feedback rounds straight through, then
//! replays the first two into a second ledger, simulates a SIGKILL by
//! appending a partially-flushed line past the last checkpoint, resumes,
//! and diffs. One `#[test]` per file: the sink list, the fault plan, and
//! the ledger round counter are process-global.

use aml_core::{run_strategy, Checkpoint, ExperimentConfig, ExperimentLoop, Strategy};
use aml_dataset::{split::split_into_k, split::train_test_split, synth, Dataset};
use aml_telemetry::sink::{self, RunHeader};
use aml_telemetry::{LedgerJsonlSink, Snapshot};
use std::fs;
use std::path::Path;

const WORKLOAD: &str = "resume_identity";
const SEED: u64 = 21;
const ROUNDS: [Strategy; 4] = [
    Strategy::NoFeedback,
    Strategy::Uniform,
    Strategy::NoFeedback,
    Strategy::Uniform,
];

fn header() -> RunHeader {
    // Every field pinned: the header line must be byte-identical across
    // the uninterrupted and the resumed ledger.
    RunHeader {
        run_id: format!("{WORKLOAD}-s{SEED}-p1"),
        workload: WORKLOAD.into(),
        seed: SEED,
        git: "test".into(),
    }
}

fn fixtures() -> (Dataset, Vec<Dataset>) {
    let ds = synth::two_moons(240, 0.25, 9).unwrap();
    let (train, test) = train_test_split(&ds, 0.3, true, 1).unwrap();
    let test_sets = split_into_k(&test, 3, 7).unwrap();
    (train, test_sets)
}

/// Per-round config: randomness derives from the master seed and the
/// round index alone (the checkpoint module's determinism contract), so
/// a resumed round 2 equals an uninterrupted round 2.
fn round_cfg(round: u64) -> ExperimentConfig {
    ExperimentConfig {
        automl: aml_automl::AutoMlConfig {
            n_candidates: 6,
            parallelism: 2,
            ..Default::default()
        },
        n_feedback_points: 10,
        n_cross_runs: 2,
        seed: SEED ^ ((round + 1) * 0xA5A5),
        ..Default::default()
    }
}

/// Run rounds `[from, to)` through the experiment loop, exactly like the
/// bench bins: skip checkpointed rounds, record fresh ones.
fn drive(exp_loop: &mut ExperimentLoop, train: &Dataset, test_sets: &[Dataset], to: usize) {
    let oracle = |rows: &[Vec<f64>]| -> aml_core::Result<Dataset> {
        let labels: Vec<usize> = rows.iter().map(|r| usize::from(r[0] > 0.5)).collect();
        Dataset::from_rows(rows, &labels, 2)
            .map_err(|e| aml_core::CoreError::InvalidParameter(e.to_string()))
    };
    for (round, strategy) in ROUNDS.iter().take(to).enumerate() {
        let round = round as u64;
        if let Some(rec) = exp_loop.completed(round) {
            assert_eq!(rec.strategy, strategy.name(), "resumed round mismatch");
            continue;
        }
        let out = run_strategy(
            *strategy,
            &round_cfg(round),
            train,
            None,
            Some(&oracle),
            test_sets,
        )
        .expect("round");
        exp_loop
            .record(ExperimentLoop::round_record(
                round,
                *strategy,
                out.n_points_added,
                &out.scores,
            ))
            .expect("checkpoint");
    }
}

fn sorted_lines(path: &Path) -> Vec<String> {
    let mut lines: Vec<String> = fs::read_to_string(path)
        .unwrap()
        .lines()
        .map(String::from)
        .collect();
    lines.sort();
    lines
}

#[test]
fn resumed_ledger_is_byte_identical_to_uninterrupted_run() {
    let dir = std::env::temp_dir().join(format!("aml_resume_identity_{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    let (train, test_sets) = fixtures();

    // Uninterrupted reference run: four rounds, one process.
    let ledger_a = dir.join("a.jsonl");
    let ckpt_a = dir.join("a.ckpt");
    aml_telemetry::ledger::set_next_round(0);
    sink::install(Box::new(
        LedgerJsonlSink::create(&ledger_a, &header()).unwrap(),
    ));
    let mut loop_a =
        ExperimentLoop::new(WORKLOAD, SEED, Some(ckpt_a.clone()), Some(ledger_a.clone()));
    drive(&mut loop_a, &train, &test_sets, ROUNDS.len());
    sink::finish(&Snapshot::default());
    let reference = sorted_lines(&ledger_a);
    assert!(
        reference
            .iter()
            .any(|l| l.contains("\"type\":\"round_completed\"") && l.contains("\"round\":3,")),
        "reference run must ledger all four rounds"
    );

    // Interrupted run: two rounds, then a simulated SIGKILL — the last
    // flushed state is checkpoint 1, plus a half-written ledger line
    // that never got its newline.
    let ledger_b = dir.join("b.jsonl");
    let ckpt_b = dir.join("b.ckpt");
    aml_telemetry::ledger::set_next_round(0);
    sink::install(Box::new(
        LedgerJsonlSink::create(&ledger_b, &header()).unwrap(),
    ));
    let mut loop_b =
        ExperimentLoop::new(WORKLOAD, SEED, Some(ckpt_b.clone()), Some(ledger_b.clone()));
    drive(&mut loop_b, &train, &test_sets, 2);
    sink::finish(&Snapshot::default());
    let flushed = fs::metadata(&ledger_b).unwrap().len();
    let mut torn = fs::read(&ledger_b).unwrap();
    torn.extend_from_slice(b"{\"type\":\"trial_started\",\"trial\":0,\"ru");
    fs::write(&ledger_b, &torn).unwrap();

    // Resume: prepare_resume drops the torn tail (back to the
    // checkpoint's recorded length) and fast-forwards the round counter
    // before the sink reopens the ledger in append mode — the same
    // ordering RunOpts::prepare uses.
    let ckpt = aml_core::checkpoint::prepare_resume(WORKLOAD, SEED, &ckpt_b, Some(&ledger_b))
        .expect("resume");
    // The original run already wrote its once-per-run search_space line;
    // mark the gate so the continuation doesn't append a second one
    // (RunOpts::prepare does the same on --resume).
    aml_telemetry::ledger::mark_search_space_emitted();
    assert_eq!(ckpt.rounds.len(), 2, "two rounds checkpointed");
    assert_eq!(
        fs::metadata(&ledger_b).unwrap().len(),
        flushed,
        "the torn tail is truncated away"
    );
    sink::install(Box::new(LedgerJsonlSink::append(&ledger_b).unwrap()));
    let mut resumed = ExperimentLoop::from_checkpoint(ckpt, Some(ckpt_b), Some(ledger_b.clone()));
    drive(&mut resumed, &train, &test_sets, ROUNDS.len());
    sink::finish(&Snapshot::default());

    assert_eq!(
        sorted_lines(&ledger_b),
        reference,
        "sorted resumed ledger must be byte-identical to the uninterrupted run"
    );

    // A truncated checkpoint is a typed error, never a panic.
    let text = fs::read_to_string(&ckpt_a).unwrap();
    let cut = &text[..text.len() - 7];
    let err = Checkpoint::decode(cut).expect_err("truncated checkpoint must be rejected");
    assert!(
        matches!(err, aml_core::ExperimentError::CheckpointTruncated { .. }),
        "unexpected error: {err}"
    );

    fs::remove_dir_all(&dir).ok();
}
