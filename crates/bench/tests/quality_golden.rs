//! End-to-end golden tests for the model/data-quality plane.
//!
//! * a full `RunOpts` round trip with `--quality-out`, `--ledger-out`,
//!   and `--serve` answers `/quality` mid-run (active, versioned
//!   schema), exports the quality gauges on `/metrics`, and leaves a
//!   `quality.json` behind whose bytes are exactly what `amlquality`
//!   recomputes from the ledger — the write path and the read path are
//!   held to the same pinned renderer;
//! * `quality.json` is byte-identical whether the underlying AutoML
//!   search trains candidates on 1 worker or 4 — the same determinism
//!   contract as the ledger itself, extended through the analytics.

use aml_automl::AutoMlConfig;
use aml_bench::qualityview::parse_quality_artifact;
use aml_bench::RunOpts;
use aml_core::{run_strategy, ExperimentConfig, Strategy};
use aml_dataset::{split::train_test_split, synth, Dataset};
use aml_telemetry::{ledger, quality, set_level, sink, Snapshot, TelemetryLevel};
use std::io::{Read as _, Write as _};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// All tests mutate process-global telemetry state; serialize them.
static LOCK: Mutex<()> = Mutex::new(());

fn hold() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn http_get(addr: &str, path: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to live plane");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

fn splits() -> (Dataset, Dataset) {
    let ds = synth::two_moons(240, 0.2, 5).unwrap();
    train_test_split(&ds, 0.25, true, 1).unwrap()
}

/// A small-but-real experiment config: enough candidates for a
/// non-trivial ensemble, cheap enough for a test.
fn small_cfg(parallelism: usize) -> ExperimentConfig {
    ExperimentConfig {
        automl: AutoMlConfig {
            n_candidates: 6,
            ensemble_rounds: 5,
            parallelism,
            ..AutoMlConfig::default()
        },
        n_feedback_points: 20,
        n_cross_runs: 2,
        seed: 7,
        ..ExperimentConfig::default()
    }
}

#[test]
fn quality_out_round_trips_and_quality_route_answers_mid_run() {
    let _guard = hold();
    let dir = std::env::temp_dir().join(format!("aml_quality_e2e_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let quality_path = dir.join("quality.json");
    let ledger_path = dir.join("ledger.jsonl");

    let args: Vec<String> = [
        "--quality-out",
        &quality_path.to_string_lossy(),
        "--ledger-out",
        &ledger_path.to_string_lossy(),
        "--serve",
        "127.0.0.1:0",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut opts = RunOpts::parse_from(&args).unwrap().unwrap();
    opts.workload = "quality_e2e".into();
    opts.out_dir = dir.clone();
    opts.prepare()
        .expect("prepare activates the quality collector");
    assert!(quality::active(), "--quality-out must arm the collector");

    let addr = std::fs::read_to_string(dir.join("serve.addr"))
        .expect("serve.addr written")
        .trim()
        .to_string();

    let (train, test) = splits();
    let cfg = small_cfg(2);
    run_strategy(
        Strategy::NoFeedback,
        &cfg,
        &train,
        None,
        None,
        std::slice::from_ref(&test),
    )
    .expect("round 1 runs");

    // /quality mid-run: a live, versioned analysis of the rounds so far.
    let live = http_get(&addr, "/quality");
    assert!(live.starts_with("HTTP/1.1 200 OK"), "{live}");
    assert!(live.contains("application/json"), "{live}");
    assert!(live.contains("\"active\":true"), "{live}");
    assert!(
        live.contains(&format!(
            "\"schema_version\":{}",
            aml_telemetry::QUALITY_SCHEMA_VERSION
        )),
        "{live}"
    );
    assert!(live.contains("\"confusion\":["), "{live}");

    // A second round gives the drift analysis a previous_round reference.
    run_strategy(
        Strategy::NoFeedback,
        &cfg,
        &train,
        None,
        None,
        std::slice::from_ref(&test),
    )
    .expect("round 2 runs");

    // The quality gauges surface on /metrics, PSI per declared feature.
    let metrics = http_get(&addr, "/metrics");
    assert!(metrics.contains("quality_final_acc"), "{metrics}");
    assert!(metrics.contains("quality_ece"), "{metrics}");
    assert!(metrics.contains("quality_psi{key="), "{metrics}");

    opts.finish();
    assert!(!quality::active(), "finish must disarm the collector");

    // The artifact's bytes are exactly what `amlquality --json` recomputes
    // from the ledger: write path and read path share one renderer.
    let json = std::fs::read_to_string(&quality_path).expect("quality.json written");
    let ledger_text = std::fs::read_to_string(&ledger_path).expect("ledger.jsonl written");
    let report = parse_quality_artifact(&ledger_text).expect("ledger parses");
    assert_eq!(report.render_json(), json, "quality.json bytes drifted");

    // Non-degenerate analytics over a real run: both rounds recorded,
    // final diagnostics present, and round 2 drifted against round 1.
    assert_eq!(report.rounds.len(), 2);
    for r in &report.rounds {
        assert_eq!(r.strategy, "Without feedback");
        assert!(r.rows > 0);
        assert!((0.0..=1.0).contains(&r.accuracy), "{r:?}");
        assert!(r.ece.is_finite() && r.ece >= 0.0, "{r:?}");
    }
    let diag = report.final_diag.as_ref().expect("final diagnostics");
    assert_eq!(diag.classes.len(), 2);
    let total: u64 = diag.confusion.iter().flatten().sum();
    assert_eq!(total, test.n_rows() as u64);
    assert_eq!(report.drift.reference, "previous_round");
    assert!(
        report.drift.features.iter().all(|f| f.psi.is_some()),
        "{:?}",
        report.drift
    );
    let last = report.rounds.last().unwrap();
    assert!(
        last.psi_mean.is_some() && last.psi_max.is_some(),
        "{last:?}"
    );

    quality::reset();
    set_level(TelemetryLevel::Off);
    aml_telemetry::global().reset();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn quality_json_is_identical_across_worker_counts() {
    let _guard = hold();
    set_level(TelemetryLevel::Summary);
    let (train, test) = splits();
    let dir = std::env::temp_dir().join(format!("aml_quality_det_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let run = |workers: usize| {
        quality::reset();
        quality::set_active(true);
        // GateSink raises the ledger emission gate so quality events
        // reach the collector without any file sink.
        sink::install(Box::new(quality::GateSink));
        // Pin round numbering so both runs produce the same sequence.
        ledger::set_next_round(0);
        let cfg = small_cfg(workers);
        for round in 0..2 {
            run_strategy(
                Strategy::NoFeedback,
                &cfg,
                &train,
                None,
                None,
                std::slice::from_ref(&test),
            )
            .unwrap_or_else(|e| panic!("round {round} with {workers} workers: {e}"));
        }
        quality::set_active(false);
        let path = dir.join(format!("quality_{workers}.json"));
        quality::write_json(&path).expect("write quality.json");
        for (target, result) in sink::finish(&Snapshot::default()) {
            assert!(result.is_ok(), "finish({target}) failed");
        }
        std::fs::read_to_string(&path).unwrap()
    };

    let one = run(1);
    let four = run(4);
    assert!(one.contains("\"active\":true"), "{one}");
    assert_eq!(
        one, four,
        "quality.json must not depend on the worker count"
    );

    quality::reset();
    set_level(TelemetryLevel::Off);
    aml_telemetry::global().reset();
    std::fs::remove_dir_all(&dir).ok();
}
