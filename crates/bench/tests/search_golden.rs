//! End-to-end golden tests for search observability (PR 8).
//!
//! * a full `RunOpts` round trip with `--search-out`, `--ledger-out`,
//!   and `--serve` answers `/search` mid-run (active, versioned schema)
//!   and leaves a `search.json` behind whose bytes are exactly what
//!   `amlsearch` recomputes from the ledger — the write path and the
//!   read path are held to the same pinned renderer;
//! * `search.json` is byte-identical whether the search trains
//!   candidates on 1 worker or 4 — the same determinism contract as the
//!   ledger itself, extended through the analytics.

use aml_automl::ModelFamily;
use aml_bench::searchview::parse_search_ledger;
use aml_bench::RunOpts;
use aml_dataset::{split::train_test_split, synth, Dataset};
use aml_telemetry::{ledger, searchview, set_level, sink, Snapshot, TelemetryLevel};
use std::io::{Read as _, Write as _};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// All tests mutate process-global telemetry state; serialize them.
static LOCK: Mutex<()> = Mutex::new(());

fn hold() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn http_get(addr: &str, path: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to live plane");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

fn splits() -> (Dataset, Dataset) {
    let ds = synth::two_moons(300, 0.2, 5).unwrap();
    train_test_split(&ds, 0.25, true, 1).unwrap()
}

fn run_search(train: &Dataset, val: &Dataset, parallelism: usize) {
    aml_automl::search::run_search(
        aml_automl::SearchStrategy::SuccessiveHalving,
        12,
        &ModelFamily::ALL,
        train,
        val,
        7,
        parallelism,
        &aml_automl::SearchLimits::default(),
    )
    .expect("search succeeds");
}

#[test]
fn search_out_round_trips_and_search_route_answers_mid_run() {
    let _guard = hold();
    ledger::reset_search_space_gate();
    let dir = std::env::temp_dir().join(format!("aml_search_e2e_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let search_path = dir.join("search.json");
    let ledger_path = dir.join("ledger.jsonl");

    let args: Vec<String> = [
        "--search-out",
        &search_path.to_string_lossy(),
        "--ledger-out",
        &ledger_path.to_string_lossy(),
        "--serve",
        "127.0.0.1:0",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut opts = RunOpts::parse_from(&args).unwrap().unwrap();
    opts.workload = "search_e2e".into();
    opts.out_dir = dir.clone();
    opts.prepare()
        .expect("prepare activates the search collector");
    assert!(searchview::active(), "--search-out must arm the collector");

    let addr = std::fs::read_to_string(dir.join("serve.addr"))
        .expect("serve.addr written")
        .trim()
        .to_string();

    let (train, val) = splits();
    run_search(&train, &val, 2);

    // /search mid-run: a live, versioned analysis of the trials so far.
    let live = http_get(&addr, "/search");
    assert!(live.starts_with("HTTP/1.1 200 OK"), "{live}");
    assert!(live.contains("application/json"), "{live}");
    assert!(live.contains("\"active\":true"), "{live}");
    assert!(
        live.contains(&format!(
            "\"schema_version\":{}",
            aml_telemetry::SEARCH_SCHEMA_VERSION
        )),
        "{live}"
    );
    assert!(live.contains("\"families\":["), "{live}");

    // The search gauges/counters surface on /metrics.
    let metrics = http_get(&addr, "/metrics");
    assert!(metrics.contains("search_trials_inflight"), "{metrics}");
    assert!(metrics.contains("search_rung_promotions"), "{metrics}");
    assert!(metrics.contains("search_rung_eliminations"), "{metrics}");

    opts.finish();
    assert!(!searchview::active(), "finish must disarm the collector");

    // The artifact's bytes are exactly what `amlsearch --json` recomputes
    // from the ledger: write path and read path share one renderer.
    let json = std::fs::read_to_string(&search_path).expect("search.json written");
    let ledger_text = std::fs::read_to_string(&ledger_path).expect("ledger.jsonl written");
    let report = parse_search_ledger(&ledger_text).expect("ledger parses");
    assert_eq!(report.render_json(), json, "search.json bytes drifted");

    // Non-degenerate analytics over a real run: every declared family
    // sampled, every dimension visited somewhere, and the scores varied
    // enough that at least one dimension carries importance signal.
    assert_eq!(report.families.len(), ModelFamily::ALL.len());
    for f in &report.families {
        assert!(f.fits > 0, "family {} never sampled", f.family);
        assert!(!f.dims.is_empty(), "family {} lost its dims", f.family);
        for d in &f.dims {
            assert!(d.visited > 0, "{}.{} never visited", f.family, d.name);
            assert!(d.coverage > 0.0 && d.coverage <= 1.0);
            assert!((0.0..=1.0).contains(&d.importance));
        }
    }
    assert!(report.rungs.len() > 1, "expected a multi-rung funnel");
    assert!(
        report
            .families
            .iter()
            .flat_map(|f| f.dims.iter())
            .any(|d| d.importance > 0.0),
        "all importances degenerate"
    );

    searchview::reset();
    set_level(TelemetryLevel::Off);
    aml_telemetry::global().reset();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn search_json_is_identical_across_worker_counts() {
    let _guard = hold();
    set_level(TelemetryLevel::Summary);
    let (train, val) = splits();
    let dir = std::env::temp_dir().join(format!("aml_search_det_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let run = |workers: usize| {
        searchview::reset();
        searchview::set_active(true);
        // GateSink raises the ledger emission gate so trial events reach
        // the collector without any file sink.
        sink::install(Box::new(searchview::GateSink));
        run_search(&train, &val, workers);
        searchview::set_active(false);
        let path = dir.join(format!("search_{workers}.json"));
        searchview::write_json(&path).expect("write search.json");
        // finish() resets the search_space gate so the next run emits
        // its own declaration.
        for (target, result) in sink::finish(&Snapshot::default()) {
            assert!(result.is_ok(), "finish({target}) failed");
        }
        std::fs::read_to_string(&path).unwrap()
    };

    let one = run(1);
    let four = run(4);
    assert!(one.contains("\"active\":true"), "{one}");
    assert_eq!(one, four, "search.json must not depend on the worker count");

    searchview::reset();
    set_level(TelemetryLevel::Off);
    aml_telemetry::global().reset();
    std::fs::remove_dir_all(&dir).ok();
}
