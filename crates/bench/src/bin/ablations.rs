//! Design-choice ablations (DESIGN.md §4): how the feedback quality depends
//! on (a) the number of Cross-ALE AutoML runs, (b) the ALE grid
//! resolution, and (c) region sampling vs uniform sampling at matched
//! budget — the mechanism behind Table 1's Within-ALE vs Uniform gap.
//!
//! ```sh
//! cargo run --release -p aml-bench --bin ablations [--quick|--full]
//! ```

use aml_automl::AutoMlConfig;
use aml_bench::minijson::{ToJson, Value};
use aml_bench::{cached_dataset, mean, write_json, RunOpts};
use aml_core::{run_strategy, AleFeedback, ExperimentConfig, InterpretationMethod, Strategy};
use aml_dataset::split::split_into_k;
use aml_dataset::Dataset;
use aml_netsim::datagen::{generate_dataset, label_rows};
use aml_netsim::runner::winner_index;
use aml_netsim::sim::{QueueKind, SimConfig, Simulation};
use aml_netsim::{CcKind, ConditionDomain, NetworkCondition};
use aml_telemetry::report;
use std::collections::BTreeMap;

struct AblationResult {
    name: String,
    setting: String,
    mean_balanced_accuracy: f64,
}

impl ToJson for AblationResult {
    fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("name".into(), self.name.to_json()),
            ("setting".into(), self.setting.to_json()),
            (
                "mean_balanced_accuracy".into(),
                self.mean_balanced_accuracy.to_json(),
            ),
        ])
    }
}

fn main() {
    let opts = RunOpts::parse_for("ablations");
    opts.banner("Ablations: cross runs, grid resolution, sampling scheme");

    let n_train = opts.by_scale(150, 400, 1161);
    let n_test = opts.by_scale(600, 1200, 2400);
    let n_feedback = opts.by_scale(50, 100, 280);
    let domain = ConditionDomain::default();
    let threads = opts.threads;

    let datagen_span = aml_telemetry::span!("bench.datagen");
    aml_telemetry::serve::set_phase("datagen");
    let train = cached_dataset(
        &opts.out_dir,
        &format!("scream_train_n{n_train}_s{}", opts.seed),
        || generate_dataset(&domain, n_train, opts.seed, threads).expect("datagen"),
    );
    let test = cached_dataset(
        &opts.out_dir,
        &format!("sweep_test_n{n_test}_s{}", opts.seed),
        || generate_dataset(&domain, n_test, opts.seed ^ 0x7E57, threads).expect("datagen"),
    );
    let test_sets = split_into_k(&test, 6, opts.seed).expect("split");
    drop(datagen_span);
    let ablation_span = aml_telemetry::span!("bench.strategies");
    aml_telemetry::serve::set_phase("strategies");
    let oracle = |rws: &[Vec<f64>]| -> aml_core::Result<Dataset> {
        label_rows(rws, &domain, opts.seed ^ 0x04AC1E, threads)
            .map_err(|e| aml_core::CoreError::InvalidParameter(e.to_string()))
    };

    let base_cfg = |seed: u64| {
        let mut automl = AutoMlConfig {
            n_candidates: 12,
            parallelism: threads,
            ..Default::default()
        };
        opts.apply_automl_limits(&mut automl);
        ExperimentConfig {
            automl,
            n_feedback_points: n_feedback,
            n_cross_runs: 3,
            seed,
            ..Default::default()
        }
    };
    let mut results: Vec<AblationResult> = Vec::new();
    let mut run_one = |name: &str, setting: String, strategy: Strategy, cfg: &ExperimentConfig| {
        let out = run_strategy(strategy, cfg, &train, None, Some(&oracle), &test_sets)
            .unwrap_or_else(|e| panic!("{name} ({setting}) failed: {e}"));
        let ba = mean(&out.scores);
        report(&format!(
            "  {name:<24} {setting:<12} mean BA {:>5.1}%",
            ba * 100.0
        ));
        results.push(AblationResult {
            name: name.into(),
            setting,
            mean_balanced_accuracy: ba,
        });
    };

    report("(a) Cross-ALE run count:");
    for n_runs in [2usize, 3, opts.by_scale(5, 8, 10)] {
        let mut cfg = base_cfg(opts.seed);
        cfg.n_cross_runs = n_runs;
        run_one(
            "cross_runs",
            format!("{n_runs} runs"),
            Strategy::CrossAle,
            &cfg,
        );
    }

    report("(b) ALE grid resolution (Within-ALE):");
    for n_intervals in [8usize, 16, 24, 48] {
        let mut cfg = base_cfg(opts.seed);
        cfg.ale = AleFeedback {
            n_intervals,
            ..Default::default()
        };
        run_one(
            "grid_intervals",
            format!("{n_intervals}"),
            Strategy::WithinAle,
            &cfg,
        );
    }

    report("(c) region sampling vs uniform at the same budget:");
    run_one(
        "sampling",
        "ALE regions".into(),
        Strategy::WithinAle,
        &base_cfg(opts.seed),
    );
    run_one(
        "sampling",
        "uniform".into(),
        Strategy::Uniform,
        &base_cfg(opts.seed),
    );

    report("(d) interpretation method: ALE vs PDP variance:");
    run_one(
        "method",
        "ALE".into(),
        Strategy::WithinAle,
        &base_cfg(opts.seed),
    );
    let mut pdp_cfg = base_cfg(opts.seed);
    pdp_cfg.ale = AleFeedback {
        method: InterpretationMethod::Pdp,
        ..Default::default()
    };
    run_one("method", "PDP".into(), Strategy::WithinAle, &pdp_cfg);

    report("(e) bottleneck queue discipline: does AQM change who wins?");
    queue_discipline_ablation(&opts);

    write_json(&opts.out_dir, "ablations.json", &results);

    // Aggregate view.
    let mut by_name: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    for r in &results {
        by_name
            .entry(r.name.as_str())
            .or_default()
            .push(r.mean_balanced_accuracy);
    }
    report("\nspread per ablation axis (max - min BA):");
    for (name, vals) in by_name {
        let spread = vals.iter().cloned().fold(f64::MIN, f64::max)
            - vals.iter().cloned().fold(f64::MAX, f64::min);
        report(&format!(
            "  {name:<16} {:.1} percentage points",
            spread * 100.0
        ));
    }

    drop(ablation_span);
    opts.finish();
}

/// Re-rank the six protocols on a grid of conditions under DropTail vs RED
/// and report how often the winner changes — a robustness check on the
/// label definition itself (the queue discipline is a domain prior the
/// operator would encode; paper §1's customization vision).
fn queue_discipline_ablation(opts: &aml_bench::RunOpts) {
    let conditions: Vec<NetworkCondition> = [
        (5.0, 40.0, 0.0, 1usize),
        (20.0, 60.0, 0.0, 1),
        (50.0, 100.0, 0.0, 1),
        (20.0, 40.0, 0.02, 1),
        (10.0, 40.0, 0.0, 3),
        (2.0, 150.0, 0.01, 1),
    ]
    .into_iter()
    .map(|(mbps, rtt, loss, flows)| NetworkCondition {
        link_rate_mbps: mbps,
        rtt_ms: rtt,
        loss_rate: loss,
        n_flows: flows,
    })
    .collect();

    let winner_under = |kind: QueueKind, c: NetworkCondition| -> &'static str {
        let results: Vec<_> = CcKind::ALL
            .iter()
            .enumerate()
            .map(|(i, &proto)| {
                let mut cfg =
                    SimConfig::for_condition(c, proto, opts.seed ^ ((i as u64 + 1) * 0x9E37));
                cfg.queue_kind = kind;
                let out = Simulation::new(cfg).expect("config").run().expect("run");
                aml_netsim::runner::ProtocolResult {
                    protocol: proto,
                    throughput_mbps: out.total_throughput_mbps,
                    mean_delay_ms: out.mean_delay_ms,
                    p95_delay_ms: out.p95_delay_ms,
                    qualifies: out.total_throughput_mbps
                        >= aml_netsim::runner::MIN_USEFUL_FRACTION * c.link_rate_mbps,
                }
            })
            .collect();
        results[winner_index(&results)].protocol.name()
    };

    let mut changed = 0;
    for c in conditions {
        let dt = winner_under(QueueKind::DropTail, c);
        let red = winner_under(QueueKind::Red, c);
        let mark = if dt != red {
            changed += 1;
            "  <-- winner changes"
        } else {
            ""
        };
        report(&format!(
            "  {:>5.1} Mbps {:>5.1} ms {:>4.1}% loss {} flow(s): droptail={dt:<7} red={red:<7}{mark}",
            c.link_rate_mbps,
            c.rtt_ms,
            c.loss_rate * 100.0,
            c.n_flows,
        ));
    }
    report(&format!("  winner changed on {changed} of 6 conditions"));
}
