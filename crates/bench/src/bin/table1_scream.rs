//! **Table 1**: Scream-vs-rest balanced accuracy of all nine strategies
//! with one-sided Wilcoxon p-values, the paper's headline experiment.
//!
//! ```sh
//! cargo run --release -p aml-bench --bin table1_scream [--quick|--full] [--seed N]
//! ```
//!
//! Protocol (paper §4): train AutoML on the initial set; each strategy adds
//! its feedback points (280 in the paper; pool variants add what the pool
//! covers); retrain; evaluate balanced accuracy on each of the 20 test
//! sets; repeat the whole thing `repeats` times and pool the paired
//! per-test-set scores for the Wilcoxon tests.

use aml_automl::AutoMlConfig;
use aml_bench::{cached_dataset, mean, write_artifact, write_json, RunOpts};
use aml_core::{
    run_strategy, AleFeedback, ExperimentConfig, ExperimentLoop, Strategy, ThresholdRule,
};
use aml_dataset::split::split_into_k;
use aml_dataset::Dataset;
use aml_netsim::datagen::{generate_dataset, generate_dataset_mode, label_rows, SamplingMode};
use aml_netsim::ConditionDomain;
use aml_telemetry::{note, report};
use std::collections::BTreeMap;

fn main() {
    let opts = RunOpts::parse_for("table1_scream");
    opts.banner("Table 1: Scream vs rest");

    // Paper-scale numbers: 1161 train, +280 feedback, 2000-point pool,
    // 4850 test rows in 20 sets, 10 repeats, 10 Cross-ALE runs.
    let n_train = opts.by_scale(200, 500, 1161);
    let n_feedback = opts.by_scale(60, 140, 280);
    let n_pool = opts.by_scale(400, 900, 2000);
    let n_test = opts.by_scale(800, 2000, 4850);
    let n_test_sets = opts.by_scale(8, 12, 20);
    let repeats = opts.by_scale(2, 4, 10);
    let n_cross_runs = opts.by_scale(3, 5, 10);

    let domain = ConditionDomain::default();
    let threads = opts.threads;

    // Training data comes from a production-like collection campaign
    // (paper §2.2: operators "collect data from production and miss
    // observing unique cases"); the candidate pool is sampled uniformly at
    // random, exactly like the paper's 2000-point candidate set; and the
    // test data is uniform over the whole domain — the deployed model must
    // decide for ANY network condition, including the rare regimes the
    // production traces under-sample. That coverage gap is precisely what
    // the feedback loop exists to close.
    let datagen_span = aml_telemetry::span!("bench.datagen");
    aml_telemetry::serve::set_phase("datagen");
    note(&format!(
        "generating datasets (train {n_train}, pool {n_pool}, test {n_test})..."
    ));
    let train = cached_dataset(
        &opts.out_dir,
        &format!("scream_train_prod_n{n_train}_s{}", opts.seed),
        || {
            generate_dataset_mode(
                &domain,
                n_train,
                opts.seed,
                threads,
                SamplingMode::Production,
            )
            .expect("datagen")
        },
    );
    let pool = cached_dataset(
        &opts.out_dir,
        &format!("scream_pool_n{n_pool}_s{}", opts.seed),
        || generate_dataset(&domain, n_pool, opts.seed ^ 0xB00B, threads).expect("datagen"),
    );
    let test = cached_dataset(
        &opts.out_dir,
        &format!("scream_test_n{n_test}_s{}", opts.seed),
        || generate_dataset(&domain, n_test, opts.seed ^ 0x7E57, threads).expect("datagen"),
    );
    note(&format!(
        "train balance {:?} | pool {:?} | test {:?}",
        train.class_counts(),
        pool.class_counts(),
        test.class_counts()
    ));
    drop(datagen_span);

    let strategies = [
        Strategy::NoFeedback,
        Strategy::WithinAle,
        Strategy::CrossAle,
        Strategy::Uniform,
        Strategy::Confidence,
        Strategy::Upsampling,
        Strategy::Qbc,
        Strategy::WithinAlePool,
        Strategy::CrossAlePool,
    ];

    // Pooled paired scores across repeats: repeats × test-sets entries per
    // strategy, paired by (repeat, test-set).
    let mut all_scores: BTreeMap<Strategy, Vec<f64>> = BTreeMap::new();
    let mut points_added: BTreeMap<Strategy, usize> = BTreeMap::new();

    let strategies_span = aml_telemetry::span!("bench.strategies");
    aml_telemetry::serve::set_phase("strategies");
    // Checkpoint/resume: each (repeat, strategy) application is one
    // feedback round; rounds recorded in a `--checkpoint` file are
    // skipped on `--resume` and their scores reused.
    let mut exp_loop = opts.experiment_loop();
    let mut round: u64 = 0;
    for rep in 0..repeats {
        let rep_seed = opts.seed ^ ((rep as u64 + 1) * 0xA5A5);
        let test_sets = split_into_k(&test, n_test_sets, rep_seed).expect("test split");
        let oracle = |rows: &[Vec<f64>]| -> aml_core::Result<Dataset> {
            label_rows(rows, &domain, rep_seed ^ 0x04AC1E, threads)
                .map_err(|e| aml_core::CoreError::InvalidParameter(e.to_string()))
        };
        let mut automl = AutoMlConfig {
            n_candidates: 16,
            parallelism: threads,
            ..Default::default()
        };
        opts.apply_automl_limits(&mut automl);
        let cfg = ExperimentConfig {
            automl,
            n_feedback_points: n_feedback,
            n_cross_runs,
            // A 0.75-quantile threshold: with small committees the std
            // landscape is flatter than auto-sklearn's 50-member ensembles,
            // so the paper's median rule over-flags; the higher quantile
            // recovers Figure-1-like focused regions (DESIGN.md notes the
            // deviation).
            ale: AleFeedback {
                threshold: ThresholdRule::QuantileStd(0.75),
                ..Default::default()
            },
            seed: rep_seed,
        };
        for strategy in strategies {
            let this_round = round;
            round += 1;
            if let Some(rec) = exp_loop.completed(this_round) {
                assert_eq!(
                    rec.strategy,
                    strategy.name(),
                    "checkpoint round {this_round} records a different strategy — \
                     resumed with mismatched settings?"
                );
                note(&format!(
                    "repeat {}/{repeats} | {:<18} | mean BA {:>5.1}% | +{:>4} pts | resumed",
                    rep + 1,
                    strategy.name(),
                    mean(&rec.scores) * 100.0,
                    rec.points_added,
                ));
                all_scores
                    .entry(strategy)
                    .or_default()
                    .extend(rec.scores.iter());
                *points_added.entry(strategy).or_default() += rec.points_added as usize;
                continue;
            }
            let t0 = std::time::Instant::now();
            let out = run_strategy(
                strategy,
                &cfg,
                &train,
                Some(&pool),
                Some(&oracle),
                &test_sets,
            )
            .unwrap_or_else(|e| panic!("{} failed: {e}", strategy.name()));
            note(&format!(
                "repeat {}/{repeats} | {:<18} | mean BA {:>5.1}% | +{:>4} pts | {:>5.1?}",
                rep + 1,
                strategy.name(),
                mean(&out.scores) * 100.0,
                out.n_points_added,
                t0.elapsed()
            ));
            exp_loop
                .record(ExperimentLoop::round_record(
                    this_round,
                    strategy,
                    out.n_points_added,
                    &out.scores,
                ))
                .unwrap_or_else(|e| panic!("checkpoint after round {this_round} failed: {e}"));
            all_scores
                .entry(strategy)
                .or_default()
                .extend(out.scores.iter());
            *points_added.entry(strategy).or_default() += out.n_points_added;
        }
    }

    drop(strategies_span);

    // Assemble the paper-layout table from the pooled paired scores.
    let report_span = aml_telemetry::span!("bench.report");
    aml_telemetry::serve::set_phase("report");
    let mut outcomes_sorted: Vec<(Strategy, Vec<f64>, usize)> = strategies
        .iter()
        .map(|s| (*s, all_scores[s].clone(), points_added[s] / repeats))
        .collect();
    // Keep Table-1 row order.
    let table = build_table(&mut outcomes_sorted);
    report(&format!("\n{table}"));
    write_artifact(&opts.out_dir, "table1_scream.txt", &table);
    let json: BTreeMap<String, Vec<f64>> = all_scores
        .iter()
        .map(|(s, v)| (s.name().to_string(), v.clone()))
        .collect();
    write_json(&opts.out_dir, "table1_scream_scores.json", &json);

    // Shape checks against the paper (printed, not asserted — EXPERIMENTS.md
    // records them).
    let m = |s: Strategy| mean(&all_scores[&s]);
    report("\nshape checks vs the paper:");
    check(
        "Cross-ALE > Within-ALE",
        m(Strategy::CrossAle) > m(Strategy::WithinAle),
    );
    check(
        "Within-ALE > no feedback",
        m(Strategy::WithinAle) > m(Strategy::NoFeedback),
    );
    check(
        "Uniform < no feedback",
        m(Strategy::Uniform) < m(Strategy::NoFeedback),
    );
    check(
        "free ALE > pool-restricted ALE",
        m(Strategy::CrossAle) > m(Strategy::CrossAlePool)
            && m(Strategy::WithinAle) > m(Strategy::WithinAlePool),
    );
    check(
        "upsampling competitive (within 3% of best)",
        m(Strategy::Upsampling) >= strategies.iter().map(|s| m(*s)).fold(f64::MIN, f64::max) - 0.03,
    );

    drop(report_span);
    opts.finish();
}

fn build_table(outcomes: &mut [(Strategy, Vec<f64>, usize)]) -> String {
    use aml_stats::PairwiseMatrix;
    let mut matrix = PairwiseMatrix::new();
    for (s, scores, pts) in outcomes.iter() {
        let name = if matches!(s, Strategy::WithinAlePool | Strategy::CrossAlePool) {
            format!("{} ({} points)", s.name(), pts)
        } else {
            s.name().to_string()
        };
        matrix.add(name, scores.clone()).expect("paired scores");
    }
    matrix
        .render(&["Without feedback", "Within-ALE", "Cross-ALE"])
        .expect("render")
}

fn check(what: &str, ok: bool) {
    report(&format!("  [{}] {what}", if ok { "ok" } else { "MISS" }));
}
