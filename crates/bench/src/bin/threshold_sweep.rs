//! **§4 "Setting the threshold"** ablation: sweep 𝒯 and measure (a) the
//! flagged-subspace coverage ("lower thresholds result in larger feature
//! subspaces") and (b) the downstream accuracy of Within-ALE feedback at
//! that threshold (the budget trade-off the paper discusses).
//!
//! ```sh
//! cargo run --release -p aml-bench --bin threshold_sweep [--quick|--full]
//! ```

use aml_automl::{AutoMl, AutoMlConfig};
use aml_bench::minijson::{ToJson, Value};
use aml_bench::{cached_dataset, mean, write_json, RunOpts};
use aml_core::{run_strategy, AleFeedback, ExperimentConfig, Strategy, ThresholdRule};
use aml_dataset::split::split_into_k;
use aml_dataset::Dataset;
use aml_netsim::datagen::{generate_dataset, label_rows};
use aml_netsim::ConditionDomain;
use aml_telemetry::report;

struct SweepRow {
    threshold: f64,
    coverage: f64,
    flagged_features: usize,
    mean_balanced_accuracy: f64,
}

impl ToJson for SweepRow {
    fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("threshold".into(), self.threshold.to_json()),
            ("coverage".into(), self.coverage.to_json()),
            ("flagged_features".into(), self.flagged_features.to_json()),
            (
                "mean_balanced_accuracy".into(),
                self.mean_balanced_accuracy.to_json(),
            ),
        ])
    }
}

fn main() {
    let opts = RunOpts::parse_for("threshold_sweep");
    opts.banner("Threshold sweep (ablation)");

    let n_train = opts.by_scale(150, 400, 1161);
    let n_test = opts.by_scale(600, 1200, 2400);
    let n_feedback = opts.by_scale(50, 100, 280);
    let domain = ConditionDomain::default();
    let threads = opts.threads;

    let datagen_span = aml_telemetry::span!("bench.datagen");
    aml_telemetry::serve::set_phase("datagen");
    let train = cached_dataset(
        &opts.out_dir,
        &format!("scream_train_n{n_train}_s{}", opts.seed),
        || generate_dataset(&domain, n_train, opts.seed, threads).expect("datagen"),
    );
    let test = cached_dataset(
        &opts.out_dir,
        &format!("sweep_test_n{n_test}_s{}", opts.seed),
        || generate_dataset(&domain, n_test, opts.seed ^ 0x7E57, threads).expect("datagen"),
    );
    let test_sets = split_into_k(&test, 6, opts.seed).expect("split");
    drop(datagen_span);
    let sweep_span = aml_telemetry::span!("bench.strategies");
    aml_telemetry::serve::set_phase("strategies");

    // Coverage side: one shared analysis per threshold.
    let mut shared_cfg = AutoMlConfig {
        n_candidates: 16,
        parallelism: threads,
        seed: opts.seed,
        ..Default::default()
    };
    opts.apply_automl_limits(&mut shared_cfg);
    let run = AutoMl::new(shared_cfg).fit(&train).expect("automl");

    let thresholds = [0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2];
    let mut rows = Vec::new();
    report(&format!(
        "{:>10} {:>10} {:>16} {:>22}",
        "T", "coverage", "flagged feats", "mean BA after feedback"
    ));
    for &t in &thresholds {
        let ale = AleFeedback {
            threshold: ThresholdRule::Fixed(t),
            ..Default::default()
        };
        let analysis = ale
            .analyze(std::slice::from_ref(&run), &train)
            .expect("analysis");
        let coverage = mean(
            &analysis
                .regions
                .iter()
                .map(|r| r.coverage())
                .collect::<Vec<_>>(),
        );
        let flagged = analysis.flagged_features().len();

        // Accuracy side: Within-ALE feedback at this threshold.
        let oracle = |rws: &[Vec<f64>]| -> aml_core::Result<Dataset> {
            label_rows(rws, &domain, opts.seed ^ 0x04AC1E, threads)
                .map_err(|e| aml_core::CoreError::InvalidParameter(e.to_string()))
        };
        let mut automl = AutoMlConfig {
            n_candidates: 16,
            parallelism: threads,
            ..Default::default()
        };
        opts.apply_automl_limits(&mut automl);
        let cfg = ExperimentConfig {
            automl,
            n_feedback_points: n_feedback,
            n_cross_runs: 2,
            ale,
            seed: opts.seed,
        };
        let ba = match run_strategy(
            Strategy::WithinAle,
            &cfg,
            &train,
            None,
            Some(&oracle),
            &test_sets,
        ) {
            Ok(out) => mean(&out.scores),
            // A very high threshold flags nothing — the feedback returns
            // NoRegions and the operator keeps the baseline model.
            Err(aml_core::CoreError::NoRegions) => f64::NAN,
            Err(e) => panic!("sweep at T={t} failed: {e}"),
        };
        report(&format!(
            "{t:>10.3} {:>9.1}% {flagged:>16} {:>21.1}%",
            coverage * 100.0,
            ba * 100.0
        ));
        rows.push(SweepRow {
            threshold: t,
            coverage,
            flagged_features: flagged,
            mean_balanced_accuracy: ba,
        });
    }

    // Monotonicity check (the paper's qualitative claim).
    let coverages: Vec<f64> = rows.iter().map(|r| r.coverage).collect();
    let monotone = coverages.windows(2).all(|w| w[1] <= w[0] + 1e-9);
    report(&format!(
        "\ncoverage monotonically shrinks as T grows: {}",
        if monotone { "yes (matches §4)" } else { "NO" }
    ));
    write_json(&opts.out_dir, "threshold_sweep.json", &rows);

    drop(sweep_span);
    opts.finish();
}
