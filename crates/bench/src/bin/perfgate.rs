//! `perfgate` — the perf-regression gate (DESIGN.md §6).
//!
//! Three modes:
//!
//! * **Run** (default): execute the benchmark workloads at a fixed seed,
//!   collect their `BENCH_<workload>.json` reports over a few repeats,
//!   and write the per-workload median report into the output directory.
//!   Workload binaries are found next to `perfgate` itself (they are
//!   cargo siblings in `target/<profile>/`). With `--record` each
//!   workload additionally appends one cross-run history record (median
//!   perf + the rep-0 ledger's accuracy/trial summary) to the
//!   append-only history store.
//! * **Compare** (`--compare OLD NEW`): diff two reports with the gate
//!   math in [`aml_bench::gate`] and exit nonzero on regression, with a
//!   human-readable table either way.
//! * **Against history** (`--against-history N NEW...`): gate each BENCH
//!   report against the rolling median of the last N history records of
//!   its workload, so a regression is judged against the trajectory
//!   instead of one frozen baseline. Missing history passes with a
//!   warning (a brand-new workload must not fail CI).
//!
//! Exit codes: 0 pass, 1 regression (or a workload failed to run),
//! 2 usage error.

use aml_bench::amlreport::{parse_ledger, LedgerData};
use aml_bench::critview::parse_crit;
use aml_bench::gate::{
    compare, gate_against_history, gate_quality_against_history, history_baseline, parse_history,
    GateConfig, GateOutcome,
};
use aml_bench::minijson::Value;
use aml_bench::qualityview::parse_quality_artifact;
use aml_bench::report::{median_report, BenchReport};
use aml_telemetry::history::DEFAULT_HISTORY_PATH;
use aml_telemetry::{CritReport, HistoryRecord};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const USAGE: &str = "\
perfgate — run benchmark workloads and gate on perf regressions

usage:
  perfgate [run options]            run workloads, write BENCH_<w>.json
  perfgate --compare OLD NEW [...]  diff two BENCH reports, exit 1 on regression
  perfgate --against-history N NEW... [...]
                                    gate BENCH reports against the rolling
                                    median of the last N history records

run options:
  --workloads A,B,C       comma-separated workload binaries
                          (default table1_scream,table2_firewall,threshold_sweep)
  --repeats N             repeats per workload, median-aggregated (default 3)
  --seed N                seed passed to every workload (default 11)
  --threads N             worker threads per workload (default 2)
  --out DIR               output directory (default target/perfgate)
  --full                  run at paper scale instead of --quick
  --record [PATH]         append one history record per workload (median perf
                          + rep-0 ledger summary) to PATH
                          (default results/history/history.jsonl)
  --timeout MS            kill a workload running longer than MS milliseconds;
                          writes TIMEOUT_<workload>.json (timed_out: true)
                          into the output directory and exits nonzero
  --fault-plan SPEC       forward a deterministic fault plan to every
                          workload (see the workload binaries' --help)

compare / against-history options:
  --history PATH          history store to gate against
                          (default results/history/history.jsonl)
  --tolerance PCT         allowed relative growth in percent (default 10)
  --abs-floor-ms MS       absolute growth floor in milliseconds (default 5)
  --scale F               multiply NEW's timings by F before comparing
                          (test hook: --scale 2 must trip the gate)
  --json                  print the verdict as JSON instead of the table
                          (same exit codes; schema in gate::render_json,
                          plus history_requested/history_n for
                          --against-history; history_n 0 = no baseline,
                          vacuous pass)
  --crit PATH             attach the critical-path summary from a
                          --crit-out artifact (run mode writes one to
                          <out>/<workload>/crit.json): the top spans by
                          contribution land in the --json verdict under
                          \"crit\", table mode appends the crit table.
                          An unreadable file warns and is skipped
  --gate-quality          (against-history only) additionally gate model
                          quality — final balanced accuracy (a *drop*
                          regresses) and ECE — against the history
                          medians; metrics absent on either side pass
                          vacuously
  --quality PATH          quality artifact supplying the new run's
                          final-accuracy/ECE measurements for
                          --gate-quality: a ledger.jsonl (run mode writes
                          one to <out>/<workload>/ledger.jsonl) or a
                          --quality-out quality.json
  --acc-scale F           multiply the new run's final accuracy by F
                          before gating (test hook: --acc-scale 0.5 must
                          trip --gate-quality)

exit codes: 0 pass, 1 regression or run failure, 2 usage error";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    let code = if args.iter().any(|a| a == "--against-history") {
        match parse_against(&args).map(run_against) {
            Ok(code) => code,
            Err(msg) => usage_error(&msg),
        }
    } else if args.iter().any(|a| a == "--compare") {
        match parse_compare(&args).map(run_compare) {
            Ok(code) => code,
            Err(msg) => usage_error(&msg),
        }
    } else {
        match parse_run(&args).map(run_workloads) {
            Ok(code) => code,
            Err(msg) => usage_error(&msg),
        }
    };
    std::process::exit(code);
}

fn usage_error(msg: &str) -> i32 {
    eprintln!("error: {msg}\n\n{USAGE}");
    2
}

// ---------------------------------------------------------------- compare

struct CompareOpts {
    old: PathBuf,
    new: PathBuf,
    cfg: GateConfig,
    json: bool,
    crit: Option<PathBuf>,
}

fn parse_compare(args: &[String]) -> Result<CompareOpts, String> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut cfg = GateConfig::default();
    let mut json = false;
    let mut crit = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--compare" => {}
            "--json" => json = true,
            "--crit" => crit = Some(PathBuf::from(str_value(args, &mut i, "--crit")?)),
            "--tolerance" => cfg.tolerance_pct = float_value(args, &mut i, "--tolerance")?,
            "--abs-floor-ms" => {
                cfg.abs_floor_s = float_value(args, &mut i, "--abs-floor-ms")? / 1e3;
            }
            "--scale" => cfg.scale_new = float_value(args, &mut i, "--scale")?,
            flag if flag.starts_with("--") => return Err(format!("unknown flag '{flag}'")),
            path => paths.push(PathBuf::from(path)),
        }
        i += 1;
    }
    if cfg.tolerance_pct < 0.0 || cfg.abs_floor_s < 0.0 || cfg.scale_new <= 0.0 {
        return Err("--tolerance/--abs-floor-ms must be >= 0 and --scale > 0".into());
    }
    match <[PathBuf; 2]>::try_from(paths) {
        Ok([old, new]) => Ok(CompareOpts {
            old,
            new,
            cfg,
            json,
            crit,
        }),
        Err(other) => Err(format!(
            "--compare expects exactly two report paths, got {}",
            other.len()
        )),
    }
}

fn run_compare(opts: CompareOpts) -> i32 {
    let load = |path: &Path| -> Result<BenchReport, String> {
        BenchReport::load(path).map_err(|e| format!("{}: {e}", path.display()))
    };
    let (old, new) = match (load(&opts.old), load(&opts.new)) {
        (Ok(old), Ok(new)) => (old, new),
        (old, new) => {
            for err in [old.err(), new.err()].into_iter().flatten() {
                eprintln!("error: {err}");
            }
            return 2;
        }
    };
    let outcome = compare(&old, &new, &opts.cfg);
    let crit = opts.crit.as_deref().and_then(load_crit);
    if opts.json {
        println!(
            "{}",
            outcome.render_json_with(&old.workload, &opts.cfg, crit_fields(crit.as_ref()))
        );
        return i32::from(!outcome.passed());
    }
    println!(
        "perfgate: {} ({} @ {}) vs ({} @ {})",
        old.workload,
        old.git,
        opts.old.display(),
        new.git,
        opts.new.display()
    );
    print!("{}", outcome.render_table(&opts.cfg));
    if let Some(report) = &crit {
        print!("{}", report.render_table());
    }
    if outcome.passed() {
        println!("PASS");
        0
    } else {
        println!("FAIL");
        1
    }
}

// ---------------------------------------------------------- against-history

struct AgainstOpts {
    n: usize,
    history: PathBuf,
    reports: Vec<PathBuf>,
    cfg: GateConfig,
    json: bool,
    crit: Option<PathBuf>,
    gate_quality: bool,
    quality: Option<PathBuf>,
    acc_scale: f64,
}

fn parse_against(args: &[String]) -> Result<AgainstOpts, String> {
    let mut opts = AgainstOpts {
        n: 0,
        history: PathBuf::from(DEFAULT_HISTORY_PATH),
        reports: Vec::new(),
        cfg: GateConfig::default(),
        json: false,
        crit: None,
        gate_quality: false,
        quality: None,
        acc_scale: 1.0,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--against-history" => {
                opts.n = int_value(args, &mut i, "--against-history")? as usize;
                if opts.n == 0 {
                    return Err("--against-history expects a window of >= 1 records".into());
                }
            }
            "--history" => opts.history = PathBuf::from(str_value(args, &mut i, "--history")?),
            "--json" => opts.json = true,
            "--crit" => opts.crit = Some(PathBuf::from(str_value(args, &mut i, "--crit")?)),
            "--gate-quality" => opts.gate_quality = true,
            "--quality" => {
                opts.quality = Some(PathBuf::from(str_value(args, &mut i, "--quality")?))
            }
            "--acc-scale" => opts.acc_scale = float_value(args, &mut i, "--acc-scale")?,
            "--tolerance" => opts.cfg.tolerance_pct = float_value(args, &mut i, "--tolerance")?,
            "--abs-floor-ms" => {
                opts.cfg.abs_floor_s = float_value(args, &mut i, "--abs-floor-ms")? / 1e3;
            }
            "--scale" => opts.cfg.scale_new = float_value(args, &mut i, "--scale")?,
            flag if flag.starts_with("--") => return Err(format!("unknown flag '{flag}'")),
            path => opts.reports.push(PathBuf::from(path)),
        }
        i += 1;
    }
    if opts.cfg.tolerance_pct < 0.0 || opts.cfg.abs_floor_s < 0.0 || opts.cfg.scale_new <= 0.0 {
        return Err("--tolerance/--abs-floor-ms must be >= 0 and --scale > 0".into());
    }
    if opts.acc_scale <= 0.0 {
        return Err("--acc-scale must be > 0".into());
    }
    if opts.quality.is_some() && !opts.gate_quality {
        return Err("--quality requires --gate-quality".into());
    }
    if opts.reports.is_empty() {
        return Err("--against-history expects at least one BENCH report path".into());
    }
    Ok(opts)
}

/// The new run's quality measurements for `--gate-quality`, from a
/// `--quality` artifact (ledger.jsonl or quality.json). Problems warn
/// and return nothing — the quality gate then passes vacuously rather
/// than failing on a missing artifact. Balanced accuracy is the
/// measurement because the history's `final_acc` is the experiment
/// loop's balanced-accuracy mean — the gate must compare like to like.
fn quality_measurements(path: &Path) -> (Option<f64>, Option<f64>) {
    let attempt = std::fs::read_to_string(path)
        .map_err(|e| e.to_string())
        .and_then(|text| parse_quality_artifact(&text));
    match attempt {
        Ok(report) => match report.rounds.last() {
            Some(last) => (
                Some(last.balanced_accuracy).filter(|a| a.is_finite()),
                Some(last.ece).filter(|e| e.is_finite()),
            ),
            None => {
                eprintln!(
                    "perfgate: warning: --quality {}: no quality rounds recorded",
                    path.display()
                );
                (None, None)
            }
        },
        Err(e) => {
            eprintln!("perfgate: warning: --quality {}: {e}", path.display());
            (None, None)
        }
    }
}

fn run_against(opts: AgainstOpts) -> i32 {
    // A missing store is the day-one case, not an error: every workload
    // then passes vacuously (with a warning) until --record seeds it.
    let text = std::fs::read_to_string(&opts.history).unwrap_or_default();
    let records = parse_history(&text);
    // One --crit artifact attaches to every verdict printed (CI gates one
    // report at a time, where this is unambiguous).
    let crit = opts.crit.as_deref().and_then(load_crit);
    // The new run's quality measurements, when --gate-quality was given
    // with a --quality artifact; absent measurements pass vacuously.
    let (quality_acc, quality_ece) = match (opts.gate_quality, &opts.quality) {
        (true, Some(path)) => quality_measurements(path),
        _ => (None, None),
    };
    let mut failed = false;
    for path in &opts.reports {
        let report = match BenchReport::load(path) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {}: {e}", path.display());
                return 2;
            }
        };
        let new = HistoryRecord {
            workload: report.workload.clone(),
            seed: report.seed,
            git: report.git.clone(),
            source: "report".into(),
            wall_time_s: report.wall_time_s,
            top_span_total_s: report.top_span_total_s,
            peak_rss_bytes: 0,
            alloc_peak_bytes: report.alloc.as_ref().map_or(0, |a| a.peak_bytes),
            final_acc: quality_acc.map(|a| a * opts.acc_scale),
            trials_finished: 0,
            trials_failed: 0,
            rounds: 0,
            ece: quality_ece,
        };
        match history_baseline(&records, &report.workload, opts.n) {
            Some(baseline) => {
                let mut outcome = gate_against_history(&baseline, &new, &opts.cfg);
                if opts.gate_quality {
                    outcome
                        .diffs
                        .extend(gate_quality_against_history(&baseline, &new, &opts.cfg).diffs);
                }
                if opts.json {
                    println!(
                        "{}",
                        outcome.render_history_json_with(
                            &report.workload,
                            &opts.cfg,
                            opts.n,
                            baseline.n_used,
                            crit_fields(crit.as_ref()),
                        )
                    );
                } else {
                    println!(
                        "perfgate: {} ({}) vs median of last {} history record(s) in {}",
                        report.workload,
                        report.git,
                        baseline.n_used,
                        opts.history.display()
                    );
                    print!("{}", outcome.render_table(&opts.cfg));
                    if let Some(report) = &crit {
                        print!("{}", report.render_table());
                    }
                    println!("{}", if outcome.passed() { "PASS" } else { "FAIL" });
                }
                failed |= !outcome.passed();
            }
            None => {
                let empty = GateOutcome {
                    diffs: vec![],
                    unmatched: vec![],
                };
                if opts.json {
                    println!(
                        "{}",
                        empty.render_history_json_with(
                            &report.workload,
                            &opts.cfg,
                            opts.n,
                            0,
                            crit_fields(crit.as_ref()),
                        )
                    );
                } else {
                    eprintln!(
                        "perfgate: warning: no history for {} in {} — passing by default \
                         (run with --record to seed the store)",
                        report.workload,
                        opts.history.display()
                    );
                    println!("PASS (no history)");
                }
            }
        }
    }
    i32::from(failed)
}

// ------------------------------------------------------------------- crit

/// Load a `--crit` artifact for embedding in a verdict. Problems warn and
/// return `None` — attaching context must never flip the gate itself.
fn load_crit(path: &Path) -> Option<CritReport> {
    let attempt = std::fs::read_to_string(path)
        .map_err(|e| e.to_string())
        .and_then(|text| parse_crit(&text));
    match attempt {
        Ok(report) => Some(report),
        Err(e) => {
            eprintln!("perfgate: warning: --crit {}: {e}", path.display());
            None
        }
    }
}

/// The `"crit"` object appended to `--json` verdicts: the Amdahl ceiling
/// plus the critical-path spans that contribute the most wall time, so a
/// regression verdict carries the "where did it go" answer inline.
fn crit_fields(report: Option<&CritReport>) -> Vec<(String, Value)> {
    let Some(report) = report else {
        return Vec::new();
    };
    let mut segments: Vec<_> = report.path.iter().collect();
    segments.sort_by(|a, b| {
        b.contribution_ns
            .cmp(&a.contribution_ns)
            .then_with(|| a.name.cmp(&b.name))
    });
    let top: Vec<Value> = segments
        .into_iter()
        .take(5)
        .map(|s| {
            Value::Obj(vec![
                ("name".into(), Value::Str(s.name.clone())),
                ("total_ns".into(), Value::Num(s.total_ns as f64)),
                (
                    "contribution_ns".into(),
                    Value::Num(s.contribution_ns as f64),
                ),
                ("parallel".into(), Value::Bool(s.parallel)),
            ])
        })
        .collect();
    vec![(
        "crit".into(),
        Value::Obj(vec![
            ("wall_ns".into(), Value::Num(report.wall_ns as f64)),
            (
                "critical_path_ns".into(),
                Value::Num(report.critical_path_ns as f64),
            ),
            (
                "dominant_phase".into(),
                Value::Str(report.dominant_phase.clone()),
            ),
            (
                "serial_fraction".into(),
                Value::Num(report.amdahl.serial_fraction),
            ),
            ("max_speedup".into(), Value::Num(report.amdahl.max_speedup)),
            ("top_segments".into(), Value::Arr(top)),
        ]),
    )]
}

// -------------------------------------------------------------------- run

struct RunPlanOpts {
    workloads: Vec<String>,
    repeats: usize,
    seed: u64,
    threads: usize,
    out: PathBuf,
    full: bool,
    record: Option<PathBuf>,
    timeout: Option<Duration>,
    fault_plan: Option<String>,
}

fn parse_run(args: &[String]) -> Result<RunPlanOpts, String> {
    let mut opts = RunPlanOpts {
        workloads: ["table1_scream", "table2_firewall", "threshold_sweep"]
            .map(String::from)
            .to_vec(),
        repeats: 3,
        seed: 11,
        threads: 2,
        out: PathBuf::from("target/perfgate"),
        full: false,
        record: None,
        timeout: None,
        fault_plan: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workloads" => {
                opts.workloads = str_value(args, &mut i, "--workloads")?
                    .split(',')
                    .filter(|w| !w.is_empty())
                    .map(String::from)
                    .collect();
                if opts.workloads.is_empty() {
                    return Err("--workloads expects at least one name".into());
                }
            }
            "--repeats" => {
                opts.repeats = int_value(args, &mut i, "--repeats")? as usize;
                if opts.repeats == 0 {
                    return Err("--repeats must be >= 1".into());
                }
            }
            "--seed" => opts.seed = int_value(args, &mut i, "--seed")?,
            "--threads" => {
                opts.threads = int_value(args, &mut i, "--threads")? as usize;
                if opts.threads == 0 {
                    return Err("--threads must be >= 1".into());
                }
            }
            "--out" => opts.out = PathBuf::from(str_value(args, &mut i, "--out")?),
            "--full" => opts.full = true,
            "--record" => {
                // The path is optional: a following flag (or nothing)
                // means "use the default store".
                opts.record = Some(match args.get(i + 1).map(String::as_str) {
                    Some(v) if !v.starts_with("--") => {
                        i += 1;
                        PathBuf::from(v)
                    }
                    _ => PathBuf::from(DEFAULT_HISTORY_PATH),
                });
            }
            "--timeout" => {
                let ms = int_value(args, &mut i, "--timeout")?;
                if ms == 0 {
                    return Err("--timeout must be >= 1 ms".into());
                }
                opts.timeout = Some(Duration::from_millis(ms));
            }
            "--fault-plan" => {
                let spec = str_value(args, &mut i, "--fault-plan")?;
                // Validate here so typos are usage errors, not per-child
                // failures; the spec is forwarded verbatim.
                aml_faults::FaultPlan::parse(spec).map_err(|e| format!("--fault-plan: {e}"))?;
                opts.fault_plan = Some(spec.to_string());
            }
            unknown => return Err(format!("unknown flag '{unknown}'")),
        }
        i += 1;
    }
    Ok(opts)
}

fn run_workloads(opts: RunPlanOpts) -> i32 {
    let bin_dir = match std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(Path::to_path_buf))
    {
        Some(dir) => dir,
        None => {
            eprintln!("error: cannot locate the benchmark binaries next to perfgate");
            return 1;
        }
    };
    if let Err(e) = std::fs::create_dir_all(&opts.out) {
        eprintln!("error: cannot create --out {}: {e}", opts.out.display());
        return 2;
    }
    let mut failed = false;
    for workload in &opts.workloads {
        match run_one_workload(&bin_dir, workload, &opts) {
            Ok((path, median)) => {
                println!("perfgate: wrote {}", path.display());
                if let Some(store) = &opts.record {
                    let ledger = opts.out.join(workload).join("ledger.jsonl");
                    let record = history_from_gate_run(workload, &median, &ledger);
                    match record.append(store) {
                        Ok(()) => {
                            println!("perfgate: recorded history -> {}", store.display())
                        }
                        Err(e) => {
                            eprintln!(
                                "error: {workload}: cannot append --record {}: {e}",
                                store.display()
                            );
                            failed = true;
                        }
                    }
                }
            }
            Err(msg) => {
                eprintln!("error: {workload}: {msg}");
                failed = true;
            }
        }
    }
    if failed {
        1
    } else {
        0
    }
}

/// Run one workload `opts.repeats` times, median-aggregate the reports,
/// and write `BENCH_<workload>.json` into the output directory. The
/// first repeat also exports `trace.json` / `events.jsonl` /
/// `ledger.jsonl` / `crit.json` for the workload so every gate run
/// doubles as a profiling artifact (and feeds `amlreport` / `amlcrit`).
fn run_one_workload(
    bin_dir: &Path,
    workload: &str,
    opts: &RunPlanOpts,
) -> Result<(PathBuf, BenchReport), String> {
    let bin = bin_dir.join(workload);
    if !bin.is_file() {
        return Err(format!(
            "binary not found at {} (build the workspace first)",
            bin.display()
        ));
    }
    let work_dir = opts.out.join(workload);
    let mut reports = Vec::with_capacity(opts.repeats);
    for rep in 0..opts.repeats {
        let rep_dir = work_dir.join(format!("rep{rep}"));
        let mut cmd = Command::new(&bin);
        cmd.arg(if opts.full { "--full" } else { "--quick" })
            .args(["--seed", &opts.seed.to_string()])
            .args(["--threads", &opts.threads.to_string()])
            .args(["--telemetry", "summary"])
            .arg("--emit-bench")
            .args(["--out".as_ref(), rep_dir.as_os_str()])
            .stdout(Stdio::null())
            .stderr(Stdio::piped());
        if let Some(plan) = &opts.fault_plan {
            cmd.args(["--fault-plan", plan]);
        }
        if rep == 0 {
            cmd.args([
                "--trace-out".as_ref(),
                work_dir.join("trace.json").as_os_str(),
            ])
            .args([
                "--events-out".as_ref(),
                work_dir.join("events.jsonl").as_os_str(),
            ])
            .args([
                "--ledger-out".as_ref(),
                work_dir.join("ledger.jsonl").as_os_str(),
            ])
            .args([
                "--crit-out".as_ref(),
                work_dir.join("crit.json").as_os_str(),
            ]);
        }
        eprintln!("perfgate: {workload} rep {}/{} …", rep + 1, opts.repeats);
        let (status, stderr) = wait_with_timeout(cmd, &bin, opts.timeout).map_err(|e| match e {
            WaitError::Spawn(msg) => msg,
            WaitError::TimedOut(elapsed) => {
                let verdict = timeout_verdict(workload, rep, opts, elapsed);
                let path = opts.out.join(format!("TIMEOUT_{workload}.json"));
                if let Err(e) = std::fs::write(&path, verdict.render()) {
                    eprintln!("perfgate: cannot write {}: {e}", path.display());
                } else {
                    eprintln!("perfgate: wrote {}", path.display());
                }
                format!(
                    "rep {rep} exceeded --timeout {} ms (killed after {} ms)",
                    opts.timeout.expect("timeout set").as_millis(),
                    elapsed.as_millis()
                )
            }
        })?;
        if !status.success() {
            return Err(format!(
                "exited with {status}\n{}",
                String::from_utf8_lossy(&stderr)
            ));
        }
        let report_path = rep_dir.join(BenchReport::file_name(workload));
        reports.push(
            BenchReport::load(&report_path)
                .map_err(|e| format!("no report at {}: {e}", report_path.display()))?,
        );
    }
    let median = median_report(&reports).ok_or("no reports collected")?;
    let path = median
        .write(&opts.out)
        .map_err(|e| format!("cannot write median report: {e}"))?;
    Ok((path, median))
}

/// Distill a gate run into one history record: perf numbers from the
/// median report, ML totals from the rep-0 ledger. A missing or
/// unparsable ledger degrades to zero totals with a warning — recording
/// must never fail the gate run itself.
fn history_from_gate_run(
    workload: &str,
    median: &BenchReport,
    ledger_path: &Path,
) -> HistoryRecord {
    let ledger: Option<LedgerData> =
        std::fs::read_to_string(ledger_path)
            .ok()
            .and_then(|text| match parse_ledger(&text) {
                Ok(data) => Some(data),
                Err(e) => {
                    eprintln!("perfgate: warning: {}: {e}", ledger_path.display());
                    None
                }
            });
    let final_acc = ledger
        .as_ref()
        .and_then(|l| l.rounds.last())
        .map(|r| r.acc_mean)
        .filter(|a| a.is_finite());
    // The same ledger carries the quality events; recompute ECE from it
    // so gate runs feed the quality gate's history medians too.
    let ece = std::fs::read_to_string(ledger_path)
        .ok()
        .and_then(|text| parse_quality_artifact(&text).ok())
        .and_then(|q| q.rounds.last().map(|r| r.ece))
        .filter(|e| e.is_finite());
    HistoryRecord {
        workload: workload.to_string(),
        seed: median.seed,
        git: median.git.clone(),
        source: "perfgate".into(),
        wall_time_s: median.wall_time_s,
        top_span_total_s: median.top_span_total_s,
        peak_rss_bytes: 0,
        alloc_peak_bytes: median.alloc.as_ref().map_or(0, |a| a.peak_bytes),
        final_acc,
        trials_finished: ledger.as_ref().map_or(0, |l| l.finished.len() as u64),
        trials_failed: ledger.as_ref().map_or(0, |l| l.failed.len() as u64),
        rounds: ledger.as_ref().map_or(0, |l| l.rounds.len() as u64),
        ece,
    }
}

enum WaitError {
    Spawn(String),
    TimedOut(Duration),
}

/// Spawn `cmd` and wait for it, enforcing the optional wall-clock budget.
/// Stderr (already configured as piped) is drained on a background thread
/// so a chatty child can never deadlock on a full pipe buffer while the
/// main loop polls `try_wait`. On timeout the child is killed and reaped.
fn wait_with_timeout(
    mut cmd: Command,
    bin: &Path,
    timeout: Option<Duration>,
) -> Result<(std::process::ExitStatus, Vec<u8>), WaitError> {
    let start = Instant::now();
    let mut child = cmd
        .spawn()
        .map_err(|e| WaitError::Spawn(format!("failed to spawn {}: {e}", bin.display())))?;
    let stderr_reader = child.stderr.take().map(|mut pipe| {
        std::thread::spawn(move || {
            use std::io::Read;
            let mut buf = Vec::new();
            let _ = pipe.read_to_end(&mut buf);
            buf
        })
    });
    let collect_stderr = |reader: Option<std::thread::JoinHandle<Vec<u8>>>| -> Vec<u8> {
        reader.and_then(|h| h.join().ok()).unwrap_or_default()
    };
    loop {
        match child.try_wait() {
            Ok(Some(status)) => return Ok((status, collect_stderr(stderr_reader))),
            Ok(None) => {}
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(WaitError::Spawn(format!("wait failed: {e}")));
            }
        }
        if let Some(budget) = timeout {
            let elapsed = start.elapsed();
            if elapsed > budget {
                let _ = child.kill();
                let _ = child.wait();
                drop(collect_stderr(stderr_reader));
                return Err(WaitError::TimedOut(elapsed));
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// The JSON verdict written when a workload blows its wall-clock budget —
/// machine-readable evidence (`timed_out: true`) for CI to assert on.
fn timeout_verdict(workload: &str, rep: usize, opts: &RunPlanOpts, elapsed: Duration) -> Value {
    Value::Obj(vec![
        ("workload".into(), Value::Str(workload.into())),
        ("timed_out".into(), Value::Bool(true)),
        ("repeat".into(), Value::Num(rep as f64)),
        (
            "timeout_ms".into(),
            Value::Num(opts.timeout.map_or(0.0, |d| d.as_millis() as f64)),
        ),
        ("elapsed_ms".into(), Value::Num(elapsed.as_millis() as f64)),
        ("seed".into(), Value::Num(opts.seed as f64)),
    ])
}

// ---------------------------------------------------------------- values

fn str_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> Result<&'a str, String> {
    *i += 1;
    args.get(*i)
        .map(String::as_str)
        .filter(|v| !v.starts_with("--"))
        .ok_or_else(|| format!("{flag} expects a value"))
}

fn int_value(args: &[String], i: &mut usize, flag: &str) -> Result<u64, String> {
    let v = str_value(args, i, flag)?;
    v.parse()
        .map_err(|_| format!("{flag} expects an integer, got '{v}'"))
}

fn float_value(args: &[String], i: &mut usize, flag: &str) -> Result<f64, String> {
    let v = str_value(args, i, flag)?;
    v.parse::<f64>()
        .ok()
        .filter(|f| f.is_finite())
        .ok_or_else(|| format!("{flag} expects a number, got '{v}'"))
}
