//! `perfgate` — the perf-regression gate (DESIGN.md §6).
//!
//! Two modes:
//!
//! * **Run** (default): execute the benchmark workloads at a fixed seed,
//!   collect their `BENCH_<workload>.json` reports over a few repeats,
//!   and write the per-workload median report into the output directory.
//!   Workload binaries are found next to `perfgate` itself (they are
//!   cargo siblings in `target/<profile>/`).
//! * **Compare** (`--compare OLD NEW`): diff two reports with the gate
//!   math in [`aml_bench::gate`] and exit nonzero on regression, with a
//!   human-readable table either way.
//!
//! Exit codes: 0 pass, 1 regression (or a workload failed to run),
//! 2 usage error.

use aml_bench::gate::{compare, GateConfig};
use aml_bench::minijson::Value;
use aml_bench::report::{median_report, BenchReport};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const USAGE: &str = "\
perfgate — run benchmark workloads and gate on perf regressions

usage:
  perfgate [run options]            run workloads, write BENCH_<w>.json
  perfgate --compare OLD NEW [...]  diff two BENCH reports, exit 1 on regression

run options:
  --workloads A,B,C       comma-separated workload binaries
                          (default table1_scream,table2_firewall,threshold_sweep)
  --repeats N             repeats per workload, median-aggregated (default 3)
  --seed N                seed passed to every workload (default 11)
  --threads N             worker threads per workload (default 2)
  --out DIR               output directory (default target/perfgate)
  --full                  run at paper scale instead of --quick
  --timeout MS            kill a workload running longer than MS milliseconds;
                          writes TIMEOUT_<workload>.json (timed_out: true)
                          into the output directory and exits nonzero
  --fault-plan SPEC       forward a deterministic fault plan to every
                          workload (see the workload binaries' --help)

compare options:
  --tolerance PCT         allowed relative growth in percent (default 10)
  --abs-floor-ms MS       absolute growth floor in milliseconds (default 5)
  --scale F               multiply NEW's timings by F before comparing
                          (test hook: --scale 2 must trip the gate)
  --json                  print the verdict as JSON instead of the table
                          (same exit codes; schema in gate::render_json)

exit codes: 0 pass, 1 regression or run failure, 2 usage error";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    let code = if args.iter().any(|a| a == "--compare") {
        match parse_compare(&args).map(run_compare) {
            Ok(code) => code,
            Err(msg) => usage_error(&msg),
        }
    } else {
        match parse_run(&args).map(run_workloads) {
            Ok(code) => code,
            Err(msg) => usage_error(&msg),
        }
    };
    std::process::exit(code);
}

fn usage_error(msg: &str) -> i32 {
    eprintln!("error: {msg}\n\n{USAGE}");
    2
}

// ---------------------------------------------------------------- compare

struct CompareOpts {
    old: PathBuf,
    new: PathBuf,
    cfg: GateConfig,
    json: bool,
}

fn parse_compare(args: &[String]) -> Result<CompareOpts, String> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut cfg = GateConfig::default();
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--compare" => {}
            "--json" => json = true,
            "--tolerance" => cfg.tolerance_pct = float_value(args, &mut i, "--tolerance")?,
            "--abs-floor-ms" => {
                cfg.abs_floor_s = float_value(args, &mut i, "--abs-floor-ms")? / 1e3;
            }
            "--scale" => cfg.scale_new = float_value(args, &mut i, "--scale")?,
            flag if flag.starts_with("--") => return Err(format!("unknown flag '{flag}'")),
            path => paths.push(PathBuf::from(path)),
        }
        i += 1;
    }
    if cfg.tolerance_pct < 0.0 || cfg.abs_floor_s < 0.0 || cfg.scale_new <= 0.0 {
        return Err("--tolerance/--abs-floor-ms must be >= 0 and --scale > 0".into());
    }
    match <[PathBuf; 2]>::try_from(paths) {
        Ok([old, new]) => Ok(CompareOpts {
            old,
            new,
            cfg,
            json,
        }),
        Err(other) => Err(format!(
            "--compare expects exactly two report paths, got {}",
            other.len()
        )),
    }
}

fn run_compare(opts: CompareOpts) -> i32 {
    let load = |path: &Path| -> Result<BenchReport, String> {
        BenchReport::load(path).map_err(|e| format!("{}: {e}", path.display()))
    };
    let (old, new) = match (load(&opts.old), load(&opts.new)) {
        (Ok(old), Ok(new)) => (old, new),
        (old, new) => {
            for err in [old.err(), new.err()].into_iter().flatten() {
                eprintln!("error: {err}");
            }
            return 2;
        }
    };
    let outcome = compare(&old, &new, &opts.cfg);
    if opts.json {
        println!("{}", outcome.render_json(&old.workload, &opts.cfg));
        return i32::from(!outcome.passed());
    }
    println!(
        "perfgate: {} ({} @ {}) vs ({} @ {})",
        old.workload,
        old.git,
        opts.old.display(),
        new.git,
        opts.new.display()
    );
    print!("{}", outcome.render_table(&opts.cfg));
    if outcome.passed() {
        println!("PASS");
        0
    } else {
        println!("FAIL");
        1
    }
}

// -------------------------------------------------------------------- run

struct RunPlanOpts {
    workloads: Vec<String>,
    repeats: usize,
    seed: u64,
    threads: usize,
    out: PathBuf,
    full: bool,
    timeout: Option<Duration>,
    fault_plan: Option<String>,
}

fn parse_run(args: &[String]) -> Result<RunPlanOpts, String> {
    let mut opts = RunPlanOpts {
        workloads: ["table1_scream", "table2_firewall", "threshold_sweep"]
            .map(String::from)
            .to_vec(),
        repeats: 3,
        seed: 11,
        threads: 2,
        out: PathBuf::from("target/perfgate"),
        full: false,
        timeout: None,
        fault_plan: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workloads" => {
                opts.workloads = str_value(args, &mut i, "--workloads")?
                    .split(',')
                    .filter(|w| !w.is_empty())
                    .map(String::from)
                    .collect();
                if opts.workloads.is_empty() {
                    return Err("--workloads expects at least one name".into());
                }
            }
            "--repeats" => {
                opts.repeats = int_value(args, &mut i, "--repeats")? as usize;
                if opts.repeats == 0 {
                    return Err("--repeats must be >= 1".into());
                }
            }
            "--seed" => opts.seed = int_value(args, &mut i, "--seed")?,
            "--threads" => {
                opts.threads = int_value(args, &mut i, "--threads")? as usize;
                if opts.threads == 0 {
                    return Err("--threads must be >= 1".into());
                }
            }
            "--out" => opts.out = PathBuf::from(str_value(args, &mut i, "--out")?),
            "--full" => opts.full = true,
            "--timeout" => {
                let ms = int_value(args, &mut i, "--timeout")?;
                if ms == 0 {
                    return Err("--timeout must be >= 1 ms".into());
                }
                opts.timeout = Some(Duration::from_millis(ms));
            }
            "--fault-plan" => {
                let spec = str_value(args, &mut i, "--fault-plan")?;
                // Validate here so typos are usage errors, not per-child
                // failures; the spec is forwarded verbatim.
                aml_faults::FaultPlan::parse(spec).map_err(|e| format!("--fault-plan: {e}"))?;
                opts.fault_plan = Some(spec.to_string());
            }
            unknown => return Err(format!("unknown flag '{unknown}'")),
        }
        i += 1;
    }
    Ok(opts)
}

fn run_workloads(opts: RunPlanOpts) -> i32 {
    let bin_dir = match std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(Path::to_path_buf))
    {
        Some(dir) => dir,
        None => {
            eprintln!("error: cannot locate the benchmark binaries next to perfgate");
            return 1;
        }
    };
    if let Err(e) = std::fs::create_dir_all(&opts.out) {
        eprintln!("error: cannot create --out {}: {e}", opts.out.display());
        return 2;
    }
    let mut failed = false;
    for workload in &opts.workloads {
        match run_one_workload(&bin_dir, workload, &opts) {
            Ok(path) => println!("perfgate: wrote {}", path.display()),
            Err(msg) => {
                eprintln!("error: {workload}: {msg}");
                failed = true;
            }
        }
    }
    if failed {
        1
    } else {
        0
    }
}

/// Run one workload `opts.repeats` times, median-aggregate the reports,
/// and write `BENCH_<workload>.json` into the output directory. The
/// first repeat also exports `trace.json` / `events.jsonl` /
/// `ledger.jsonl` for the workload so every gate run doubles as a
/// profiling artifact (and feeds `amlreport`).
fn run_one_workload(bin_dir: &Path, workload: &str, opts: &RunPlanOpts) -> Result<PathBuf, String> {
    let bin = bin_dir.join(workload);
    if !bin.is_file() {
        return Err(format!(
            "binary not found at {} (build the workspace first)",
            bin.display()
        ));
    }
    let work_dir = opts.out.join(workload);
    let mut reports = Vec::with_capacity(opts.repeats);
    for rep in 0..opts.repeats {
        let rep_dir = work_dir.join(format!("rep{rep}"));
        let mut cmd = Command::new(&bin);
        cmd.arg(if opts.full { "--full" } else { "--quick" })
            .args(["--seed", &opts.seed.to_string()])
            .args(["--threads", &opts.threads.to_string()])
            .args(["--telemetry", "summary"])
            .arg("--emit-bench")
            .args(["--out".as_ref(), rep_dir.as_os_str()])
            .stdout(Stdio::null())
            .stderr(Stdio::piped());
        if let Some(plan) = &opts.fault_plan {
            cmd.args(["--fault-plan", plan]);
        }
        if rep == 0 {
            cmd.args([
                "--trace-out".as_ref(),
                work_dir.join("trace.json").as_os_str(),
            ])
            .args([
                "--events-out".as_ref(),
                work_dir.join("events.jsonl").as_os_str(),
            ])
            .args([
                "--ledger-out".as_ref(),
                work_dir.join("ledger.jsonl").as_os_str(),
            ]);
        }
        eprintln!("perfgate: {workload} rep {}/{} …", rep + 1, opts.repeats);
        let (status, stderr) = wait_with_timeout(cmd, &bin, opts.timeout).map_err(|e| match e {
            WaitError::Spawn(msg) => msg,
            WaitError::TimedOut(elapsed) => {
                let verdict = timeout_verdict(workload, rep, opts, elapsed);
                let path = opts.out.join(format!("TIMEOUT_{workload}.json"));
                if let Err(e) = std::fs::write(&path, verdict.render()) {
                    eprintln!("perfgate: cannot write {}: {e}", path.display());
                } else {
                    eprintln!("perfgate: wrote {}", path.display());
                }
                format!(
                    "rep {rep} exceeded --timeout {} ms (killed after {} ms)",
                    opts.timeout.expect("timeout set").as_millis(),
                    elapsed.as_millis()
                )
            }
        })?;
        if !status.success() {
            return Err(format!(
                "exited with {status}\n{}",
                String::from_utf8_lossy(&stderr)
            ));
        }
        let report_path = rep_dir.join(BenchReport::file_name(workload));
        reports.push(
            BenchReport::load(&report_path)
                .map_err(|e| format!("no report at {}: {e}", report_path.display()))?,
        );
    }
    let median = median_report(&reports).ok_or("no reports collected")?;
    median
        .write(&opts.out)
        .map_err(|e| format!("cannot write median report: {e}"))
}

enum WaitError {
    Spawn(String),
    TimedOut(Duration),
}

/// Spawn `cmd` and wait for it, enforcing the optional wall-clock budget.
/// Stderr (already configured as piped) is drained on a background thread
/// so a chatty child can never deadlock on a full pipe buffer while the
/// main loop polls `try_wait`. On timeout the child is killed and reaped.
fn wait_with_timeout(
    mut cmd: Command,
    bin: &Path,
    timeout: Option<Duration>,
) -> Result<(std::process::ExitStatus, Vec<u8>), WaitError> {
    let start = Instant::now();
    let mut child = cmd
        .spawn()
        .map_err(|e| WaitError::Spawn(format!("failed to spawn {}: {e}", bin.display())))?;
    let stderr_reader = child.stderr.take().map(|mut pipe| {
        std::thread::spawn(move || {
            use std::io::Read;
            let mut buf = Vec::new();
            let _ = pipe.read_to_end(&mut buf);
            buf
        })
    });
    let collect_stderr = |reader: Option<std::thread::JoinHandle<Vec<u8>>>| -> Vec<u8> {
        reader.and_then(|h| h.join().ok()).unwrap_or_default()
    };
    loop {
        match child.try_wait() {
            Ok(Some(status)) => return Ok((status, collect_stderr(stderr_reader))),
            Ok(None) => {}
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(WaitError::Spawn(format!("wait failed: {e}")));
            }
        }
        if let Some(budget) = timeout {
            let elapsed = start.elapsed();
            if elapsed > budget {
                let _ = child.kill();
                let _ = child.wait();
                drop(collect_stderr(stderr_reader));
                return Err(WaitError::TimedOut(elapsed));
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// The JSON verdict written when a workload blows its wall-clock budget —
/// machine-readable evidence (`timed_out: true`) for CI to assert on.
fn timeout_verdict(workload: &str, rep: usize, opts: &RunPlanOpts, elapsed: Duration) -> Value {
    Value::Obj(vec![
        ("workload".into(), Value::Str(workload.into())),
        ("timed_out".into(), Value::Bool(true)),
        ("repeat".into(), Value::Num(rep as f64)),
        (
            "timeout_ms".into(),
            Value::Num(opts.timeout.map_or(0.0, |d| d.as_millis() as f64)),
        ),
        ("elapsed_ms".into(), Value::Num(elapsed.as_millis() as f64)),
        ("seed".into(), Value::Num(opts.seed as f64)),
    ])
}

// ---------------------------------------------------------------- values

fn str_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> Result<&'a str, String> {
    *i += 1;
    args.get(*i)
        .map(String::as_str)
        .filter(|v| !v.starts_with("--"))
        .ok_or_else(|| format!("{flag} expects a value"))
}

fn int_value(args: &[String], i: &mut usize, flag: &str) -> Result<u64, String> {
    let v = str_value(args, i, flag)?;
    v.parse()
        .map_err(|_| format!("{flag} expects an integer, got '{v}'"))
}

fn float_value(args: &[String], i: &mut usize, flag: &str) -> Result<f64, String> {
    let v = str_value(args, i, flag)?;
    v.parse::<f64>()
        .ok()
        .filter(|f| f.is_finite())
        .ok_or_else(|| format!("{flag} expects a number, got '{v}'"))
}
