//! `amlquality` — inspect model/data-quality telemetry.
//!
//! Recomputes the quality report (dataset profiles, PSI drift, confusion
//! matrix, reliability/ECE calibration) from any `ledger.jsonl` — or
//! reads back a rendered `quality.json` artifact — and prints the
//! human-readable table, the pinned JSON (`--json`, byte-identical to
//! `--quality-out`'s `quality.json` for runs without `--quality-ref`),
//! or — with `--compare A B` — the accuracy/calibration/drift delta
//! someone checks when changing a strategy or the data mix.
//!
//! Exit codes: 0 ok, 1 input failed to parse, 2 usage error.

use aml_bench::qualityview::{parse_quality_artifact, render_compare};
use aml_telemetry::QualityReport;
use std::path::{Path, PathBuf};

const USAGE: &str = "\
amlquality — print model/data-quality reports from ledger artifacts

usage:
  amlquality INPUT...
  amlquality --compare A.jsonl B.jsonl
  amlquality --json INPUT

  INPUT                   ledger.jsonl files written by a bench binary's
                          --ledger-out flag, or quality.json artifacts
                          written by --quality-out (told apart by shape)
  --compare               diff two artifacts: final accuracy, balanced
                          accuracy, macro F1, Brier, ECE, and per-feature
                          PSI drift
  --json                  emit the pinned quality.json instead of the
                          table (byte-identical to --quality-out when the
                          run used no --quality-ref baseline)

exit codes: 0 ok, 1 an input failed to parse, 2 usage error";

struct Opts {
    compare: bool,
    json: bool,
    inputs: Vec<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        compare: false,
        json: false,
        inputs: Vec::new(),
    };
    for arg in args {
        match arg.as_str() {
            "--compare" => opts.compare = true,
            "--json" => opts.json = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag '{flag}'")),
            path => opts.inputs.push(PathBuf::from(path)),
        }
    }
    if opts.compare && opts.inputs.len() != 2 {
        return Err(format!(
            "--compare expects exactly two inputs, got {}",
            opts.inputs.len()
        ));
    }
    if opts.inputs.is_empty() {
        return Err("expected at least one ledger.jsonl input".into());
    }
    Ok(opts)
}

fn load(path: &Path) -> Result<QualityReport, String> {
    std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))
        .and_then(|text| {
            parse_quality_artifact(&text).map_err(|e| format!("{}: {e}", path.display()))
        })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if opts.compare {
        match (load(&opts.inputs[0]), load(&opts.inputs[1])) {
            (Ok(a), Ok(b)) => print!("{}", render_compare(&a, &b)),
            (a, b) => {
                for result in [a, b] {
                    if let Err(msg) = result {
                        eprintln!("error: {msg}");
                    }
                }
                std::process::exit(1);
            }
        }
        return;
    }
    let mut failed = false;
    for path in &opts.inputs {
        match load(path) {
            Ok(report) => {
                if opts.inputs.len() > 1 {
                    println!("== {} ==", path.display());
                }
                if opts.json {
                    print!("{}", report.render_json());
                } else {
                    print!("{}", report.render_table());
                }
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
