//! `amlserve` — the crash-safe, multi-tenant AutoML run server.
//!
//! Two modes share one executable:
//!
//! * **server** (default): bind, replay the queue journal, fence
//!   orphaned workers, serve HTTP until `POST /shutdown` drains;
//! * **worker** (`--worker <jobdir>`, spawned by the server): run or
//!   resume one job to completion in an isolated process.
//!
//! See `aml_bench::amlserve` for the architecture and DESIGN.md §12 for
//! the job lifecycle.

use aml_bench::amlserve::{run_server, run_worker, ServerConfig};
use aml_faults::FaultPlan;
use std::path::PathBuf;
use std::process::exit;
use std::time::Duration;

const USAGE: &str = "\
amlserve — crash-safe multi-tenant AutoML run server

USAGE:
    amlserve [OPTIONS]
    amlserve --worker <JOBDIR> [--inject-crash]   (internal: run one job)

OPTIONS:
    --addr ADDR                bind address (default 127.0.0.1:9900; use
                               port 0 for ephemeral — see <data>/serve.addr)
    --data DIR                 data directory: queue journal, job dirs,
                               history store (default target/amlserve)
    --workers N                worker-pool size (default 2)
    --queue-cap N              max queued jobs before 429 (default 16)
    --tenant-max-running N     per-tenant concurrency bound (default 2)
    --tenant-budget N          per-tenant token budget, 1 token per
                               feedback round (default 1024)
    --job-timeout-ms MS        default per-job wall-clock budget
                               (default 300000)
    --max-retries N            crash retries per job (default 3)
    --retry-base-ms MS         first retry backoff, doubles per attempt,
                               capped at 30s (default 500)
    --drain-grace-ms MS        graceful-shutdown grace before killing
                               workers (default 10000)
    --preempt-after-ms MS      preempt the longest run after MS when a
                               queued job is starving (default: never)
    --fault-plan SPEC          deterministic faults, e.g.
                               worker_crash@0,submit_burst@4
    --history PATH             history store (default <data>/history.jsonl)
    --help                     this text

ROUTES:
    POST /submit        submit a job spec (JSON; optional inline \"csv\")
    GET  /jobs          all jobs and their states
    GET  /jobs/<id>     one job: state, ledger tail (?tail=N), result
    DELETE /jobs/<id>   cooperative cancel at the next round boundary
    GET  /metrics       Prometheus text (serve.jobs_* counters/gauges)
    GET  /healthz /history /dashboard
    POST /shutdown      graceful drain and exit
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--worker") {
        let Some(dir) = args.get(1) else {
            eprintln!("--worker requires a job directory");
            exit(2);
        };
        let inject = args.iter().any(|a| a == "--inject-crash");
        exit(run_worker(std::path::Path::new(dir), inject));
    }

    let mut cfg = ServerConfig::new("target/amlserve");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                exit(2);
            })
        };
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            "--addr" => cfg.addr = value("--addr"),
            "--data" => cfg.data_dir = PathBuf::from(value("--data")),
            "--workers" => cfg.workers = parse(&value("--workers"), "--workers"),
            "--queue-cap" => cfg.queue_cap = parse(&value("--queue-cap"), "--queue-cap"),
            "--tenant-max-running" => {
                cfg.tenant_max_running =
                    parse(&value("--tenant-max-running"), "--tenant-max-running");
            }
            "--tenant-budget" => {
                cfg.tenant_budget = parse(&value("--tenant-budget"), "--tenant-budget");
            }
            "--job-timeout-ms" => {
                cfg.job_timeout =
                    Duration::from_millis(parse(&value("--job-timeout-ms"), "--job-timeout-ms"));
            }
            "--max-retries" => cfg.max_retries = parse(&value("--max-retries"), "--max-retries"),
            "--retry-base-ms" => {
                cfg.retry_base =
                    Duration::from_millis(parse(&value("--retry-base-ms"), "--retry-base-ms"));
            }
            "--drain-grace-ms" => {
                cfg.drain_grace =
                    Duration::from_millis(parse(&value("--drain-grace-ms"), "--drain-grace-ms"));
            }
            "--preempt-after-ms" => {
                cfg.preempt_after = Some(Duration::from_millis(parse(
                    &value("--preempt-after-ms"),
                    "--preempt-after-ms",
                )));
            }
            "--fault-plan" => match FaultPlan::parse(&value("--fault-plan")) {
                Ok(plan) => cfg.fault_plan = Some(plan),
                Err(e) => {
                    eprintln!("--fault-plan: {e}");
                    exit(2);
                }
            },
            "--history" => cfg.history_path = Some(PathBuf::from(value("--history"))),
            other => {
                eprintln!("unknown flag '{other}' (try --help)");
                exit(2);
            }
        }
    }

    if let Err(e) = run_server(cfg) {
        eprintln!("amlserve: {e}");
        exit(1);
    }
}

fn parse<T: std::str::FromStr>(text: &str, flag: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse '{text}'");
        exit(2);
    })
}
