//! `amlsearch` — inspect hyperparameter-search telemetry.
//!
//! Recomputes the search-observability report (declared-space coverage,
//! successive-halving rung funnels, fANOVA-lite importance) from any
//! `ledger.jsonl` — or reads back a rendered `search.json` artifact —
//! and prints the human-readable table, the pinned JSON
//! (`--json`, byte-identical to `--search-out`'s `search.json`), or —
//! with `--compare A B` — the before/after delta someone checks when
//! changing the sampler or the search budget.
//!
//! Exit codes: 0 ok, 1 input failed to parse, 2 usage error.

use aml_bench::searchview::{parse_search_artifact, render_compare};
use aml_telemetry::SearchReport;
use std::path::{Path, PathBuf};

const USAGE: &str = "\
amlsearch — print search-observability reports from ledger artifacts

usage:
  amlsearch INPUT...
  amlsearch --compare A.jsonl B.jsonl
  amlsearch --json INPUT

  INPUT                   ledger.jsonl files written by a bench binary's
                          --ledger-out flag, or search.json artifacts
                          written by --search-out (told apart by shape)
  --compare               diff two artifacts: fit counts, per-family best
                          score, coverage, and top-importance dimension
  --json                  emit the pinned search.json instead of the
                          table (byte-identical to --search-out)

exit codes: 0 ok, 1 an input failed to parse, 2 usage error";

struct Opts {
    compare: bool,
    json: bool,
    inputs: Vec<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        compare: false,
        json: false,
        inputs: Vec::new(),
    };
    for arg in args {
        match arg.as_str() {
            "--compare" => opts.compare = true,
            "--json" => opts.json = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag '{flag}'")),
            path => opts.inputs.push(PathBuf::from(path)),
        }
    }
    if opts.compare && opts.inputs.len() != 2 {
        return Err(format!(
            "--compare expects exactly two inputs, got {}",
            opts.inputs.len()
        ));
    }
    if opts.inputs.is_empty() {
        return Err("expected at least one ledger.jsonl input".into());
    }
    Ok(opts)
}

fn load(path: &Path) -> Result<SearchReport, String> {
    std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))
        .and_then(|text| {
            parse_search_artifact(&text).map_err(|e| format!("{}: {e}", path.display()))
        })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if opts.compare {
        match (load(&opts.inputs[0]), load(&opts.inputs[1])) {
            (Ok(a), Ok(b)) => print!("{}", render_compare(&a, &b)),
            (a, b) => {
                for result in [a, b] {
                    if let Err(msg) = result {
                        eprintln!("error: {msg}");
                    }
                }
                std::process::exit(1);
            }
        }
        return;
    }
    let mut failed = false;
    for path in &opts.inputs {
        match load(path) {
            Ok(report) => {
                if opts.inputs.len() > 1 {
                    println!("== {} ==", path.display());
                }
                if opts.json {
                    print!("{}", report.render_json());
                } else {
                    print!("{}", report.render_table());
                }
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
