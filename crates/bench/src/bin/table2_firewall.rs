//! **§4.2 numbers**: firewall-dataset accuracy comparison. The paper
//! reports: ALE feedback beats raw training data with p = 0.02 (Within)
//! and 0.04 (Cross); the active-learning baselines are 1–2% better than
//! ALE *without statistical significance*.
//!
//! Protocol: 40% train / 20% test (split into 20 test sets) / 40%
//! candidate pool, repeated over 5 resplits. All strategies are
//! pool-based here (there is no free-labeling oracle for the firewall
//! data in the paper's setup).
//!
//! ```sh
//! cargo run --release -p aml-bench --bin table2_firewall [--quick|--full]
//! ```

use aml_automl::AutoMlConfig;
use aml_bench::{mean, write_artifact, write_json, RunOpts};
use aml_core::{
    run_strategy, AleFeedback, ExperimentConfig, ExperimentLoop, Strategy, ThresholdRule,
};
use aml_dataset::split::{split_into_k, three_way_split};
use aml_fwgen::{generate, FwGenConfig};
use aml_stats::wilcoxon::{wilcoxon_signed_rank, Alternative};
use aml_stats::PairwiseMatrix;
use aml_telemetry::{note, report};
use std::collections::BTreeMap;

fn main() {
    let opts = RunOpts::parse_for("table2_firewall");
    opts.banner("§4.2: firewall dataset (UCL substitute)");

    let n_rows = opts.by_scale(3_000, 8_000, 65_532);
    let n_resplits = opts.by_scale(2, 3, 5);
    let n_test_sets = opts.by_scale(6, 10, 20);
    let n_feedback = opts.by_scale(100, 200, 280);
    let n_cross_runs = opts.by_scale(3, 4, 10);

    let datagen_span = aml_telemetry::span!("bench.datagen");
    aml_telemetry::serve::set_phase("datagen");
    note(&format!("generating {n_rows} firewall rows..."));
    let full = generate(&FwGenConfig {
        n: n_rows,
        seed: opts.seed,
        ..Default::default()
    })
    .expect("fwgen");

    let strategies = [
        Strategy::NoFeedback,
        Strategy::WithinAlePool,
        Strategy::CrossAlePool,
        Strategy::Confidence,
        Strategy::Qbc,
        Strategy::Upsampling,
    ];

    drop(datagen_span);
    let strategies_span = aml_telemetry::span!("bench.strategies");
    aml_telemetry::serve::set_phase("strategies");
    let mut all_scores: BTreeMap<Strategy, Vec<f64>> = BTreeMap::new();

    // Checkpoint/resume: each (resplit, strategy) application is one
    // feedback round (see table1_scream for the protocol).
    let mut exp_loop = opts.experiment_loop();
    let mut round: u64 = 0;
    for split_i in 0..n_resplits {
        let split_seed = opts.seed ^ ((split_i as u64 + 1) * 0x51AB);
        let (train, test, pool) =
            three_way_split(&full, 0.4, 0.2, split_seed).expect("three-way split");
        let test_sets = split_into_k(&test, n_test_sets, split_seed).expect("test sets");
        note(&format!(
            "resplit {}/{n_resplits}: train {} / test {} / pool {}",
            split_i + 1,
            train.n_rows(),
            test.n_rows(),
            pool.n_rows()
        ));

        let mut automl = AutoMlConfig {
            n_candidates: 12,
            parallelism: opts.threads,
            ..Default::default()
        };
        opts.apply_automl_limits(&mut automl);
        let cfg = ExperimentConfig {
            automl,
            n_feedback_points: n_feedback,
            n_cross_runs,
            // ALE of the "allow" class with per-feature quantile
            // thresholds (the paper's fixed T = 0.01 assumes auto-sklearn's
            // std scale; §5 sanctions per-feature tuning).
            ale: AleFeedback {
                threshold: ThresholdRule::PerFeatureQuantile(0.85),
                target_class: 0,
                ..Default::default()
            },
            seed: split_seed,
        };

        for strategy in strategies {
            let this_round = round;
            round += 1;
            if let Some(rec) = exp_loop.completed(this_round) {
                assert_eq!(
                    rec.strategy,
                    strategy.name(),
                    "checkpoint round {this_round} records a different strategy — \
                     resumed with mismatched settings?"
                );
                note(&format!(
                    "  {:<22} mean BA {:>5.1}% | +{:>4} pts | resumed",
                    strategy.name(),
                    mean(&rec.scores) * 100.0,
                    rec.points_added,
                ));
                all_scores
                    .entry(strategy)
                    .or_default()
                    .extend(rec.scores.iter());
                continue;
            }
            let t0 = std::time::Instant::now();
            let out = run_strategy(strategy, &cfg, &train, Some(&pool), None, &test_sets)
                .unwrap_or_else(|e| panic!("{} failed: {e}", strategy.name()));
            note(&format!(
                "  {:<22} mean BA {:>5.1}% | +{:>4} pts | {:>6.1?}",
                strategy.name(),
                mean(&out.scores) * 100.0,
                out.n_points_added,
                t0.elapsed()
            ));
            exp_loop
                .record(ExperimentLoop::round_record(
                    this_round,
                    strategy,
                    out.n_points_added,
                    &out.scores,
                ))
                .unwrap_or_else(|e| panic!("checkpoint after round {this_round} failed: {e}"));
            all_scores
                .entry(strategy)
                .or_default()
                .extend(out.scores.iter());
        }
    }

    drop(strategies_span);
    let report_span = aml_telemetry::span!("bench.report");
    aml_telemetry::serve::set_phase("report");
    let mut matrix = PairwiseMatrix::new();
    for s in strategies {
        matrix
            .add(s.name(), all_scores[&s].clone())
            .expect("paired");
    }
    let rendered = matrix
        .render(&["Without feedback", "Within-ALE-Pool", "Cross-ALE-Pool"])
        .expect("render");
    report(&format!("\n{rendered}"));
    write_artifact(&opts.out_dir, "table2_firewall.txt", &rendered);
    let json: BTreeMap<String, Vec<f64>> = all_scores
        .iter()
        .map(|(s, v)| (s.name().to_string(), v.clone()))
        .collect();
    write_json(&opts.out_dir, "table2_firewall_scores.json", &json);

    // The paper's two headline claims.
    report("\nshape checks vs §4.2:");
    let p_within = p_less(
        &all_scores[&Strategy::NoFeedback],
        &all_scores[&Strategy::WithinAlePool],
    );
    let p_cross = p_less(
        &all_scores[&Strategy::NoFeedback],
        &all_scores[&Strategy::CrossAlePool],
    );
    report(&format!(
        "  P(no-feedback worse than Within-ALE) = {p_within:.4} (paper: 0.02) -> {}",
        if p_within < 0.1 {
            "improves with significance"
        } else {
            "no significance"
        }
    ));
    report(&format!(
        "  P(no-feedback worse than Cross-ALE)  = {p_cross:.4} (paper: 0.04) -> {}",
        if p_cross < 0.1 {
            "improves with significance"
        } else {
            "no significance"
        }
    ));
    let ale_best =
        mean(&all_scores[&Strategy::WithinAlePool]).max(mean(&all_scores[&Strategy::CrossAlePool]));
    for baseline in [Strategy::Confidence, Strategy::Qbc, Strategy::Upsampling] {
        let diff = mean(&all_scores[&baseline]) - ale_best;
        report(&format!(
            "  {} vs best ALE: {:+.1}% (paper: baselines ≤1-2% better, not significant)",
            baseline.name(),
            diff * 100.0
        ));
    }

    drop(report_span);
    opts.finish();
}

fn p_less(a: &[f64], b: &[f64]) -> f64 {
    wilcoxon_signed_rank(a, b, Alternative::Less)
        .map(|r| r.p_value)
        .unwrap_or(f64::NAN)
}
