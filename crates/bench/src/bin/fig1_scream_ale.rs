//! **Figure 1**: the ALE band of `config.link_rate` for the Scream-vs-rest
//! problem, with the high-variance feedback regions extracted — the paper's
//! `x ≤ 45 ∪ x ≥ 99` example output.
//!
//! ```sh
//! cargo run --release -p aml-bench --bin fig1_scream_ale [--quick|--full] [--seed N]
//! ```
//!
//! Emits `fig1_link_rate.csv`, `fig1_link_rate.svg`, an ASCII rendering,
//! and the extracted region description. Bands for all four features go to
//! `fig1_all_features.json`.

use aml_automl::{AutoMl, AutoMlConfig};
use aml_bench::{write_artifact, write_json, RunOpts};
use aml_core::{AleFeedback, AleMode};
use aml_interpret::plot::{band_to_ascii, band_to_csv, band_to_svg};
use aml_netsim::datagen::generate_dataset;
use aml_netsim::ConditionDomain;
use aml_telemetry::{note, report};

fn main() {
    let opts = RunOpts::parse_for("fig1_scream_ale");
    opts.banner("Figure 1: ALE of config.link_rate (Scream vs rest)");

    let n_train = opts.by_scale(200, 600, 1161);
    let n_runs = opts.by_scale(3, 6, 10);
    let domain = ConditionDomain::default();

    let datagen_span = aml_telemetry::span!("bench.datagen");
    aml_telemetry::serve::set_phase("datagen");
    note(&format!(
        "generating {n_train} training samples from the simulator..."
    ));
    let train = aml_bench::cached_dataset(
        &opts.out_dir,
        &format!("scream_train_n{n_train}_s{}", opts.seed),
        || generate_dataset(&domain, n_train, opts.seed, opts.threads).expect("datagen"),
    );
    note(&format!(
        "class balance (rest, scream): {:?}",
        train.class_counts()
    ));
    drop(datagen_span);

    let fit_span = aml_telemetry::span!("bench.automl_runs");
    aml_telemetry::serve::set_phase("automl_runs");
    note(&format!(
        "fitting {n_runs} independent AutoML runs (Cross-ALE, as in the figure)..."
    ));
    let runs: Vec<_> = (0..n_runs)
        .map(|r| {
            let mut cfg = AutoMlConfig {
                n_candidates: 16,
                parallelism: opts.threads,
                seed: opts.seed ^ ((r as u64 + 1) * 7919),
                ..Default::default()
            };
            opts.apply_automl_limits(&mut cfg);
            AutoMl::new(cfg).fit(&train).expect("automl fit")
        })
        .collect();

    drop(fit_span);

    let report_span = aml_telemetry::span!("bench.report");
    aml_telemetry::serve::set_phase("report");
    let ale = AleFeedback {
        mode: AleMode::Cross,
        n_intervals: 24,
        ..Default::default()
    };
    let analysis = ale.analyze(&runs, &train).expect("ALE analysis");
    report(&format!(
        "\nthreshold T = {:.4} (median of ALE std values across features)\n",
        analysis.threshold
    ));

    let link_rate = train
        .feature_index("config.link_rate")
        .expect("schema has config.link_rate");
    let band = &analysis.bands[link_rate];
    report(&band_to_ascii(band, 70, 14));
    let region = &analysis.regions[link_rate];
    report("feedback region (the paper's `x <= 45 ∪ x >= 99` analogue):");
    report(&format!("  {}\n", region.describe()));
    report(&format!(
        "coverage: {:.0}% of the link-rate domain flagged",
        region.coverage() * 100.0
    ));

    write_artifact(&opts.out_dir, "fig1_link_rate.csv", &band_to_csv(band));
    write_artifact(
        &opts.out_dir,
        "fig1_link_rate.svg",
        &band_to_svg(band, 640, 360),
    );
    write_json(&opts.out_dir, "fig1_all_features.json", &analysis.bands);

    report("\nper-feature summary:");
    for (band, region) in analysis.bands.iter().zip(&analysis.regions) {
        report(&format!(
            "  {:<18} max std {:.4} | mean std {:.4} | {}",
            band.feature_name,
            band.max_std(),
            band.mean_std(),
            region.describe()
        ));
    }

    drop(report_span);
    opts.finish();
}
