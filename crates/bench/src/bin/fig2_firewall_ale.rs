//! **Figures 2a/2b**: ALE bands of `src_port` and `dst_port` on the
//! firewall dataset — the interpretability showcase. Expected shape:
//! high cross-model variance at *low source ports* (kernel-assigned, weak
//! contradictory signal → discard) and around *destination ports 443–445*
//! (HTTPS DDoS target → collect more data).
//!
//! ```sh
//! cargo run --release -p aml-bench --bin fig2_firewall_ale [--quick|--full]
//! ```

use aml_automl::{AutoMl, AutoMlConfig};
use aml_bench::{write_artifact, write_json, RunOpts};
use aml_core::{AleFeedback, AleMode, ThresholdRule};
use aml_dataset::split::three_way_split;
use aml_fwgen::{generate, FwGenConfig};
use aml_interpret::plot::{band_to_ascii, band_to_csv, band_to_svg};
use aml_telemetry::{note, report};

fn main() {
    let opts = RunOpts::parse_for("fig2_firewall_ale");
    opts.banner("Figures 2a/2b: firewall src/dst port ALE");

    let n_rows = opts.by_scale(4_000, 12_000, 65_532);
    let n_runs = opts.by_scale(3, 5, 10);

    let datagen_span = aml_telemetry::span!("bench.datagen");
    aml_telemetry::serve::set_phase("datagen");
    note(&format!("generating {n_rows} firewall rows..."));
    let full = generate(&FwGenConfig {
        n: n_rows,
        seed: opts.seed,
        ..Default::default()
    })
    .expect("fwgen");
    note(&format!("class counts {:?}", full.class_counts()));

    // Paper protocol: 40% train / 20% test / 40% pool.
    let (train, _test, _pool) = three_way_split(&full, 0.4, 0.2, opts.seed).expect("split");
    drop(datagen_span);
    let fit_span = aml_telemetry::span!("bench.automl_runs");
    aml_telemetry::serve::set_phase("automl_runs");
    note(&format!("training on {} rows...", train.n_rows()));

    let runs: Vec<_> = (0..n_runs)
        .map(|r| {
            let mut cfg = AutoMlConfig {
                n_candidates: 12,
                parallelism: opts.threads,
                seed: opts.seed ^ ((r as u64 + 1) * 6271),
                ..Default::default()
            };
            opts.apply_automl_limits(&mut cfg);
            AutoMl::new(cfg).fit(&train).expect("automl")
        })
        .collect();

    // ALE of the "allow" probability. The paper quotes a fixed T = 0.01 for
    // the UCL dataset; our std scale differs (3-10 committee members vs
    // auto-sklearn's ~50), so we use the §5-sanctioned per-feature rule:
    // each feature flags its own top-variance regions. The realized median
    // T is printed for the record.
    let ale = AleFeedback {
        mode: AleMode::Cross,
        n_intervals: 32,
        threshold: ThresholdRule::PerFeatureQuantile(0.85),
        target_class: 0,
        ..Default::default()
    };
    drop(fit_span);
    let report_span = aml_telemetry::span!("bench.report");
    aml_telemetry::serve::set_phase("report");
    let analysis = ale.analyze(&runs, &train).expect("analysis");
    report(&format!(
        "realized threshold T = {:.4}\n",
        analysis.threshold
    ));

    for (fig, feature_name) in [("fig2a", "src_port"), ("fig2b", "dst_port")] {
        let idx = train.feature_index(feature_name).expect("schema");
        let band = &analysis.bands[idx];
        let region = &analysis.regions[idx];
        report(&format!("=== {fig}: {feature_name} ==="));
        report(&band_to_ascii(band, 70, 12));
        report(&format!("flagged: {}\n", region.describe()));
        write_artifact(
            &opts.out_dir,
            &format!("{fig}_{feature_name}.csv"),
            &band_to_csv(band),
        );
        write_artifact(
            &opts.out_dir,
            &format!("{fig}_{feature_name}.svg"),
            &band_to_svg(band, 640, 360),
        );
    }
    write_json(&opts.out_dir, "fig2_all_bands.json", &analysis.bands);

    // The §4.2 shape checks.
    let src = train.feature_index("src_port").expect("schema");
    let dst = train.feature_index("dst_port").expect("schema");
    let src_band = &analysis.bands[src];
    let dst_band = &analysis.bands[dst];

    // (a) source-port variance concentrated at low values.
    let low_std = avg_std_in(src_band, 0.0, 1024.0);
    let high_std = avg_std_in(src_band, 1024.0, 65535.0);
    report(&format!(
        "src_port mean std: low ports (<1024) {:.4} vs rest {:.4} -> {}",
        low_std,
        high_std,
        if low_std > high_std {
            "matches Figure 2a"
        } else {
            "MISS"
        }
    ));

    // (b) the dst-port variance *peak* sits in 443-445 — the paper's "high
    // variance across the destination port range 443-445". Two comparisons:
    // against the other *dense* service-port region (< 1024, where the
    // committee has plenty of data — the apples-to-apples Figure 2b
    // reading) and against the sparse high-port tail, whose disagreement is
    // a separate sparsity phenomenon our synthetic generator amplifies.
    let https_peak = max_std_in(dst_band, 440.0, 450.0);
    let dense_peak = max_std_in(dst_band, 0.0, 440.0);
    let sparse_peak = max_std_in(dst_band, 1024.0, 65536.0);
    report(&format!(
        "dst_port peak std: 443-region {:.4} vs other service ports {:.4} -> {}",
        https_peak,
        dense_peak,
        if https_peak > dense_peak {
            "matches Figure 2b"
        } else {
            "MISS"
        }
    ));
    report(&format!(
        "  (sparse high-port tail peak {:.4} — sparsity-driven disagreement, reported separately)",
        sparse_peak
    ));

    drop(report_span);
    opts.finish();
}

/// Max std over grid points in `[lo, hi)`.
fn max_std_in(band: &aml_interpret::AleBand, lo: f64, hi: f64) -> f64 {
    band.grid
        .iter()
        .zip(&band.std)
        .filter(|(g, _)| **g >= lo && **g < hi)
        .map(|(_, s)| *s)
        .fold(0.0, f64::max)
}

/// Mean std over grid points in `[lo, hi)`; 0 if none fall there.
fn avg_std_in(band: &aml_interpret::AleBand, lo: f64, hi: f64) -> f64 {
    let vals: Vec<f64> = band
        .grid
        .iter()
        .zip(&band.std)
        .filter(|(g, _)| **g >= lo && **g < hi)
        .map(|(_, s)| *s)
        .collect();
    if vals.is_empty() {
        0.0
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}
