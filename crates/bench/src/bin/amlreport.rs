//! `amlreport` — aggregate experiment ledgers and BENCH perf records
//! into one self-contained HTML report (see [`aml_bench::amlreport`]).
//!
//! Inputs are classified by file name: `BENCH_*.json` files are perf
//! records, `crit*.json` files are critical-path reports (`--crit-out`),
//! everything else is parsed as a `ledger.jsonl`. The CI perfgate job
//! runs this over the gate trio's exports and uploads the HTML as a
//! build artifact.
//!
//! `--compare A.jsonl B.jsonl` renders a cross-run diff instead:
//! per-round accuracy deltas, ensemble composition changes, and
//! region-suggestion drift between exactly two ledgers.
//!
//! Exit codes: 0 ok, 1 input failed to parse, 2 usage error.

use aml_bench::amlreport::{parse_ledger, render_compare_html, render_html, LedgerData};
use aml_bench::critview::parse_crit;
use aml_bench::qualityview::parse_quality_ledger;
use aml_bench::report::BenchReport;
use aml_bench::searchview::parse_search_ledger;
use aml_telemetry::{CritReport, QualityReport, SearchReport};
use std::path::{Path, PathBuf};

const USAGE: &str = "\
amlreport — render ledgers + BENCH records into one self-contained HTML page

usage:
  amlreport [--out PATH] [--title TITLE] INPUT...
  amlreport --compare A.jsonl B.jsonl [--out PATH] [--title TITLE]

  INPUT                   ledger.jsonl files, BENCH_<workload>.json
                          records, and/or crit*.json critical-path
                          reports (classified by file name)
  --compare               diff two ledgers: per-round accuracy delta,
                          ensemble composition changes, region drift
                          (requires exactly two ledger inputs)
  --out PATH              output HTML path (default amlreport.html)
  --title TITLE           report title (default 'AutoML run report')

exit codes: 0 ok, 1 an input failed to parse, 2 usage error";

struct Opts {
    out: PathBuf,
    title: String,
    compare: bool,
    inputs: Vec<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        out: PathBuf::from("amlreport.html"),
        title: "AutoML run report".into(),
        compare: false,
        inputs: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => opts.out = PathBuf::from(value(args, &mut i, "--out")?),
            "--title" => opts.title = value(args, &mut i, "--title")?.to_string(),
            "--compare" => opts.compare = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag '{flag}'")),
            path => opts.inputs.push(PathBuf::from(path)),
        }
        i += 1;
    }
    if opts.compare {
        if opts.inputs.len() != 2 {
            return Err(format!(
                "--compare expects exactly two ledger inputs, got {}",
                opts.inputs.len()
            ));
        }
        if opts
            .inputs
            .iter()
            .any(|p| is_bench_record(p) || is_crit_record(p))
        {
            return Err("--compare takes ledger files, not BENCH/crit records".into());
        }
    } else if opts.inputs.is_empty() {
        return Err("expected at least one input file".into());
    }
    Ok(opts)
}

fn value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> Result<&'a str, String> {
    *i += 1;
    args.get(*i)
        .map(String::as_str)
        .filter(|v| !v.starts_with("--"))
        .ok_or_else(|| format!("{flag} expects a value"))
}

fn is_bench_record(path: &Path) -> bool {
    path.file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
}

/// `crit.json` as written by `--crit-out`, or any `crit*.json` a caller
/// renamed to keep several side by side.
fn is_crit_record(path: &Path) -> bool {
    path.file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| n.starts_with("crit") && n.ends_with(".json"))
}

fn load_ledger(path: &Path) -> Result<LedgerData, String> {
    std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))
        .and_then(|text| parse_ledger(&text).map_err(|e| format!("{}: {e}", path.display())))
}

fn load_crit(path: &Path) -> Result<CritReport, String> {
    std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))
        .and_then(|text| parse_crit(&text).map_err(|e| format!("{}: {e}", path.display())))
}

fn run_compare(opts: &Opts) -> i32 {
    let title = if opts.title == "AutoML run report" {
        "AutoML run comparison".to_string()
    } else {
        opts.title.clone()
    };
    let (a, b) = match (load_ledger(&opts.inputs[0]), load_ledger(&opts.inputs[1])) {
        (Ok(a), Ok(b)) => (a, b),
        (a, b) => {
            for result in [a, b] {
                if let Err(msg) = result {
                    eprintln!("error: {msg}");
                }
            }
            return 1;
        }
    };
    // Quality reports feed the header's final-acc/ECE deltas; ledgers
    // without quality events simply omit that header line.
    let quality = |path: &Path| {
        std::fs::read_to_string(path)
            .ok()
            .and_then(|text| parse_quality_ledger(&text).ok())
            .filter(|q| !q.rounds.is_empty())
    };
    let (qa, qb) = (quality(&opts.inputs[0]), quality(&opts.inputs[1]));
    let html = render_compare_html(&a, &b, qa.as_ref(), qb.as_ref(), &title);
    if let Err(e) = std::fs::write(&opts.out, &html) {
        eprintln!("error: cannot write {}: {e}", opts.out.display());
        return 1;
    }
    println!(
        "amlreport: wrote {} (compare {} vs {}, {} bytes)",
        opts.out.display(),
        a.run_id,
        b.run_id,
        html.len()
    );
    0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if opts.compare {
        std::process::exit(run_compare(&opts));
    }

    let mut ledgers: Vec<LedgerData> = Vec::new();
    let mut benches: Vec<BenchReport> = Vec::new();
    let mut crits: Vec<CritReport> = Vec::new();
    let mut searches: Vec<SearchReport> = Vec::new();
    let mut qualities: Vec<QualityReport> = Vec::new();
    let mut failed = false;
    for path in &opts.inputs {
        let result: Result<(), String> = if is_bench_record(path) {
            BenchReport::load(path).map(|b| benches.push(b))
        } else if is_crit_record(path) {
            load_crit(path).map(|c| crits.push(c))
        } else {
            // Each ledger feeds three sections: the event-level parse
            // plus the recomputed search and quality reports.
            std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))
                .and_then(|text| {
                    let l = parse_ledger(&text).map_err(|e| format!("{}: {e}", path.display()))?;
                    let s = parse_search_ledger(&text)
                        .map_err(|e| format!("{}: {e}", path.display()))?;
                    let q = parse_quality_ledger(&text)
                        .map_err(|e| format!("{}: {e}", path.display()))?;
                    ledgers.push(l);
                    searches.push(s);
                    qualities.push(q);
                    Ok(())
                })
        };
        if let Err(msg) = result {
            eprintln!("error: {msg}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }

    let html = render_html(
        &ledgers,
        &benches,
        &crits,
        &searches,
        &qualities,
        &opts.title,
    );
    if let Err(e) = std::fs::write(&opts.out, &html) {
        eprintln!("error: cannot write {}: {e}", opts.out.display());
        std::process::exit(1);
    }
    println!(
        "amlreport: wrote {} ({} ledgers, {} BENCH records, {} crit reports, {} bytes)",
        opts.out.display(),
        ledgers.len(),
        benches.len(),
        crits.len(),
        html.len()
    );
}
