//! Read-side of the quality plane: recompute the model/data-quality
//! report from a `ledger.jsonl`, read back a rendered `quality.json`,
//! load a drift baseline for `--quality-ref`, render the SVG panels for
//! `amlreport`, and diff two reports for `amlquality --compare`.
//!
//! The heavy lifting lives in `aml_telemetry::quality::report_from_events`
//! — this module only reconstructs its inputs (the `dataset_profile` and
//! `model_diagnostics` ledger lines) and reuses the identical pure
//! reduction, so `amlquality ledger.jsonl` reproduces `--quality-out`'s
//! `quality.json` byte for byte (when the run used no `--quality-ref`;
//! a baseline changes the drift section by design).

use crate::minijson::{self, Value};
use aml_telemetry::quality::{
    report_from_events, DriftReport, FinalDiagnostics, QualityReport, Reliability, RoundQuality,
    SplitProfile,
};
use aml_telemetry::{
    FeatureProfile, LedgerEvent, QualityReference, LEDGER_SCHEMA_VERSION, QUALITY_SCHEMA_VERSION,
};
use std::fmt::Write;

fn str_field(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field '{key}'"))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-integer field '{key}'"))
}

/// Numeric field; a JSON `null` (the ledger encoding of a non-finite
/// float) reads back as NaN.
fn f64_field(v: &Value, key: &str) -> Result<f64, String> {
    match v.get(key) {
        Some(Value::Null) => Ok(f64::NAN),
        Some(n) => n
            .as_f64()
            .ok_or_else(|| format!("non-numeric field '{key}'")),
        None => Err(format!("missing field '{key}'")),
    }
}

/// Optional field: JSON `null` reads back as `None`.
fn opt_f64_field(v: &Value, key: &str) -> Result<Option<f64>, String> {
    match v.get(key) {
        Some(Value::Null) => Ok(None),
        Some(n) => n
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("non-numeric field '{key}'")),
        None => Err(format!("missing field '{key}'")),
    }
}

fn bool_field(v: &Value, key: &str) -> Result<bool, String> {
    match v.get(key) {
        Some(Value::Bool(b)) => Ok(*b),
        _ => Err(format!("missing or non-boolean field '{key}'")),
    }
}

fn u64_array_field(v: &Value, key: &str) -> Result<Vec<u64>, String> {
    v.get(key)
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("missing '{key}' array"))?
        .iter()
        .map(|c| {
            c.as_u64()
                .ok_or_else(|| format!("non-integer entry in '{key}'"))
        })
        .collect()
}

fn f64_array_field(v: &Value, key: &str) -> Result<Vec<f64>, String> {
    v.get(key)
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("missing '{key}' array"))?
        .iter()
        .map(|c| match c {
            Value::Null => Ok(f64::NAN),
            n => n
                .as_f64()
                .ok_or_else(|| format!("non-numeric entry in '{key}'")),
        })
        .collect()
}

fn parse_feature_profile(v: &Value) -> Result<FeatureProfile, String> {
    Ok(FeatureProfile {
        name: str_field(v, "name")?,
        count: u64_field(v, "count")?,
        mean: f64_field(v, "mean")?,
        std: f64_field(v, "std")?,
        min: f64_field(v, "min")?,
        max: f64_field(v, "max")?,
        log10: bool_field(v, "log10")?,
        lo: f64_field(v, "lo")?,
        hi: f64_field(v, "hi")?,
        bins: u64_array_field(v, "bins")?,
    })
}

fn parse_features(v: &Value, key: &str) -> Result<Vec<FeatureProfile>, String> {
    v.get(key)
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("missing '{key}' array"))?
        .iter()
        .map(parse_feature_profile)
        .collect()
}

fn parse_confusion(v: &Value) -> Result<Vec<Vec<u64>>, String> {
    v.get("confusion")
        .and_then(Value::as_arr)
        .ok_or("missing 'confusion' array")?
        .iter()
        .map(|row| {
            row.as_arr()
                .ok_or("confusion row is not an array")?
                .iter()
                .map(|c| {
                    c.as_u64()
                        .ok_or_else(|| "non-integer confusion count".to_string())
                })
                .collect()
        })
        .collect()
}

/// Parse the text of one `ledger.jsonl` and recompute its quality
/// report (no drift baseline — the recompute matches a run without
/// `--quality-ref`). The first line must be a `{"type":"ledger", ...}`
/// header with a supported schema version; unknown event types are
/// skipped (additive schema changes don't bump the version).
pub fn parse_quality_ledger(text: &str) -> Result<QualityReport, String> {
    let mut lines = text.lines().enumerate();
    let (_, header_line) = lines.next().ok_or("empty ledger file")?;
    let header = minijson::parse(header_line).map_err(|e| format!("line 1: {e}"))?;
    if str_field(&header, "type")? != "ledger" {
        return Err("line 1: not a ledger header".into());
    }
    let version = u64_field(&header, "schema_version")?;
    if version != LEDGER_SCHEMA_VERSION {
        return Err(format!(
            "unsupported ledger schema_version {version} (expected {LEDGER_SCHEMA_VERSION})"
        ));
    }
    let mut events: Vec<LedgerEvent> = Vec::new();
    for (idx, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let v = minijson::parse(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        let event = str_field(&v, "type").map_err(|e| format!("line {}: {e}", idx + 1))?;
        let parsed: Result<(), String> = (|| {
            match event.as_str() {
                "dataset_profile" => events.push(LedgerEvent::DatasetProfile {
                    round: u64_field(&v, "round")?,
                    split: str_field(&v, "split")?,
                    rows: u64_field(&v, "rows")?,
                    class_counts: u64_array_field(&v, "class_counts")?,
                    features: parse_features(&v, "features")?,
                }),
                "model_diagnostics" => events.push(LedgerEvent::ModelDiagnostics {
                    round: u64_field(&v, "round")?,
                    strategy: str_field(&v, "strategy")?,
                    rows: u64_field(&v, "rows")?,
                    classes: v
                        .get("classes")
                        .and_then(Value::as_arr)
                        .ok_or("missing 'classes' array")?
                        .iter()
                        .map(|c| {
                            c.as_str()
                                .map(str::to_string)
                                .ok_or_else(|| "non-string class name".to_string())
                        })
                        .collect::<Result<Vec<_>, String>>()?,
                    confusion: parse_confusion(&v)?,
                    brier: f64_field(&v, "brier")?,
                    bin_count: u64_array_field(&v, "bin_count")?,
                    bin_conf_sum: f64_array_field(&v, "bin_conf_sum")?,
                    bin_hit: u64_array_field(&v, "bin_hit")?,
                    ale_band_width: f64_field(&v, "ale_band_width")?,
                }),
                _ => {}
            }
            Ok(())
        })();
        parsed.map_err(|e| format!("line {}: {e}", idx + 1))?;
    }
    Ok(report_from_events(events.iter(), None, 0))
}

/// Parse a rendered `quality.json` artifact back into a
/// [`QualityReport`]. Strict, like `searchview`: refuses inactive
/// documents (a `/quality` probe of a disarmed collector) and
/// foreign/newer schema versions loudly instead of guessing.
/// Round-trips byte-for-byte:
/// `parse_quality_json(r.render_json()).render_json() == r.render_json()`.
pub fn parse_quality_json(text: &str) -> Result<QualityReport, String> {
    let v = minijson::parse(text.trim_end())?;
    match v.get("active") {
        Some(Value::Bool(true)) => {}
        Some(Value::Bool(false)) => {
            return Err("inactive document: the collector was disarmed (run with --quality-out, or point amlquality at a ledger.jsonl)".into())
        }
        _ => return Err("not a quality.json document (missing 'active')".into()),
    }
    let version = u64_field(&v, "schema_version")?;
    if version > u64::from(QUALITY_SCHEMA_VERSION) {
        return Err(format!(
            "schema_version {version} is newer than this amlquality ({QUALITY_SCHEMA_VERSION})"
        ));
    }
    let rounds = v
        .get("rounds")
        .and_then(Value::as_arr)
        .ok_or("missing 'rounds' array")?
        .iter()
        .map(|r| {
            Ok(RoundQuality {
                round: u64_field(r, "round")?,
                strategy: str_field(r, "strategy")?,
                rows: u64_field(r, "rows")?,
                accuracy: f64_field(r, "accuracy")?,
                balanced_accuracy: f64_field(r, "balanced_accuracy")?,
                macro_f1: f64_field(r, "macro_f1")?,
                brier: f64_field(r, "brier")?,
                ece: f64_field(r, "ece")?,
                ale_band_width: f64_field(r, "ale_band_width")?,
                psi_mean: opt_f64_field(r, "psi_mean")?,
                psi_max: opt_f64_field(r, "psi_max")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let final_diag = match v.get("final") {
        None => return Err("missing 'final' field".into()),
        Some(Value::Null) => None,
        Some(d) => Some(FinalDiagnostics {
            round: u64_field(d, "round")?,
            classes: d
                .get("classes")
                .and_then(Value::as_arr)
                .ok_or("missing 'classes' array")?
                .iter()
                .map(|c| {
                    c.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "non-string class name".to_string())
                })
                .collect::<Result<Vec<_>, String>>()?,
            confusion: parse_confusion(d)?,
            per_class: d
                .get("per_class")
                .and_then(Value::as_arr)
                .ok_or("missing 'per_class' array")?
                .iter()
                .map(|c| {
                    Ok(aml_telemetry::quality::ClassQuality {
                        class: str_field(c, "class")?,
                        support: u64_field(c, "support")?,
                        precision: f64_field(c, "precision")?,
                        recall: f64_field(c, "recall")?,
                        f1: f64_field(c, "f1")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            reliability: {
                let rel = d.get("reliability").ok_or("missing 'reliability' object")?;
                Reliability {
                    count: u64_array_field(rel, "count")?,
                    confidence: f64_array_field(rel, "confidence")?,
                    accuracy: f64_array_field(rel, "accuracy")?,
                }
            },
        }),
    };
    let drift_v = v.get("drift").ok_or("missing 'drift' object")?;
    let drift = DriftReport {
        reference: str_field(drift_v, "reference")?,
        features: drift_v
            .get("features")
            .and_then(Value::as_arr)
            .ok_or("drift missing 'features' array")?
            .iter()
            .map(|f| {
                Ok(aml_telemetry::quality::FeatureDrift {
                    name: str_field(f, "name")?,
                    psi: opt_f64_field(f, "psi")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?,
    };
    let profiles = v
        .get("profiles")
        .and_then(Value::as_arr)
        .ok_or("missing 'profiles' array")?
        .iter()
        .map(|p| {
            Ok(SplitProfile {
                round: u64_field(p, "round")?,
                split: str_field(p, "split")?,
                rows: u64_field(p, "rows")?,
                class_counts: u64_array_field(p, "class_counts")?,
                features: parse_features(p, "features")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(QualityReport {
        schema_version: version as u32,
        rounds,
        final_diag,
        drift,
        profiles,
        dropped: u64_field(&v, "dropped")?,
    })
}

/// Parse either artifact the quality pipeline produces: a
/// `ledger.jsonl` (the report is recomputed) or a rendered
/// `quality.json` (the report is read back verbatim), told apart by the
/// first line's JSON shape.
pub fn parse_quality_artifact(text: &str) -> Result<QualityReport, String> {
    let first = text.lines().next().unwrap_or("");
    let looks_rendered = minijson::parse(first)
        .ok()
        .is_some_and(|v| v.get("active").is_some());
    if looks_rendered {
        parse_quality_json(text)
    } else {
        parse_quality_ledger(text)
    }
}

/// Load a drift baseline for `--quality-ref`: the latest train-split
/// feature profiles embedded in a previous run's `quality.json`. Errors
/// when the document has no train profile to anchor drift against.
pub fn load_reference(text: &str) -> Result<QualityReference, String> {
    let report = parse_quality_json(text)?;
    let train = report
        .profiles
        .iter()
        .filter(|p| p.split == "train")
        .max_by_key(|p| p.round)
        .ok_or("quality.json has no train profile to use as a drift baseline")?;
    Ok(QualityReference {
        label: "baseline".to_string(),
        features: train.features.clone(),
    })
}

/// Text diff of two reports for `amlquality --compare`: the figures
/// someone checks when changing a strategy, a sampler, or the data mix.
pub fn render_compare(a: &QualityReport, b: &QualityReport) -> String {
    let mut out = String::from("quality compare (A -> B):\n");
    let _ = writeln!(
        out,
        "  {:<24} {:>10} -> {:>10}",
        "rounds",
        a.rounds.len(),
        b.rounds.len()
    );
    let line = |out: &mut String, label: &str, x: f64, y: f64| {
        let delta = if x.abs() < f64::EPSILON {
            0.0
        } else {
            (y - x) * 100.0 / x
        };
        let _ = writeln!(out, "  {label:<24} {x:>10.4} -> {y:>10.4} ({delta:+.1}%)");
    };
    if let (Some(ra), Some(rb)) = (a.rounds.last(), b.rounds.last()) {
        line(&mut out, "final accuracy", ra.accuracy, rb.accuracy);
        line(
            &mut out,
            "final balanced acc",
            ra.balanced_accuracy,
            rb.balanced_accuracy,
        );
        line(&mut out, "final macro F1", ra.macro_f1, rb.macro_f1);
        line(&mut out, "final brier", ra.brier, rb.brier);
        line(&mut out, "final ece", ra.ece, rb.ece);
        line(
            &mut out,
            "final ale band width",
            ra.ale_band_width,
            rb.ale_band_width,
        );
        if let (Some(pa), Some(pb)) = (ra.psi_mean, rb.psi_mean) {
            line(&mut out, "final psi mean", pa, pb);
        }
    }
    // Per-feature drift, matched by name.
    for fa in &a.drift.features {
        let Some(fb) = b.drift.features.iter().find(|f| f.name == fa.name) else {
            continue;
        };
        if let (Some(pa), Some(pb)) = (fa.psi, fb.psi) {
            line(&mut out, &format!("psi {}", fa.name), pa, pb);
        }
    }
    out
}

/// The final round's reliability diagram as a self-contained inline
/// SVG: the diagonal is perfect calibration, one dot per non-empty
/// confidence bin (x = mean confidence, y = empirical accuracy), dot
/// area hinting at the bin's population. Same self-containment contract
/// as the rest of `amlreport` (no scripts, no external assets).
pub fn render_reliability_svg(rel: &Reliability) -> String {
    const W: f64 = 260.0;
    const H: f64 = 260.0;
    const PAD: f64 = 24.0;
    let mut out = String::with_capacity(1024);
    let _ = write!(
        out,
        "<svg viewBox=\"0 0 {W} {H}\" width=\"{W}\" height=\"{H}\" \
         xmlns=\"http://www.w3.org/2000/svg\" role=\"img\">\
         <rect x=\"0\" y=\"0\" width=\"{W}\" height=\"{H}\" fill=\"#fbfbfb\" stroke=\"#d5dbe0\"/>\
         <line x1=\"{PAD}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{PAD}\" \
         stroke=\"#b9c2cc\" stroke-dasharray=\"4 3\"/>\
         <text x=\"{PAD}\" y=\"16\" font-size=\"11\" font-family=\"monospace\">reliability (confidence vs accuracy)</text>",
        H - PAD,
        W - PAD,
    );
    let total: u64 = rel.count.iter().sum();
    if total == 0 {
        let _ = write!(
            out,
            "<text x=\"{PAD}\" y=\"{:.1}\" font-size=\"11\">no predictions recorded</text>",
            H / 2.0
        );
        out.push_str("</svg>");
        return out;
    }
    for (i, &n) in rel.count.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let conf = rel.confidence.get(i).copied().unwrap_or(f64::NAN);
        let acc = rel.accuracy.get(i).copied().unwrap_or(f64::NAN);
        if !conf.is_finite() || !acc.is_finite() {
            continue;
        }
        let x = PAD + conf * (W - 2.0 * PAD);
        let y = H - PAD - acc * (H - 2.0 * PAD);
        let r = 2.0 + 4.0 * (n as f64 / total as f64).sqrt();
        let _ = write!(
            out,
            "<circle cx=\"{x:.1}\" cy=\"{y:.1}\" r=\"{r:.1}\" fill=\"#2f6fb4\" opacity=\"0.75\"/>"
        );
    }
    out.push_str("</svg>");
    out
}

/// The final confusion matrix as an inline-SVG heat grid: rows are true
/// classes, columns predictions, cell shade the row-normalized share.
pub fn render_confusion_svg(diag: &FinalDiagnostics) -> String {
    const CELL: f64 = 46.0;
    const LEFT: f64 = 70.0;
    const TOP: f64 = 40.0;
    let k = diag.classes.len().max(1);
    let w = LEFT + k as f64 * CELL + 10.0;
    let h = TOP + k as f64 * CELL + 10.0;
    let mut out = String::with_capacity(2048);
    let _ = write!(
        out,
        "<svg viewBox=\"0 0 {w:.0} {h:.0}\" width=\"{w:.0}\" height=\"{h:.0}\" \
         xmlns=\"http://www.w3.org/2000/svg\" role=\"img\">\
         <text x=\"8\" y=\"16\" font-size=\"11\" font-family=\"monospace\">confusion (row = true class)</text>"
    );
    for (j, name) in diag.classes.iter().enumerate() {
        let _ = write!(
            out,
            "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"10\" font-family=\"monospace\" text-anchor=\"middle\">{}</text>",
            LEFT + (j as f64 + 0.5) * CELL,
            TOP - 6.0,
            crate::amlreport::esc(name),
        );
    }
    for (i, row) in diag.confusion.iter().enumerate() {
        let support: u64 = row.iter().sum();
        let _ = write!(
            out,
            "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"10\" font-family=\"monospace\" text-anchor=\"end\">{}</text>",
            LEFT - 6.0,
            TOP + (i as f64 + 0.6) * CELL,
            crate::amlreport::esc(diag.classes.get(i).map_or("?", String::as_str)),
        );
        for (j, &n) in row.iter().enumerate() {
            let share = if support > 0 {
                n as f64 / support as f64
            } else {
                0.0
            };
            let x = LEFT + j as f64 * CELL;
            let y = TOP + i as f64 * CELL;
            // Diagonal (correct) cells shade blue, off-diagonal red.
            let fill = if i == j { "#2f6fb4" } else { "#c0392b" };
            let _ = write!(
                out,
                "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{CELL}\" height=\"{CELL}\" \
                 fill=\"{fill}\" opacity=\"{:.3}\" stroke=\"#d5dbe0\"/>\
                 <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\" font-family=\"monospace\" \
                 text-anchor=\"middle\">{n}</text>",
                0.08 + 0.85 * share,
                x + CELL / 2.0,
                y + CELL * 0.6,
            );
        }
    }
    out.push_str("</svg>");
    out
}

/// Per-feature drift as horizontal PSI bars. The conventional 0.2
/// "significant shift" threshold is drawn as a reference line when any
/// bar comes close.
pub fn render_drift_svg(drift: &DriftReport) -> String {
    const W: f64 = 420.0;
    const BAR: f64 = 16.0;
    const GAP: f64 = 5.0;
    const LEFT: f64 = 10.0;
    const TOP: f64 = 22.0;
    let scored: Vec<(&str, f64)> = drift
        .features
        .iter()
        .filter_map(|f| f.psi.map(|p| (f.name.as_str(), p)))
        .collect();
    let n = scored.len().max(1);
    let h = TOP + n as f64 * (BAR + GAP) + GAP;
    let mut out = String::with_capacity(1024);
    let _ = write!(
        out,
        "<svg viewBox=\"0 0 {W} {h:.0}\" width=\"{W}\" height=\"{h:.0}\" \
         xmlns=\"http://www.w3.org/2000/svg\" role=\"img\">\
         <text x=\"{LEFT}\" y=\"14\" font-size=\"11\" font-family=\"monospace\">drift vs {} (PSI)</text>",
        crate::amlreport::esc(&drift.reference),
    );
    if scored.is_empty() {
        let _ = write!(
            out,
            "<text x=\"{LEFT}\" y=\"{:.1}\" font-size=\"11\">no drift reference</text>",
            TOP + BAR
        );
        out.push_str("</svg>");
        return out;
    }
    let max_psi = scored.iter().map(|(_, p)| *p).fold(0.2f64, f64::max);
    let scale = (W - 2.0 * LEFT) / max_psi;
    for (i, (name, psi)) in scored.iter().enumerate() {
        let y = TOP + i as f64 * (BAR + GAP);
        let bw = (psi * scale).max(1.0);
        let fill = if *psi >= 0.2 { "#c0392b" } else { "#5a8f5a" };
        let _ = write!(
            out,
            "<rect x=\"{LEFT}\" y=\"{y:.1}\" width=\"{bw:.1}\" height=\"{BAR}\" fill=\"{fill}\" opacity=\"0.8\"/>\
             <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"10\" font-family=\"monospace\">{} {psi:.4}</text>",
            LEFT + 4.0,
            y + BAR * 0.75,
            crate::amlreport::esc(name),
        );
    }
    let threshold_x = LEFT + 0.2 * scale;
    let _ = write!(
        out,
        "<line x1=\"{threshold_x:.1}\" y1=\"{TOP}\" x2=\"{threshold_x:.1}\" y2=\"{h:.1}\" \
         stroke=\"#c0392b\" stroke-dasharray=\"3 3\" opacity=\"0.6\"/>"
    );
    out.push_str("</svg>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aml_telemetry::quality::profile_feature;

    fn sample_events() -> Vec<LedgerEvent> {
        vec![
            LedgerEvent::DatasetProfile {
                round: 0,
                split: "train".into(),
                rows: 4,
                class_counts: vec![2, 2],
                features: vec![profile_feature("loss", 0.0, 1.0, 4, &[0.1, 0.2, 0.3, 0.9])],
            },
            LedgerEvent::DatasetProfile {
                round: 0,
                split: "eval".into(),
                rows: 2,
                class_counts: vec![1, 1],
                features: vec![profile_feature("loss", 0.0, 1.0, 4, &[0.15, 0.8])],
            },
            LedgerEvent::ModelDiagnostics {
                round: 0,
                strategy: "Within-ALE".into(),
                rows: 2,
                classes: vec!["ok".into(), "bad".into()],
                confusion: vec![vec![1, 0], vec![1, 0]],
                brier: 0.4,
                bin_count: vec![0, 0, 0, 0, 0, 0, 0, 2, 0, 0],
                bin_conf_sum: vec![0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.5, 0.0, 0.0],
                bin_hit: vec![0, 0, 0, 0, 0, 0, 0, 1, 0, 0],
                ale_band_width: 0.3,
            },
            LedgerEvent::DatasetProfile {
                round: 1,
                split: "train".into(),
                rows: 6,
                class_counts: vec![3, 3],
                features: vec![profile_feature(
                    "loss",
                    0.0,
                    1.0,
                    4,
                    &[0.1, 0.2, 0.3, 0.9, 0.85, 0.95],
                )],
            },
            LedgerEvent::ModelDiagnostics {
                round: 1,
                strategy: "Within-ALE".into(),
                rows: 2,
                classes: vec!["ok".into(), "bad".into()],
                confusion: vec![vec![1, 0], vec![0, 1]],
                brier: 0.1,
                bin_count: vec![0, 0, 0, 0, 0, 0, 0, 0, 2, 0],
                bin_conf_sum: vec![0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.7, 0.0],
                bin_hit: vec![0, 0, 0, 0, 0, 0, 0, 0, 2, 0],
                ale_band_width: 0.1,
            },
        ]
    }

    fn sample_ledger() -> String {
        let mut out = String::from(
            "{\"type\":\"ledger\",\"schema_version\":1,\"run_id\":\"r\",\"workload\":\"w\",\"seed\":1,\"git\":\"g\"}\n",
        );
        for e in sample_events() {
            out.push_str(&e.to_json_line());
            out.push('\n');
        }
        out
    }

    #[test]
    fn ledger_reproduces_the_collector_report_byte_for_byte() {
        let from_ledger = parse_quality_ledger(&sample_ledger()).unwrap();
        let from_events = report_from_events(sample_events().iter(), None, 0);
        assert_eq!(from_ledger.render_json(), from_events.render_json());
        assert_eq!(from_ledger.rounds.len(), 2);
        // Round 1 drifts against round 0's train profile.
        assert!(from_ledger.rounds[1].psi_mean.unwrap() > 0.0);
    }

    #[test]
    fn rendered_artifact_round_trips_byte_for_byte() {
        let report = report_from_events(sample_events().iter(), None, 0);
        let json = report.render_json();
        let back = parse_quality_json(&json).unwrap();
        assert_eq!(back.render_json(), json);
        assert_eq!(back.rounds.len(), report.rounds.len());
        // NaN-bearing reliability bins defeat direct struct equality;
        // spot-check the parsed structure instead.
        let diag = back.final_diag.as_ref().unwrap();
        assert_eq!(diag.confusion, vec![vec![1, 0], vec![0, 1]]);
        assert_eq!(diag.reliability.count[8], 2);
    }

    #[test]
    fn artifact_dispatch_tells_ledgers_and_rendered_reports_apart() {
        let from_ledger = parse_quality_artifact(&sample_ledger()).unwrap();
        let json = from_ledger.render_json();
        let from_json = parse_quality_artifact(&json).unwrap();
        assert_eq!(from_json.render_json(), json);
    }

    #[test]
    fn inactive_and_future_artifacts_are_rejected() {
        let err = parse_quality_json("{\"active\":false}\n").unwrap_err();
        assert!(err.contains("inactive"), "{err}");
        let report = report_from_events(sample_events().iter(), None, 0);
        let future = report
            .render_json()
            .replace("\"schema_version\":1", "\"schema_version\":999");
        let err = parse_quality_json(&future).unwrap_err();
        assert!(err.contains("newer"), "{err}");
        assert!(parse_quality_ledger("").is_err());
        assert!(parse_quality_ledger("{\"type\":\"events\"}").is_err());
    }

    #[test]
    fn reference_loads_the_latest_train_profile() {
        let report = report_from_events(sample_events().iter(), None, 0);
        let reference = load_reference(&report.render_json()).unwrap();
        assert_eq!(reference.label, "baseline");
        assert_eq!(reference.features.len(), 1);
        // The latest round's train profile (round 1, 6 rows).
        assert_eq!(reference.features[0].count, 6);
        // A document with no train profile refuses to anchor drift.
        let eval_only = report_from_events(
            sample_events().iter().filter(
                |e| !matches!(e, LedgerEvent::DatasetProfile { split, .. } if split == "train"),
            ),
            None,
            0,
        );
        let err = load_reference(&eval_only.render_json()).unwrap_err();
        assert!(err.contains("no train profile"), "{err}");
    }

    #[test]
    fn reference_changes_the_drift_section_label() {
        let report = report_from_events(sample_events().iter(), None, 0);
        let reference = load_reference(&report.render_json()).unwrap();
        let against = report_from_events(sample_events().iter(), Some(&reference), 0);
        assert_eq!(against.drift.reference, "baseline");
        // The latest train profile IS the baseline → zero drift.
        assert_eq!(against.drift.features[0].psi, Some(0.0));
    }

    #[test]
    fn compare_reports_deltas() {
        let a = report_from_events(sample_events().iter(), None, 0);
        let b = report_from_events(sample_events().iter().take(3), None, 0);
        let text = render_compare(&a, &b);
        assert!(text.contains("final accuracy"), "{text}");
        assert!(text.contains("final ece"), "{text}");
        assert!(text.contains("rounds"), "{text}");
    }

    #[test]
    fn svg_panels_are_self_contained() {
        let report = report_from_events(sample_events().iter(), None, 0);
        let diag = report.final_diag.as_ref().unwrap();
        for svg in [
            render_reliability_svg(&diag.reliability),
            render_confusion_svg(diag),
            render_drift_svg(&report.drift),
        ] {
            assert!(svg.starts_with("<svg"), "{svg}");
            assert!(svg.ends_with("</svg>"), "{svg}");
            assert!(!svg.contains("http://") || svg.contains("xmlns"), "{svg}");
            assert!(!svg.contains("<script"), "{svg}");
        }
        // One dot per non-empty reliability bin.
        let rel = render_reliability_svg(&diag.reliability);
        assert_eq!(rel.matches("<circle").count(), 1);
        // A 2x2 confusion grid renders 4 cells.
        let conf = render_confusion_svg(diag);
        assert_eq!(conf.matches("<rect").count(), 4);
        // Drift with no reference renders the placeholder.
        let empty = render_drift_svg(&DriftReport {
            reference: "none".into(),
            features: vec![],
        });
        assert!(empty.contains("no drift reference"), "{empty}");
    }
}
