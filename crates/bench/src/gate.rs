//! Regression gating: compare two [`BenchReport`]s and decide pass/fail.
//!
//! The gate flattens each report to named metrics — `wall_time_s`,
//! `top_span_total_s`, `span:<name>` (total seconds per span), and
//! `alloc.bytes` — and flags a metric as regressed when the new value
//! exceeds the old by more than the relative tolerance **and** the
//! absolute floor (so microsecond-scale spans can't fail the gate on
//! scheduler noise). A zero/absent baseline can't anchor a relative
//! check, so it regresses only when the new value exceeds the floor
//! outright.

//!
//! Besides the frozen-file comparison (`perfgate --compare`), the gate
//! can judge a run against the **rolling median** of the last N
//! [`HistoryRecord`]s for its workload (`perfgate --against-history N`):
//! [`parse_history`] reads the append-only JSONL store,
//! [`history_baseline`] distills the trailing window into per-metric
//! medians, and [`gate_against_history`] applies the same
//! tolerance/abs-floor rules to the medians. An empty history cannot
//! anchor any check, so the caller treats it as a pass with a warning.

use crate::minijson::{ToJson, Value};
use crate::report::BenchReport;
use aml_telemetry::{HistoryRecord, HISTORY_SCHEMA_VERSION};
use std::fmt::Write as _;

/// Gate parameters.
#[derive(Debug, Clone, Copy)]
pub struct GateConfig {
    /// Allowed relative growth, percent (`10.0` = +10%).
    pub tolerance_pct: f64,
    /// Absolute growth below which a timing change never regresses,
    /// seconds. Applied as bytes for `alloc.bytes`.
    pub abs_floor_s: f64,
    /// Multiplier applied to the new report's timing metrics before
    /// comparing — a test hook to inject synthetic slowdowns
    /// (`--scale 2` must trip the gate).
    pub scale_new: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            tolerance_pct: 10.0,
            abs_floor_s: 0.005,
            scale_new: 1.0,
        }
    }
}

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDiff {
    /// Metric id (`wall_time_s`, `span:<name>`, `alloc.bytes`, …).
    pub metric: String,
    /// Baseline value.
    pub old: f64,
    /// New value (after [`GateConfig::scale_new`]).
    pub new: f64,
    /// Relative change in percent; `None` when the baseline is zero.
    pub delta_pct: Option<f64>,
    /// Whether this metric trips the gate.
    pub regressed: bool,
}

/// The gate's verdict: every compared metric plus the regression count.
#[derive(Debug, Clone)]
pub struct GateOutcome {
    /// All compared metrics, report order.
    pub diffs: Vec<MetricDiff>,
    /// Metrics that were only present on one side (not compared).
    pub unmatched: Vec<String>,
}

impl GateOutcome {
    /// Regressed metric count.
    pub fn regressions(&self) -> usize {
        self.diffs.iter().filter(|d| d.regressed).count()
    }

    /// Whether the gate passes (no regressions).
    pub fn passed(&self) -> bool {
        self.regressions() == 0
    }

    /// Human-readable diff table, regressions flagged.
    pub fn render_table(&self, cfg: &GateConfig) -> String {
        let name_w = self
            .diffs
            .iter()
            .map(|d| d.metric.len())
            .max()
            .unwrap_or(6)
            .max(6);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>12}  {:>12}  {:>8}",
            "metric", "old", "new", "delta"
        );
        for d in &self.diffs {
            let delta = match d.delta_pct {
                Some(pct) => format!("{pct:+.1}%"),
                None => "n/a".to_string(),
            };
            let _ = writeln!(
                out,
                "{:<name_w$}  {:>12.4}  {:>12.4}  {:>8}{}",
                d.metric,
                d.old,
                d.new,
                delta,
                if d.regressed { "  REGRESSION" } else { "" },
            );
        }
        for m in &self.unmatched {
            let _ = writeln!(out, "{m:<name_w$}  (only in one report; not compared)");
        }
        let _ = writeln!(
            out,
            "{} metric(s) compared, {} regression(s) at tolerance {:.0}% / floor {:.0}ms",
            self.diffs.len(),
            self.regressions(),
            cfg.tolerance_pct,
            cfg.abs_floor_s * 1e3,
        );
        out
    }

    /// Machine-readable verdict for `perfgate --compare --json`: the gate
    /// parameters, overall pass/fail, and every compared metric. Schema:
    /// `{workload, tolerance_pct, abs_floor_ms, scale, pass, regressions,
    /// metrics: [{metric, old, new, delta_pct|null, regressed}],
    /// unmatched: [..]}`.
    pub fn render_json(&self, workload: &str, cfg: &GateConfig) -> String {
        self.render_json_with(workload, cfg, Vec::new())
    }

    /// [`render_json`](Self::render_json) with caller-supplied top-level
    /// fields appended at the end of the object — `perfgate --crit` uses
    /// this to embed the critical-path summary next to the verdict.
    pub fn render_json_with(
        &self,
        workload: &str,
        cfg: &GateConfig,
        extra: Vec<(String, Value)>,
    ) -> String {
        let mut fields = self.json_fields(workload, cfg);
        fields.extend(extra);
        Value::Obj(fields).render()
    }

    /// Machine-readable verdict for `perfgate --against-history --json`:
    /// the `--compare` schema plus `history_requested` (the N asked for)
    /// and `history_n` (records actually found; 0 = no baseline, the
    /// gate vacuously passes).
    pub fn render_history_json(
        &self,
        workload: &str,
        cfg: &GateConfig,
        requested: usize,
        n_used: usize,
    ) -> String {
        self.render_history_json_with(workload, cfg, requested, n_used, Vec::new())
    }

    /// [`render_history_json`](Self::render_history_json) with extra
    /// top-level fields appended, mirroring
    /// [`render_json_with`](Self::render_json_with).
    pub fn render_history_json_with(
        &self,
        workload: &str,
        cfg: &GateConfig,
        requested: usize,
        n_used: usize,
        extra: Vec<(String, Value)>,
    ) -> String {
        let mut fields = self.json_fields(workload, cfg);
        fields.insert(1, ("history_n".into(), n_used.to_json()));
        fields.insert(1, ("history_requested".into(), requested.to_json()));
        fields.extend(extra);
        Value::Obj(fields).render()
    }

    fn json_fields(&self, workload: &str, cfg: &GateConfig) -> Vec<(String, Value)> {
        let metrics: Vec<Value> = self
            .diffs
            .iter()
            .map(|d| {
                Value::Obj(vec![
                    ("metric".into(), d.metric.to_json()),
                    ("old".into(), d.old.to_json()),
                    ("new".into(), d.new.to_json()),
                    (
                        "delta_pct".into(),
                        d.delta_pct.map_or(Value::Null, |p| p.to_json()),
                    ),
                    ("regressed".into(), d.regressed.to_json()),
                ])
            })
            .collect();
        vec![
            ("workload".into(), workload.to_json()),
            ("tolerance_pct".into(), cfg.tolerance_pct.to_json()),
            ("abs_floor_ms".into(), (cfg.abs_floor_s * 1e3).to_json()),
            ("scale".into(), cfg.scale_new.to_json()),
            ("pass".into(), self.passed().to_json()),
            ("regressions".into(), self.regressions().to_json()),
            ("metrics".into(), Value::Arr(metrics)),
            ("unmatched".into(), self.unmatched.to_json()),
        ]
    }
}

/// Compare `new` against the `old` baseline under `cfg`.
pub fn compare(old: &BenchReport, new: &BenchReport, cfg: &GateConfig) -> GateOutcome {
    let mut diffs = Vec::new();
    let mut unmatched = Vec::new();

    let mut timing = |metric: &str, old_v: f64, new_v: f64| {
        diffs.push(diff_metric(
            metric,
            old_v,
            new_v * cfg.scale_new,
            cfg,
            cfg.abs_floor_s,
        ));
    };
    timing("wall_time_s", old.wall_time_s, new.wall_time_s);
    timing(
        "top_span_total_s",
        old.top_span_total_s,
        new.top_span_total_s,
    );
    for s in &old.spans {
        match new.spans.iter().find(|n| n.name == s.name) {
            Some(n) => timing(&format!("span:{}", s.name), s.total_s, n.total_s),
            None => unmatched.push(format!("span:{}", s.name)),
        }
    }
    for n in &new.spans {
        if !old.spans.iter().any(|s| s.name == n.name) {
            unmatched.push(format!("span:{}", n.name));
        }
    }

    // Allocation totals are compared unscaled: --scale injects a timing
    // slowdown, not a memory one. The floor becomes 1 MiB of growth.
    if let (Some(a), Some(b)) = (&old.alloc, &new.alloc) {
        diffs.push(diff_metric(
            "alloc.bytes",
            a.bytes as f64,
            b.bytes as f64,
            cfg,
            (1u64 << 20) as f64,
        ));
        diffs.push(diff_metric(
            "alloc.peak_bytes",
            a.peak_bytes as f64,
            b.peak_bytes as f64,
            cfg,
            (1u64 << 20) as f64,
        ));
    }

    GateOutcome { diffs, unmatched }
}

/// Relative delta and verdict for one metric; `abs_floor` is in the
/// metric's own unit.
fn diff_metric(metric: &str, old: f64, new: f64, cfg: &GateConfig, abs_floor: f64) -> MetricDiff {
    let (delta_pct, regressed) = if old <= 0.0 {
        // Zero baseline: no relative change is defined. Regress only if
        // the new value is itself above the absolute floor.
        (None, new > abs_floor)
    } else {
        let pct = (new - old) / old * 100.0;
        (
            Some(pct),
            pct > cfg.tolerance_pct && (new - old) > abs_floor,
        )
    };
    MetricDiff {
        metric: metric.to_string(),
        old,
        new,
        delta_pct,
        regressed,
    }
}

/// Nearest-rank percentile of an ascending-sorted slice: the smallest
/// element with at least `q·n` of the sample at or below it (`q` in
/// `[0, 1]`; `q = 0` gives the minimum). Empty input returns 0.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Parse the history JSONL store into records. Lines that are not valid
/// JSON, not `"type":"history"`, or carry an unknown `schema_version`
/// are skipped (the store is append-only and written by multiple
/// binaries; a torn trailing line or a future version must not poison
/// the whole window).
pub fn parse_history(text: &str) -> Vec<HistoryRecord> {
    text.lines()
        .filter_map(|line| {
            let line = line.trim();
            if line.is_empty() {
                return None;
            }
            let v = crate::minijson::parse(line).ok()?;
            if v.get("type")?.as_str()? != "history"
                || v.get("schema_version")?.as_u64()? != HISTORY_SCHEMA_VERSION
            {
                return None;
            }
            Some(HistoryRecord {
                workload: v.get("workload")?.as_str()?.to_string(),
                seed: v.get("seed")?.as_u64()?,
                git: v.get("git")?.as_str()?.to_string(),
                source: v.get("source")?.as_str()?.to_string(),
                wall_time_s: v.get("wall_time_s")?.as_f64()?,
                top_span_total_s: v.get("top_span_total_s")?.as_f64()?,
                peak_rss_bytes: v.get("peak_rss_bytes")?.as_u64()?,
                alloc_peak_bytes: v.get("alloc_peak_bytes")?.as_u64()?,
                final_acc: v.get("final_acc").and_then(Value::as_f64),
                trials_finished: v.get("trials_finished")?.as_u64()?,
                trials_failed: v.get("trials_failed")?.as_u64()?,
                rounds: v.get("rounds")?.as_u64()?,
                // Trailing field, absent from records written before the
                // quality plane existed: those parse as None.
                ece: v.get("ece").and_then(Value::as_f64),
            })
        })
        .collect()
}

/// The rolling-median baseline distilled from the trailing window of
/// one workload's history.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryBaseline {
    /// Records actually in the window (≤ the N requested).
    pub n_used: usize,
    /// Median wall time, seconds.
    pub wall_time_s: f64,
    /// Median top-span total, seconds.
    pub top_span_total_s: f64,
    /// Median peak RSS, bytes.
    pub peak_rss_bytes: f64,
    /// Median peak live heap, bytes.
    pub alloc_peak_bytes: f64,
    /// Median final-round accuracy over window records that carry one;
    /// `None` when no record in the window does.
    pub final_acc: Option<f64>,
    /// Median Expected Calibration Error over window records that carry
    /// one; `None` when no record in the window does.
    pub ece: Option<f64>,
}

/// Distill the last `n` records for `workload` into per-metric medians
/// (file order = append order = chronological). `None` when the history
/// has no records for the workload or `n == 0` — the caller decides how
/// a missing baseline is judged (perfgate: pass with a warning).
pub fn history_baseline(
    records: &[HistoryRecord],
    workload: &str,
    n: usize,
) -> Option<HistoryBaseline> {
    let matching: Vec<&HistoryRecord> = records.iter().filter(|r| r.workload == workload).collect();
    if matching.is_empty() || n == 0 {
        return None;
    }
    let tail = &matching[matching.len().saturating_sub(n)..];
    let median = |field: &dyn Fn(&HistoryRecord) -> f64| {
        let mut xs: Vec<f64> = tail.iter().map(|r| field(r)).collect();
        xs.sort_by(f64::total_cmp);
        percentile(&xs, 0.5)
    };
    // Quality medians span only the window records that measured them
    // (runs without feedback rounds, or written before the quality
    // plane, contribute nothing rather than dragging the median to 0).
    let opt_median = |field: &dyn Fn(&HistoryRecord) -> Option<f64>| {
        let mut xs: Vec<f64> = tail.iter().filter_map(|r| field(r)).collect();
        if xs.is_empty() {
            return None;
        }
        xs.sort_by(f64::total_cmp);
        Some(percentile(&xs, 0.5))
    };
    Some(HistoryBaseline {
        n_used: tail.len(),
        wall_time_s: median(&|r| r.wall_time_s),
        top_span_total_s: median(&|r| r.top_span_total_s),
        peak_rss_bytes: median(&|r| r.peak_rss_bytes as f64),
        alloc_peak_bytes: median(&|r| r.alloc_peak_bytes as f64),
        final_acc: opt_median(&|r| r.final_acc),
        ece: opt_median(&|r| r.ece),
    })
}

/// Gate a fresh run against a rolling-median baseline: timing metrics
/// use the usual tolerance + absolute floor (and honor
/// [`GateConfig::scale_new`]); memory metrics compare unscaled with a
/// 1 MiB floor and are skipped when neither side ever observed them
/// (RSS off Linux, heap without `alloc-track`).
pub fn gate_against_history(
    baseline: &HistoryBaseline,
    new: &HistoryRecord,
    cfg: &GateConfig,
) -> GateOutcome {
    let mut diffs = vec![
        diff_metric(
            "wall_time_s",
            baseline.wall_time_s,
            new.wall_time_s * cfg.scale_new,
            cfg,
            cfg.abs_floor_s,
        ),
        diff_metric(
            "top_span_total_s",
            baseline.top_span_total_s,
            new.top_span_total_s * cfg.scale_new,
            cfg,
            cfg.abs_floor_s,
        ),
    ];
    let mem_floor = (1u64 << 20) as f64;
    if baseline.peak_rss_bytes > 0.0 || new.peak_rss_bytes > 0 {
        diffs.push(diff_metric(
            "peak_rss_bytes",
            baseline.peak_rss_bytes,
            new.peak_rss_bytes as f64,
            cfg,
            mem_floor,
        ));
    }
    if baseline.alloc_peak_bytes > 0.0 || new.alloc_peak_bytes > 0 {
        diffs.push(diff_metric(
            "alloc.peak_bytes",
            baseline.alloc_peak_bytes,
            new.alloc_peak_bytes as f64,
            cfg,
            mem_floor,
        ));
    }
    GateOutcome {
        diffs,
        unmatched: Vec::new(),
    }
}

/// Accuracy and calibration move on a 0–1 scale; a swing below half a
/// point of accuracy (or ECE) is noise, not signal.
pub const QUALITY_ABS_FLOOR: f64 = 0.005;

/// Gate a fresh run's **model quality** against the rolling-median
/// baseline (`perfgate --gate-quality`): `final_acc` regresses when the
/// new run scores *lower* than the history median (direction inverted
/// vs the timing gate — bigger is better), `ece` when it scores
/// *higher* (calibration error — smaller is better). Both use
/// [`GateConfig::tolerance_pct`] plus the [`QUALITY_ABS_FLOOR`];
/// `scale_new` does not apply (it injects a *timing* slowdown). Metrics
/// the history or the new run never measured are skipped, so the gate
/// passes vacuously on an empty or quality-free history.
pub fn gate_quality_against_history(
    baseline: &HistoryBaseline,
    new: &HistoryRecord,
    cfg: &GateConfig,
) -> GateOutcome {
    let mut diffs = Vec::new();
    if let (Some(old), Some(new_acc)) = (baseline.final_acc, new.final_acc) {
        // Inverted: regression = the new accuracy DROPPING past both
        // the relative tolerance and the absolute floor.
        let (delta_pct, regressed) = if old <= 0.0 {
            (None, false)
        } else {
            let pct = (new_acc - old) / old * 100.0;
            (
                Some(pct),
                -pct > cfg.tolerance_pct && (old - new_acc) > QUALITY_ABS_FLOOR,
            )
        };
        diffs.push(MetricDiff {
            metric: "final_acc".to_string(),
            old,
            new: new_acc,
            delta_pct,
            regressed,
        });
    }
    if let (Some(old), Some(new_ece)) = (baseline.ece, new.ece) {
        // Same direction as timing: more calibration error is worse.
        diffs.push(diff_metric("ece", old, new_ece, cfg, QUALITY_ABS_FLOOR));
    }
    GateOutcome {
        diffs,
        unmatched: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{BenchAlloc, BenchSpan};

    fn report(wall: f64, spans: &[(&str, f64)]) -> BenchReport {
        BenchReport {
            workload: "w".into(),
            seed: 1,
            scale: 0.05,
            threads: 2,
            git: "abc".into(),
            wall_time_s: wall,
            top_span_total_s: spans
                .iter()
                .filter(|(n, _)| n.starts_with("bench."))
                .map(|(_, t)| t)
                .sum(),
            spans: spans
                .iter()
                .map(|(name, total_s)| BenchSpan {
                    name: name.to_string(),
                    calls: 1,
                    total_s: *total_s,
                    mean_ms: total_s * 1e3,
                    max_ms: total_s * 1e3,
                })
                .collect(),
            counters: vec![],
            throughput: vec![],
            histograms: vec![],
            alloc: None,
        }
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(10.0, &[("bench.datagen", 7.0), ("bench.strategies", 3.0)]);
        let outcome = compare(&r, &r.clone(), &GateConfig::default());
        assert!(outcome.passed(), "{:?}", outcome.diffs);
        assert_eq!(outcome.diffs.len(), 4); // wall + top + 2 spans
        assert!(outcome.unmatched.is_empty());
    }

    #[test]
    fn two_x_slowdown_via_scale_trips_the_gate() {
        let r = report(10.0, &[("bench.datagen", 7.0)]);
        let cfg = GateConfig {
            scale_new: 2.0,
            ..GateConfig::default()
        };
        let outcome = compare(&r, &r.clone(), &cfg);
        assert!(!outcome.passed());
        let wall = &outcome.diffs[0];
        assert_eq!(wall.metric, "wall_time_s");
        assert_eq!(wall.delta_pct, Some(100.0));
        assert!(wall.regressed);
        let table = outcome.render_table(&cfg);
        assert!(table.contains("REGRESSION"), "{table}");
    }

    #[test]
    fn growth_within_tolerance_passes() {
        let old = report(10.0, &[("bench.datagen", 7.0)]);
        let new = report(10.8, &[("bench.datagen", 7.5)]);
        assert!(compare(&old, &new, &GateConfig::default()).passed());
        // Just over tolerance fails.
        let worse = report(11.5, &[("bench.datagen", 7.0)]);
        assert!(!compare(&old, &worse, &GateConfig::default()).passed());
    }

    #[test]
    fn tiny_absolute_changes_never_regress() {
        // A 1 ms span tripling is below the 5 ms floor: noise, not signal.
        let old = report(0.001, &[("bench.report", 0.001)]);
        let new = report(0.003, &[("bench.report", 0.003)]);
        assert!(compare(&old, &new, &GateConfig::default()).passed());
    }

    #[test]
    fn zero_baseline_regresses_only_above_the_floor() {
        let old = report(0.0, &[("bench.datagen", 0.0)]);
        let small = report(0.004, &[("bench.datagen", 0.004)]);
        let outcome = compare(&old, &small, &GateConfig::default());
        assert!(outcome.passed(), "{:?}", outcome.diffs);
        assert_eq!(outcome.diffs[0].delta_pct, None);

        let big = report(1.0, &[("bench.datagen", 1.0)]);
        let outcome = compare(&old, &big, &GateConfig::default());
        assert!(!outcome.passed());
        assert_eq!(outcome.diffs[0].delta_pct, None);
        // The n/a delta renders without panicking.
        assert!(outcome.render_table(&GateConfig::default()).contains("n/a"));
    }

    #[test]
    fn span_sets_are_matched_by_name() {
        let old = report(10.0, &[("bench.datagen", 7.0), ("bench.gone", 1.0)]);
        let new = report(10.0, &[("bench.datagen", 7.0), ("bench.added", 1.0)]);
        let outcome = compare(&old, &new, &GateConfig::default());
        assert!(outcome.passed());
        assert!(outcome.unmatched.contains(&"span:bench.gone".to_string()));
        assert!(outcome.unmatched.contains(&"span:bench.added".to_string()));
    }

    #[test]
    fn alloc_bytes_compare_unscaled() {
        let mut old = report(10.0, &[]);
        let mut new = report(10.0, &[]);
        old.alloc = Some(BenchAlloc {
            bytes: 100 << 20,
            count: 10,
            peak_bytes: 50 << 20,
        });
        new.alloc = Some(BenchAlloc {
            bytes: 200 << 20,
            count: 10,
            peak_bytes: 50 << 20,
        });
        let cfg = GateConfig {
            scale_new: 1.0,
            ..GateConfig::default()
        };
        let outcome = compare(&old, &new, &cfg);
        let alloc = outcome
            .diffs
            .iter()
            .find(|d| d.metric == "alloc.bytes")
            .unwrap();
        assert!(alloc.regressed);
        // peak unchanged → fine.
        assert!(
            !outcome
                .diffs
                .iter()
                .find(|d| d.metric == "alloc.peak_bytes")
                .unwrap()
                .regressed
        );
    }

    #[test]
    fn json_verdict_round_trips_and_flags_regressions() {
        let old = report(10.0, &[("bench.datagen", 7.0), ("bench.gone", 1.0)]);
        let new = report(21.0, &[("bench.datagen", 7.0)]);
        let cfg = GateConfig::default();
        let outcome = compare(&old, &new, &cfg);
        let json = outcome.render_json("table1_scream", &cfg);
        let v = crate::minijson::parse(&json).expect("render_json emits valid JSON");
        assert_eq!(v.get("workload").unwrap().as_str(), Some("table1_scream"));
        assert_eq!(v.get("tolerance_pct").unwrap().as_f64(), Some(10.0));
        assert_eq!(v.get("abs_floor_ms").unwrap().as_f64(), Some(5.0));
        assert_eq!(v.get("pass").unwrap(), &Value::Bool(false));
        assert_eq!(v.get("regressions").unwrap().as_u64(), Some(1));
        let metrics = v.get("metrics").unwrap().as_arr().unwrap();
        assert_eq!(metrics.len(), outcome.diffs.len());
        let wall = &metrics[0];
        assert_eq!(wall.get("metric").unwrap().as_str(), Some("wall_time_s"));
        assert_eq!(wall.get("old").unwrap().as_f64(), Some(10.0));
        assert_eq!(wall.get("new").unwrap().as_f64(), Some(21.0));
        let delta = wall.get("delta_pct").unwrap().as_f64().unwrap();
        assert!((delta - 110.0).abs() < 1e-9, "{delta}");
        assert_eq!(wall.get("regressed").unwrap(), &Value::Bool(true));
        let unmatched = v.get("unmatched").unwrap().as_arr().unwrap();
        assert_eq!(unmatched[0].as_str(), Some("span:bench.gone"));

        // A zero baseline renders delta_pct as JSON null.
        let zero = compare(&report(0.0, &[]), &report(0.0, &[]), &cfg);
        let v = crate::minijson::parse(&zero.render_json("w", &cfg)).unwrap();
        assert_eq!(
            v.get("metrics").unwrap().as_arr().unwrap()[0]
                .get("delta_pct")
                .unwrap(),
            &Value::Null
        );
        assert_eq!(v.get("pass").unwrap(), &Value::Bool(true));
    }

    fn history_record(workload: &str, seed: u64, wall: f64, rss: u64) -> HistoryRecord {
        HistoryRecord {
            workload: workload.into(),
            seed,
            git: "abc".into(),
            source: "run".into(),
            wall_time_s: wall,
            top_span_total_s: wall * 0.9,
            peak_rss_bytes: rss,
            alloc_peak_bytes: 0,
            final_acc: Some(0.9),
            trials_finished: 10,
            trials_failed: 0,
            rounds: 3,
            ece: Some(0.05),
        }
    }

    #[test]
    fn parse_history_round_trips_and_skips_junk() {
        let good = history_record("table1_scream", 11, 12.5, 73_400_320);
        let mut null_acc = history_record("table1_scream", 12, 13.0, 0);
        null_acc.final_acc = None;
        let text = format!(
            "{}\nnot json at all\n{{\"type\":\"other\"}}\n\
             {{\"type\":\"history\",\"schema_version\":99,\"workload\":\"x\"}}\n{}\n{{\"type\":\"hist",
            good.to_json_line(),
            null_acc.to_json_line(),
        );
        let records = parse_history(&text);
        assert_eq!(records, vec![good, null_acc]);
        assert_eq!(records[1].final_acc, None);
        assert!(parse_history("").is_empty());
    }

    #[test]
    fn history_baseline_takes_the_trailing_median_per_workload() {
        let records = vec![
            history_record("other", 1, 100.0, 0),
            history_record("w", 1, 10.0, 50 << 20),
            history_record("w", 2, 20.0, 60 << 20),
            history_record("w", 3, 30.0, 70 << 20),
        ];
        // Window larger than history: uses all three, median = middle.
        let b = history_baseline(&records, "w", 10).unwrap();
        assert_eq!(b.n_used, 3);
        assert_eq!(b.wall_time_s, 20.0);
        assert_eq!(b.peak_rss_bytes, (60u64 << 20) as f64);
        // Window of 2 takes the *last* two (most recent runs).
        let b = history_baseline(&records, "w", 2).unwrap();
        assert_eq!(b.n_used, 2);
        assert_eq!(b.wall_time_s, 20.0); // nearest-rank median of [20, 30]
                                         // N=1 degenerates to "compare against the previous run".
        let b = history_baseline(&records, "w", 1).unwrap();
        assert_eq!(b.n_used, 1);
        assert_eq!(b.wall_time_s, 30.0);
        // Missing history / zero window → no baseline.
        assert_eq!(history_baseline(&records, "nope", 3), None);
        assert_eq!(history_baseline(&records, "w", 0), None);
        assert_eq!(history_baseline(&[], "w", 3), None);
    }

    #[test]
    fn history_gate_flags_a_real_slowdown_and_passes_noise() {
        let records = vec![
            history_record("w", 1, 10.0, 50 << 20),
            history_record("w", 2, 10.2, 50 << 20),
            history_record("w", 3, 9.9, 50 << 20),
        ];
        let baseline = history_baseline(&records, "w", 3).unwrap();
        let cfg = GateConfig::default();
        // Within tolerance of the median (10.0): passes.
        let ok = history_record("w", 4, 10.5, 50 << 20);
        assert!(gate_against_history(&baseline, &ok, &cfg).passed());
        // 50% slower than the median: regression on both timing metrics.
        let slow = history_record("w", 5, 15.0, 50 << 20);
        let outcome = gate_against_history(&baseline, &slow, &cfg);
        assert!(!outcome.passed());
        assert_eq!(outcome.regressions(), 2);
        assert_eq!(outcome.diffs[0].metric, "wall_time_s");
        assert_eq!(outcome.diffs[0].old, 10.0);
        // RSS growth beyond tolerance + 1 MiB floor also trips.
        let hog = history_record("w", 6, 10.0, 200 << 20);
        let outcome = gate_against_history(&baseline, &hog, &cfg);
        let rss = outcome
            .diffs
            .iter()
            .find(|d| d.metric == "peak_rss_bytes")
            .unwrap();
        assert!(rss.regressed);
    }

    #[test]
    fn history_gate_skips_memory_metrics_nobody_measured() {
        let records = vec![history_record("w", 1, 10.0, 0)];
        let baseline = history_baseline(&records, "w", 1).unwrap();
        let outcome = gate_against_history(
            &baseline,
            &history_record("w", 2, 10.0, 0),
            &GateConfig::default(),
        );
        assert!(outcome.passed());
        assert_eq!(outcome.diffs.len(), 2, "{:?}", outcome.diffs);
        assert!(outcome.diffs.iter().all(|d| !d.metric.contains("bytes")));
    }

    #[test]
    fn history_json_verdict_carries_the_window_size() {
        let records = vec![history_record("w", 1, 10.0, 0)];
        let baseline = history_baseline(&records, "w", 5).unwrap();
        let cfg = GateConfig::default();
        let outcome = gate_against_history(&baseline, &history_record("w", 2, 10.1, 0), &cfg);
        let v = crate::minijson::parse(&outcome.render_history_json("w", &cfg, 5, baseline.n_used))
            .unwrap();
        assert_eq!(v.get("workload").unwrap().as_str(), Some("w"));
        assert_eq!(v.get("history_requested").unwrap().as_u64(), Some(5));
        assert_eq!(v.get("history_n").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("pass").unwrap(), &Value::Bool(true));

        // Missing history: an empty outcome renders pass=true, history_n=0.
        let empty = GateOutcome {
            diffs: vec![],
            unmatched: vec![],
        };
        let v = crate::minijson::parse(&empty.render_history_json("w", &cfg, 5, 0)).unwrap();
        assert_eq!(v.get("history_n").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("pass").unwrap(), &Value::Bool(true));
        assert_eq!(v.get("regressions").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn quality_gate_inverts_direction_for_accuracy() {
        let records = vec![
            history_record("w", 1, 10.0, 0),
            history_record("w", 2, 10.0, 0),
            history_record("w", 3, 10.0, 0),
        ];
        let baseline = history_baseline(&records, "w", 3).unwrap();
        assert_eq!(baseline.final_acc, Some(0.9));
        assert_eq!(baseline.ece, Some(0.05));
        let cfg = GateConfig::default();

        // Same quality as the median: passes.
        let same = history_record("w", 4, 10.0, 0);
        assert!(gate_quality_against_history(&baseline, &same, &cfg).passed());

        // Accuracy IMPROVING by a lot must not trip the inverted gate.
        let mut better = history_record("w", 5, 10.0, 0);
        better.final_acc = Some(0.99);
        assert!(gate_quality_against_history(&baseline, &better, &cfg).passed());

        // Accuracy dropping 20% regresses; the delta renders negative.
        let mut worse = history_record("w", 6, 10.0, 0);
        worse.final_acc = Some(0.72);
        let outcome = gate_quality_against_history(&baseline, &worse, &cfg);
        assert!(!outcome.passed());
        let acc = &outcome.diffs[0];
        assert_eq!(acc.metric, "final_acc");
        assert!(acc.regressed);
        assert!(acc.delta_pct.unwrap() < -19.0, "{:?}", acc.delta_pct);

        // ECE doubling regresses in the normal direction...
        let mut blurry = history_record("w", 7, 10.0, 0);
        blurry.ece = Some(0.12);
        let outcome = gate_quality_against_history(&baseline, &blurry, &cfg);
        assert!(!outcome.passed());
        assert_eq!(outcome.diffs[1].metric, "ece");
        assert!(outcome.diffs[1].regressed);
        // ...but a sub-floor absolute wobble never does, even when the
        // relative change is large.
        let mut wobble = history_record("w", 8, 10.0, 0);
        wobble.ece = Some(0.0545);
        assert!(gate_quality_against_history(&baseline, &wobble, &cfg).passed());
    }

    #[test]
    fn quality_gate_passes_vacuously_without_measurements() {
        // History written before the quality plane: no final_acc, no ece.
        let mut old = history_record("w", 1, 10.0, 0);
        old.final_acc = None;
        old.ece = None;
        let baseline = history_baseline(&[old], "w", 1).unwrap();
        assert_eq!(baseline.final_acc, None);
        assert_eq!(baseline.ece, None);
        let outcome = gate_quality_against_history(
            &baseline,
            &history_record("w", 2, 10.0, 0),
            &GateConfig::default(),
        );
        assert!(outcome.passed());
        assert!(outcome.diffs.is_empty(), "{:?}", outcome.diffs);
    }

    #[test]
    fn quality_medians_skip_records_without_measurements() {
        let mut a = history_record("w", 1, 10.0, 0);
        a.final_acc = Some(0.8);
        a.ece = None;
        let mut b = history_record("w", 2, 10.0, 0);
        b.final_acc = Some(0.9);
        b.ece = Some(0.03);
        let mut c = history_record("w", 3, 10.0, 0);
        c.final_acc = None;
        c.ece = Some(0.07);
        let baseline = history_baseline(&[a, b, c], "w", 3).unwrap();
        // Median of [0.8, 0.9] (nearest-rank) and [0.03, 0.07].
        assert_eq!(baseline.final_acc, Some(0.8));
        assert_eq!(baseline.ece, Some(0.03));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 0.5), 2.0);
        assert_eq!(percentile(&xs, 0.75), 3.0);
        assert_eq!(percentile(&xs, 0.76), 4.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        let odd = [5.0, 6.0, 7.0];
        assert_eq!(percentile(&odd, 0.5), 6.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
