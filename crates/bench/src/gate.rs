//! Regression gating: compare two [`BenchReport`]s and decide pass/fail.
//!
//! The gate flattens each report to named metrics — `wall_time_s`,
//! `top_span_total_s`, `span:<name>` (total seconds per span), and
//! `alloc.bytes` — and flags a metric as regressed when the new value
//! exceeds the old by more than the relative tolerance **and** the
//! absolute floor (so microsecond-scale spans can't fail the gate on
//! scheduler noise). A zero/absent baseline can't anchor a relative
//! check, so it regresses only when the new value exceeds the floor
//! outright.

use crate::minijson::{ToJson, Value};
use crate::report::BenchReport;
use std::fmt::Write as _;

/// Gate parameters.
#[derive(Debug, Clone, Copy)]
pub struct GateConfig {
    /// Allowed relative growth, percent (`10.0` = +10%).
    pub tolerance_pct: f64,
    /// Absolute growth below which a timing change never regresses,
    /// seconds. Applied as bytes for `alloc.bytes`.
    pub abs_floor_s: f64,
    /// Multiplier applied to the new report's timing metrics before
    /// comparing — a test hook to inject synthetic slowdowns
    /// (`--scale 2` must trip the gate).
    pub scale_new: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            tolerance_pct: 10.0,
            abs_floor_s: 0.005,
            scale_new: 1.0,
        }
    }
}

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDiff {
    /// Metric id (`wall_time_s`, `span:<name>`, `alloc.bytes`, …).
    pub metric: String,
    /// Baseline value.
    pub old: f64,
    /// New value (after [`GateConfig::scale_new`]).
    pub new: f64,
    /// Relative change in percent; `None` when the baseline is zero.
    pub delta_pct: Option<f64>,
    /// Whether this metric trips the gate.
    pub regressed: bool,
}

/// The gate's verdict: every compared metric plus the regression count.
#[derive(Debug, Clone)]
pub struct GateOutcome {
    /// All compared metrics, report order.
    pub diffs: Vec<MetricDiff>,
    /// Metrics that were only present on one side (not compared).
    pub unmatched: Vec<String>,
}

impl GateOutcome {
    /// Regressed metric count.
    pub fn regressions(&self) -> usize {
        self.diffs.iter().filter(|d| d.regressed).count()
    }

    /// Whether the gate passes (no regressions).
    pub fn passed(&self) -> bool {
        self.regressions() == 0
    }

    /// Human-readable diff table, regressions flagged.
    pub fn render_table(&self, cfg: &GateConfig) -> String {
        let name_w = self
            .diffs
            .iter()
            .map(|d| d.metric.len())
            .max()
            .unwrap_or(6)
            .max(6);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>12}  {:>12}  {:>8}",
            "metric", "old", "new", "delta"
        );
        for d in &self.diffs {
            let delta = match d.delta_pct {
                Some(pct) => format!("{pct:+.1}%"),
                None => "n/a".to_string(),
            };
            let _ = writeln!(
                out,
                "{:<name_w$}  {:>12.4}  {:>12.4}  {:>8}{}",
                d.metric,
                d.old,
                d.new,
                delta,
                if d.regressed { "  REGRESSION" } else { "" },
            );
        }
        for m in &self.unmatched {
            let _ = writeln!(out, "{m:<name_w$}  (only in one report; not compared)");
        }
        let _ = writeln!(
            out,
            "{} metric(s) compared, {} regression(s) at tolerance {:.0}% / floor {:.0}ms",
            self.diffs.len(),
            self.regressions(),
            cfg.tolerance_pct,
            cfg.abs_floor_s * 1e3,
        );
        out
    }

    /// Machine-readable verdict for `perfgate --compare --json`: the gate
    /// parameters, overall pass/fail, and every compared metric. Schema:
    /// `{workload, tolerance_pct, abs_floor_ms, scale, pass, regressions,
    /// metrics: [{metric, old, new, delta_pct|null, regressed}],
    /// unmatched: [..]}`.
    pub fn render_json(&self, workload: &str, cfg: &GateConfig) -> String {
        let metrics: Vec<Value> = self
            .diffs
            .iter()
            .map(|d| {
                Value::Obj(vec![
                    ("metric".into(), d.metric.to_json()),
                    ("old".into(), d.old.to_json()),
                    ("new".into(), d.new.to_json()),
                    (
                        "delta_pct".into(),
                        d.delta_pct.map_or(Value::Null, |p| p.to_json()),
                    ),
                    ("regressed".into(), d.regressed.to_json()),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("workload".into(), workload.to_json()),
            ("tolerance_pct".into(), cfg.tolerance_pct.to_json()),
            ("abs_floor_ms".into(), (cfg.abs_floor_s * 1e3).to_json()),
            ("scale".into(), cfg.scale_new.to_json()),
            ("pass".into(), self.passed().to_json()),
            ("regressions".into(), self.regressions().to_json()),
            ("metrics".into(), Value::Arr(metrics)),
            ("unmatched".into(), self.unmatched.to_json()),
        ])
        .render()
    }
}

/// Compare `new` against the `old` baseline under `cfg`.
pub fn compare(old: &BenchReport, new: &BenchReport, cfg: &GateConfig) -> GateOutcome {
    let mut diffs = Vec::new();
    let mut unmatched = Vec::new();

    let mut timing = |metric: &str, old_v: f64, new_v: f64| {
        diffs.push(diff_metric(
            metric,
            old_v,
            new_v * cfg.scale_new,
            cfg,
            cfg.abs_floor_s,
        ));
    };
    timing("wall_time_s", old.wall_time_s, new.wall_time_s);
    timing(
        "top_span_total_s",
        old.top_span_total_s,
        new.top_span_total_s,
    );
    for s in &old.spans {
        match new.spans.iter().find(|n| n.name == s.name) {
            Some(n) => timing(&format!("span:{}", s.name), s.total_s, n.total_s),
            None => unmatched.push(format!("span:{}", s.name)),
        }
    }
    for n in &new.spans {
        if !old.spans.iter().any(|s| s.name == n.name) {
            unmatched.push(format!("span:{}", n.name));
        }
    }

    // Allocation totals are compared unscaled: --scale injects a timing
    // slowdown, not a memory one. The floor becomes 1 MiB of growth.
    if let (Some(a), Some(b)) = (&old.alloc, &new.alloc) {
        diffs.push(diff_metric(
            "alloc.bytes",
            a.bytes as f64,
            b.bytes as f64,
            cfg,
            (1u64 << 20) as f64,
        ));
        diffs.push(diff_metric(
            "alloc.peak_bytes",
            a.peak_bytes as f64,
            b.peak_bytes as f64,
            cfg,
            (1u64 << 20) as f64,
        ));
    }

    GateOutcome { diffs, unmatched }
}

/// Relative delta and verdict for one metric; `abs_floor` is in the
/// metric's own unit.
fn diff_metric(metric: &str, old: f64, new: f64, cfg: &GateConfig, abs_floor: f64) -> MetricDiff {
    let (delta_pct, regressed) = if old <= 0.0 {
        // Zero baseline: no relative change is defined. Regress only if
        // the new value is itself above the absolute floor.
        (None, new > abs_floor)
    } else {
        let pct = (new - old) / old * 100.0;
        (
            Some(pct),
            pct > cfg.tolerance_pct && (new - old) > abs_floor,
        )
    };
    MetricDiff {
        metric: metric.to_string(),
        old,
        new,
        delta_pct,
        regressed,
    }
}

/// Nearest-rank percentile of an ascending-sorted slice: the smallest
/// element with at least `q·n` of the sample at or below it (`q` in
/// `[0, 1]`; `q = 0` gives the minimum). Empty input returns 0.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{BenchAlloc, BenchSpan};

    fn report(wall: f64, spans: &[(&str, f64)]) -> BenchReport {
        BenchReport {
            workload: "w".into(),
            seed: 1,
            scale: 0.05,
            threads: 2,
            git: "abc".into(),
            wall_time_s: wall,
            top_span_total_s: spans
                .iter()
                .filter(|(n, _)| n.starts_with("bench."))
                .map(|(_, t)| t)
                .sum(),
            spans: spans
                .iter()
                .map(|(name, total_s)| BenchSpan {
                    name: name.to_string(),
                    calls: 1,
                    total_s: *total_s,
                    mean_ms: total_s * 1e3,
                    max_ms: total_s * 1e3,
                })
                .collect(),
            counters: vec![],
            throughput: vec![],
            histograms: vec![],
            alloc: None,
        }
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(10.0, &[("bench.datagen", 7.0), ("bench.strategies", 3.0)]);
        let outcome = compare(&r, &r.clone(), &GateConfig::default());
        assert!(outcome.passed(), "{:?}", outcome.diffs);
        assert_eq!(outcome.diffs.len(), 4); // wall + top + 2 spans
        assert!(outcome.unmatched.is_empty());
    }

    #[test]
    fn two_x_slowdown_via_scale_trips_the_gate() {
        let r = report(10.0, &[("bench.datagen", 7.0)]);
        let cfg = GateConfig {
            scale_new: 2.0,
            ..GateConfig::default()
        };
        let outcome = compare(&r, &r.clone(), &cfg);
        assert!(!outcome.passed());
        let wall = &outcome.diffs[0];
        assert_eq!(wall.metric, "wall_time_s");
        assert_eq!(wall.delta_pct, Some(100.0));
        assert!(wall.regressed);
        let table = outcome.render_table(&cfg);
        assert!(table.contains("REGRESSION"), "{table}");
    }

    #[test]
    fn growth_within_tolerance_passes() {
        let old = report(10.0, &[("bench.datagen", 7.0)]);
        let new = report(10.8, &[("bench.datagen", 7.5)]);
        assert!(compare(&old, &new, &GateConfig::default()).passed());
        // Just over tolerance fails.
        let worse = report(11.5, &[("bench.datagen", 7.0)]);
        assert!(!compare(&old, &worse, &GateConfig::default()).passed());
    }

    #[test]
    fn tiny_absolute_changes_never_regress() {
        // A 1 ms span tripling is below the 5 ms floor: noise, not signal.
        let old = report(0.001, &[("bench.report", 0.001)]);
        let new = report(0.003, &[("bench.report", 0.003)]);
        assert!(compare(&old, &new, &GateConfig::default()).passed());
    }

    #[test]
    fn zero_baseline_regresses_only_above_the_floor() {
        let old = report(0.0, &[("bench.datagen", 0.0)]);
        let small = report(0.004, &[("bench.datagen", 0.004)]);
        let outcome = compare(&old, &small, &GateConfig::default());
        assert!(outcome.passed(), "{:?}", outcome.diffs);
        assert_eq!(outcome.diffs[0].delta_pct, None);

        let big = report(1.0, &[("bench.datagen", 1.0)]);
        let outcome = compare(&old, &big, &GateConfig::default());
        assert!(!outcome.passed());
        assert_eq!(outcome.diffs[0].delta_pct, None);
        // The n/a delta renders without panicking.
        assert!(outcome.render_table(&GateConfig::default()).contains("n/a"));
    }

    #[test]
    fn span_sets_are_matched_by_name() {
        let old = report(10.0, &[("bench.datagen", 7.0), ("bench.gone", 1.0)]);
        let new = report(10.0, &[("bench.datagen", 7.0), ("bench.added", 1.0)]);
        let outcome = compare(&old, &new, &GateConfig::default());
        assert!(outcome.passed());
        assert!(outcome.unmatched.contains(&"span:bench.gone".to_string()));
        assert!(outcome.unmatched.contains(&"span:bench.added".to_string()));
    }

    #[test]
    fn alloc_bytes_compare_unscaled() {
        let mut old = report(10.0, &[]);
        let mut new = report(10.0, &[]);
        old.alloc = Some(BenchAlloc {
            bytes: 100 << 20,
            count: 10,
            peak_bytes: 50 << 20,
        });
        new.alloc = Some(BenchAlloc {
            bytes: 200 << 20,
            count: 10,
            peak_bytes: 50 << 20,
        });
        let cfg = GateConfig {
            scale_new: 1.0,
            ..GateConfig::default()
        };
        let outcome = compare(&old, &new, &cfg);
        let alloc = outcome
            .diffs
            .iter()
            .find(|d| d.metric == "alloc.bytes")
            .unwrap();
        assert!(alloc.regressed);
        // peak unchanged → fine.
        assert!(
            !outcome
                .diffs
                .iter()
                .find(|d| d.metric == "alloc.peak_bytes")
                .unwrap()
                .regressed
        );
    }

    #[test]
    fn json_verdict_round_trips_and_flags_regressions() {
        let old = report(10.0, &[("bench.datagen", 7.0), ("bench.gone", 1.0)]);
        let new = report(21.0, &[("bench.datagen", 7.0)]);
        let cfg = GateConfig::default();
        let outcome = compare(&old, &new, &cfg);
        let json = outcome.render_json("table1_scream", &cfg);
        let v = crate::minijson::parse(&json).expect("render_json emits valid JSON");
        assert_eq!(v.get("workload").unwrap().as_str(), Some("table1_scream"));
        assert_eq!(v.get("tolerance_pct").unwrap().as_f64(), Some(10.0));
        assert_eq!(v.get("abs_floor_ms").unwrap().as_f64(), Some(5.0));
        assert_eq!(v.get("pass").unwrap(), &Value::Bool(false));
        assert_eq!(v.get("regressions").unwrap().as_u64(), Some(1));
        let metrics = v.get("metrics").unwrap().as_arr().unwrap();
        assert_eq!(metrics.len(), outcome.diffs.len());
        let wall = &metrics[0];
        assert_eq!(wall.get("metric").unwrap().as_str(), Some("wall_time_s"));
        assert_eq!(wall.get("old").unwrap().as_f64(), Some(10.0));
        assert_eq!(wall.get("new").unwrap().as_f64(), Some(21.0));
        let delta = wall.get("delta_pct").unwrap().as_f64().unwrap();
        assert!((delta - 110.0).abs() < 1e-9, "{delta}");
        assert_eq!(wall.get("regressed").unwrap(), &Value::Bool(true));
        let unmatched = v.get("unmatched").unwrap().as_arr().unwrap();
        assert_eq!(unmatched[0].as_str(), Some("span:bench.gone"));

        // A zero baseline renders delta_pct as JSON null.
        let zero = compare(&report(0.0, &[]), &report(0.0, &[]), &cfg);
        let v = crate::minijson::parse(&zero.render_json("w", &cfg)).unwrap();
        assert_eq!(
            v.get("metrics").unwrap().as_arr().unwrap()[0]
                .get("delta_pct")
                .unwrap(),
            &Value::Null
        );
        assert_eq!(v.get("pass").unwrap(), &Value::Bool(true));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 0.5), 2.0);
        assert_eq!(percentile(&xs, 0.75), 3.0);
        assert_eq!(percentile(&xs, 0.76), 4.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        let odd = [5.0, 6.0, 7.0];
        assert_eq!(percentile(&odd, 0.5), 6.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
