//! A minimal JSON reader *and writer* for the harness's own artifacts.
//!
//! `perfgate --compare` must parse `BENCH_*.json` files, and the golden
//! tests validate `trace.json` / `events.jsonl` structurally. The files
//! are written by this workspace (manifest-style hand-rolled JSON), so a
//! small strict recursive-descent parser is enough — and it keeps the
//! read path as dependency-light as the write path, mirroring
//! `aml-telemetry`'s hand-rolled serializer.
//!
//! The write side ([`Value::render`] and the [`ToJson`] trait) backs
//! [`crate::write_json`]: benchmark binaries convert their result rows
//! into a [`Value`] tree and get pretty-printed JSON that this module's
//! own parser round-trips.
//!
//! Objects preserve key order (they're backed by a `Vec`), numbers are
//! `f64`, and the full escape set of the workspace's writers
//! (`\" \\ \n \r \t \uXXXX`) plus `\/ \b \f` is accepted.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object, preserving key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number in this value, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string in this value, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            c as char,
            *pos,
            bytes.get(*pos).map(|b| *b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        other => Err(format!(
            "unexpected {:?} at byte {}",
            other.map(|b| *b as char),
            *pos
        )),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Value::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        // Surrogate pairs don't occur in our writers; map
                        // lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    other => {
                        return Err(format!("bad escape {:?}", other.map(|b| *b as char)));
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so the
                // byte stream is valid UTF-8 by construction).
                let rest = unsafe { std::str::from_utf8_unchecked(&bytes[*pos..]) };
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            other => {
                return Err(format!(
                    "expected ',' or ']' at byte {} (found {:?})",
                    *pos,
                    other.map(|b| *b as char)
                ));
            }
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            other => {
                return Err(format!(
                    "expected ',' or '}}' at byte {} (found {:?})",
                    *pos,
                    other.map(|b| *b as char)
                ));
            }
        }
    }
}

impl Value {
    /// Pretty-print with 2-space indentation.
    ///
    /// Numbers use Rust's shortest-roundtrip `f64` formatting, so a
    /// render → [`parse`] → render cycle is a fixpoint; strings use the
    /// same escape set the parser accepts (shared with the telemetry
    /// manifest writer).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.is_finite() {
                    let s = format!("{n}");
                    out.push_str(&s);
                } else {
                    // JSON has no NaN/Infinity.
                    out.push_str("null");
                }
            }
            Value::Str(s) => out.push_str(&aml_telemetry::json_string_literal(s)),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.render_into(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Value::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    out.push_str(&aml_telemetry::json_string_literal(k));
                    out.push_str(": ");
                    v.render_into(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

/// Conversion into a [`Value`] — the write-side counterpart of the
/// parser, used by [`crate::write_json`] for data artifacts
/// (score tables, ALE bands, sweep rows).
///
/// The trait lives here (not in a shared crate) so benchmark binaries
/// can implement it for foreign types like `aml_interpret::AleBand`.
pub trait ToJson {
    /// The JSON form of `self`.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Num(*self)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Value {
        Value::Num(*self as f64)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Value {
        Value::Num(*self as f64)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        self.as_slice().to_json()
    }
}

impl<T: ToJson> ToJson for std::collections::BTreeMap<String, T> {
    fn to_json(&self) -> Value {
        Value::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_is_a_fixpoint() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("a \"quoted\"\nline".into())),
            (
                "rows".into(),
                Value::Arr(vec![
                    Value::Num(1.5),
                    Value::Num(-0.000125),
                    Value::Bool(true),
                    Value::Null,
                ]),
            ),
            ("empty_arr".into(), Value::Arr(vec![])),
            ("empty_obj".into(), Value::Obj(vec![])),
        ]);
        let rendered = v.render();
        let reparsed = parse(&rendered).expect("own writer parses");
        assert_eq!(reparsed, v);
        assert_eq!(reparsed.render(), rendered);
    }

    #[test]
    fn render_emits_null_for_non_finite() {
        assert_eq!(Value::Num(f64::NAN).render(), "null");
        assert_eq!(Value::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn to_json_builds_expected_tree() {
        let mut map = std::collections::BTreeMap::new();
        map.insert("xs".to_string(), vec![1.0f64, 2.5]);
        let v = map.to_json();
        assert_eq!(
            v,
            Value::Obj(vec![(
                "xs".into(),
                Value::Arr(vec![Value::Num(1.0), Value::Num(2.5)])
            )])
        );
        assert_eq!("s".to_string().to_json(), Value::Str("s".into()));
        assert_eq!(3usize.to_json(), Value::Num(3.0));
        assert_eq!(true.to_json(), Value::Bool(true));
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Num(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures_preserving_key_order() {
        let v = parse(r#"{"b": [1, {"x": "y"}], "a": {}}"#).unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(obj[0].0, "b");
        assert_eq!(obj[1].0, "a");
        let arr = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("x").unwrap().as_str(), Some("y"));
        assert_eq!(v.get("a").unwrap().as_obj().unwrap().len(), 0);
    }

    #[test]
    fn unescapes_strings() {
        let v = parse(r#""a\"b\\c\nd\u0041""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1 2",
            "{\"a\" 1}",
            "\"\\q\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn round_trips_the_manifest_writer() {
        // The telemetry manifest is the most complex document our writers
        // produce; it must parse cleanly.
        let manifest = aml_telemetry::Manifest {
            binary: "weird\"name\\x".into(),
            seed: 7,
            scale: 0.05,
            threads: 2,
            git: "abc".into(),
            telemetry: "summary".into(),
            wall_time_s: 1.5,
            snapshot: aml_telemetry::Snapshot::default(),
        };
        let v = parse(&manifest.to_json()).unwrap();
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("binary").unwrap().as_str(), Some("weird\"name\\x"));
        assert_eq!(v.get("spans").unwrap().as_obj().unwrap().len(), 0);
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Value::Num(1.5).as_u64(), None);
        assert_eq!(Value::Num(-2.0).as_u64(), None);
        assert_eq!(Value::Num(3.0).as_u64(), Some(3));
        assert_eq!(Value::Num(2.5).as_f64(), Some(2.5));
    }
}
