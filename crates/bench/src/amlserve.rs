//! `amlserve`: a crash-safe, multi-tenant AutoML run server.
//!
//! The companion proposal paper frames domain-customized AutoML as a
//! continuously-operating service; this module is that long-lived
//! process, layered on the same std-only socket discipline as the live
//! plane (`aml_telemetry::serve`). One thread owns everything: it
//! accepts HTTP requests, schedules jobs onto a bounded pool of worker
//! *processes*, reaps them, and journals every state transition.
//!
//! ## Routes
//!
//! * `POST /submit` — submit a job spec (JSON body, see [`JobSpec`];
//!   optional inline CSV dataset upload via a `"csv"` field; tenant via
//!   `X-Tenant` header or `"tenant"` field). Answers `202` with the job
//!   id, `400` on malformed specs, `429` + `Retry-After` when the queue
//!   is full or the tenant's token budget is spent (backpressure, not
//!   OOM), `503` while draining.
//! * `GET /jobs` — all jobs with their states.
//! * `GET /jobs/<id>` — one job: state, attempt, tail of its ledger
//!   events (`?tail=N`), and the result once done.
//! * `DELETE /jobs/<id>` — cooperative cancel at the next round
//!   boundary (queued jobs cancel immediately).
//! * `GET /metrics` — Prometheus text: `serve_jobs_queued` /
//!   `serve_jobs_running` gauges, `serve_jobs_{submitted,done,failed,
//!   retried,preempted,rejected,canceled}` counters.
//! * `GET /healthz`, `GET /history`, `GET /dashboard` — the familiar
//!   plane, with `/dashboard`'s jobs panel polling `/jobs`.
//! * `POST /shutdown` — graceful drain: stop admissions, ask running
//!   workers to checkpoint and exit at the next round boundary, kill
//!   stragglers after the grace period, journal everything `preempted`,
//!   exit.
//!
//! ## Why worker processes
//!
//! The telemetry sink list, the fault plan, and the ledger round
//! counter are process-global, so two concurrent in-process jobs cannot
//! each own a ledger. Instead the server re-invokes its own executable
//! in a hidden worker mode (`amlserve --worker <jobdir>`); each job
//! gets a sibling directory with its spec, ledger, checkpoint, and
//! result, and full process isolation — a panicking or aborting trial
//! can never take the server down.
//!
//! ## Crash safety
//!
//! Two disciplines, both borrowed from `aml_core::checkpoint`:
//!
//! * **whole files** (`job.json`, `result.json`, `worker.pid`,
//!   `serve.addr`) are written tmp + rename, so readers see the old
//!   version or the new one, never a torn one;
//! * **append-only logs** (`queue.jsonl`, the per-job ledgers, the
//!   history store) grow by single whole-line writes; a torn trailing
//!   line after SIGKILL is skipped on replay.
//!
//! Cold-start recovery replays `queue.jsonl`, fences any worker
//! processes orphaned by the previous server life (pidfile +
//! `/proc/<pid>/cmdline` check, then kill — two writers on one ledger
//! would corrupt it), marks jobs whose `result.json` landed as done,
//! and requeues the rest; a requeued job with a valid checkpoint
//! resumes mid-experiment and its final sorted ledger is byte-identical
//! to an uninterrupted run (`server_recovery.rs` proves it).
//!
//! ## Fault injection
//!
//! `--fault-plan worker_crash@N` makes the `N`-th worker launch abort
//! after checkpointing its first fresh round (exercising
//! retry-with-backoff + resume); `submit_burst@N` rejects the `N`-th
//! submission with an injected 429 (exercising client backpressure).
//! Trial-level faults (`trial_panic@…`) are already absorbed *inside*
//! the worker by the PR 5 sandbox and surface as `trial_failed` ledger
//! events, not worker deaths.

use crate::minijson::{self, Value};
use aml_core::{run_strategy, ExperimentConfig, ExperimentLoop, Strategy};
use aml_dataset::split::{split_into_k, three_way_split};
use aml_dataset::{csv, synth, Dataset};
use aml_faults::FaultPlan;
use aml_telemetry::serve::{dashboard_html, render_history_json, HttpRequest};
use aml_telemetry::serve::{read_request, render_prometheus, write_response};
use aml_telemetry::sink::{self, RunHeader};
use aml_telemetry::{json_string_literal, HistoryRecord, LedgerJsonlSink, Snapshot};
use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Exit code a worker uses for a *cooperative* stop (cancel or preempt
/// honored at a round boundary, checkpoint already on disk). Anything
/// else nonzero — or death by signal — is classed as a crash and
/// retried with backoff.
pub const STOP_EXIT_CODE: i32 = 75;

/// Largest accepted `POST /submit` body (spec + inline CSV upload).
/// Bounded so a misbehaving client cannot balloon server memory.
pub const MAX_SUBMIT_BODY: usize = 1 << 20;

/// How many trailing ledger events `GET /jobs/<id>` returns by default.
const JOB_EVENT_TAIL: usize = 16;

const POLL: Duration = Duration::from_millis(20);

// ---------------------------------------------------------------------
// Job specs.
// ---------------------------------------------------------------------

/// What to run on: a deterministic generator or an uploaded CSV.
#[derive(Debug, Clone, PartialEq)]
pub enum DatasetSpec {
    /// `synth::two_moons(n, noise, seed)`.
    TwoMoons { n: usize, noise: f64, seed: u64 },
    /// `synth::gaussian_blobs(n, dim, classes, std, seed)`.
    Blobs {
        n: usize,
        dim: usize,
        classes: usize,
        std: f64,
        seed: u64,
    },
    /// `synth::noisy_xor(n, flip, seed)`.
    Xor { n: usize, flip: f64, seed: u64 },
    /// An uploaded CSV, stored as `dataset.csv` in the job directory.
    Csv,
}

impl DatasetSpec {
    fn from_json(v: &Value) -> Result<DatasetSpec, String> {
        let kind = v
            .get("kind")
            .and_then(Value::as_str)
            .ok_or("dataset.kind missing (two_moons, blobs, xor, or csv)")?;
        let num = |key: &str, default: f64| v.get(key).and_then(Value::as_f64).unwrap_or(default);
        let int = |key: &str, default: u64| v.get(key).and_then(Value::as_u64).unwrap_or(default);
        match kind {
            "two_moons" => Ok(DatasetSpec::TwoMoons {
                n: int("n", 240) as usize,
                noise: num("noise", 0.25),
                seed: int("seed", 9),
            }),
            "blobs" => Ok(DatasetSpec::Blobs {
                n: int("n", 240) as usize,
                dim: int("dim", 2) as usize,
                classes: int("classes", 2) as usize,
                std: num("std", 0.5),
                seed: int("seed", 9),
            }),
            "xor" => Ok(DatasetSpec::Xor {
                n: int("n", 240) as usize,
                flip: num("flip", 0.05),
                seed: int("seed", 9),
            }),
            "csv" => Ok(DatasetSpec::Csv),
            other => Err(format!("unknown dataset.kind '{other}'")),
        }
    }

    fn to_json(&self) -> String {
        match self {
            DatasetSpec::TwoMoons { n, noise, seed } => {
                format!("{{\"kind\":\"two_moons\",\"n\":{n},\"noise\":{noise},\"seed\":{seed}}}")
            }
            DatasetSpec::Blobs {
                n,
                dim,
                classes,
                std,
                seed,
            } => format!(
                "{{\"kind\":\"blobs\",\"n\":{n},\"dim\":{dim},\"classes\":{classes},\"std\":{std},\"seed\":{seed}}}"
            ),
            DatasetSpec::Xor { n, flip, seed } => {
                format!("{{\"kind\":\"xor\",\"n\":{n},\"flip\":{flip},\"seed\":{seed}}}")
            }
            DatasetSpec::Csv => "{\"kind\":\"csv\"}".to_string(),
        }
    }

    fn materialize(&self, job_dir: &Path) -> Result<Dataset, String> {
        match self {
            DatasetSpec::TwoMoons { n, noise, seed } => {
                synth::two_moons(*n, *noise, *seed).map_err(|e| e.to_string())
            }
            DatasetSpec::Blobs {
                n,
                dim,
                classes,
                std,
                seed,
            } => synth::gaussian_blobs(*n, *dim, *classes, *std, *seed).map_err(|e| e.to_string()),
            DatasetSpec::Xor { n, flip, seed } => {
                synth::noisy_xor(*n, *flip, *seed).map_err(|e| e.to_string())
            }
            DatasetSpec::Csv => {
                csv::read_csv(&job_dir.join("dataset.csv")).map_err(|e| e.to_string())
            }
        }
    }
}

/// One submitted experiment: which dataset, which strategies (one per
/// feedback round), and the experiment-loop knobs. Everything defaults
/// to a small deterministic two-moons experiment, so `{}` is a valid
/// submission.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Display name (also the workload joined on by `/history`).
    pub name: String,
    /// Master seed; per-round seeds derive from it exactly like the
    /// bench bins (`seed ^ ((round+1) * 0xA5A5)`).
    pub seed: u64,
    pub dataset: DatasetSpec,
    /// One strategy per feedback round, by paper name ("Uniform",
    /// "Without feedback", "Cross-ALE", …).
    pub rounds: Vec<Strategy>,
    pub n_candidates: usize,
    pub parallelism: usize,
    pub n_feedback_points: usize,
    pub n_cross_runs: usize,
    pub n_test_sets: usize,
    /// Artificial pause between rounds (does not touch the ledger) —
    /// lets tests and demos control job duration.
    pub round_sleep_ms: u64,
    /// Per-job wall-clock budget override (server default otherwise).
    pub timeout_ms: Option<u64>,
}

/// Look a strategy up by its paper name (`Strategy::name`).
pub fn strategy_by_name(name: &str) -> Option<Strategy> {
    Strategy::ALL.into_iter().find(|s| s.name() == name)
}

impl JobSpec {
    /// Parse a submitted spec. Unknown strategy names and dataset kinds
    /// are errors (reported as 400s); missing fields default.
    pub fn from_json(v: &Value) -> Result<JobSpec, String> {
        let int = |key: &str, default: u64| v.get(key).and_then(Value::as_u64).unwrap_or(default);
        let rounds = match v.get("rounds").and_then(Value::as_arr) {
            Some(arr) => {
                let mut rounds = Vec::with_capacity(arr.len());
                for item in arr {
                    let name = item.as_str().ok_or("rounds entries must be strings")?;
                    rounds.push(
                        strategy_by_name(name)
                            .ok_or_else(|| format!("unknown strategy '{name}' in rounds"))?,
                    );
                }
                if rounds.is_empty() {
                    return Err("rounds must not be empty".into());
                }
                rounds
            }
            None => vec![Strategy::NoFeedback, Strategy::Uniform],
        };
        let dataset = match v.get("dataset") {
            Some(d) => DatasetSpec::from_json(d)?,
            None if v.get("csv").is_some() => DatasetSpec::Csv,
            None => DatasetSpec::TwoMoons {
                n: 240,
                noise: 0.25,
                seed: 9,
            },
        };
        Ok(JobSpec {
            name: v
                .get("name")
                .and_then(Value::as_str)
                .unwrap_or("job")
                .to_string(),
            seed: int("seed", 21),
            dataset,
            rounds,
            n_candidates: int("n_candidates", 6) as usize,
            parallelism: int("parallelism", 2) as usize,
            n_feedback_points: int("n_feedback_points", 10) as usize,
            n_cross_runs: int("n_cross_runs", 2) as usize,
            n_test_sets: int("n_test_sets", 3) as usize,
            round_sleep_ms: int("round_sleep_ms", 0),
            timeout_ms: v.get("timeout_ms").and_then(Value::as_u64),
        })
    }

    /// Serialize for `job.json` (same shape `from_json` accepts).
    pub fn to_json(&self) -> String {
        let rounds: Vec<String> = self
            .rounds
            .iter()
            .map(|s| json_string_literal(s.name()))
            .collect();
        format!(
            "{{\"name\":{},\"seed\":{},\"dataset\":{},\"rounds\":[{}],\
             \"n_candidates\":{},\"parallelism\":{},\"n_feedback_points\":{},\
             \"n_cross_runs\":{},\"n_test_sets\":{},\"round_sleep_ms\":{},\"timeout_ms\":{}}}",
            json_string_literal(&self.name),
            self.seed,
            self.dataset.to_json(),
            rounds.join(","),
            self.n_candidates,
            self.parallelism,
            self.n_feedback_points,
            self.n_cross_runs,
            self.n_test_sets,
            self.round_sleep_ms,
            self.timeout_ms
                .map_or("null".to_string(), |t| t.to_string()),
        )
    }

    /// Token cost charged against the tenant's budget: one token per
    /// feedback round.
    pub fn cost(&self) -> u64 {
        self.rounds.len() as u64
    }
}

// ---------------------------------------------------------------------
// Shared small-file helpers (tmp + rename discipline).
// ---------------------------------------------------------------------

/// Write `bytes` to `path` atomically: tmp file in the same directory,
/// fsync, rename. Readers see the old content or the new, never a torn
/// mix — the checkpoint module's discipline.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// Append one whole line (newline added) to an `O_APPEND` log with a
/// single `write`, then fsync. Concurrent appenders cannot interleave
/// bytes within a line; a crash can only tear the final line, which
/// replay skips.
fn append_line(path: &Path, line: &str) -> std::io::Result<()> {
    let mut owned = String::with_capacity(line.len() + 1);
    owned.push_str(line);
    owned.push('\n');
    let mut f = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    f.write_all(owned.as_bytes())?;
    f.sync_data()
}

/// Exponential backoff for retry `attempt` (1-based): `base * 2^(a-1)`,
/// capped at 30 s.
pub fn backoff_delay(attempt: u32, base: Duration) -> Duration {
    let factor = 1u32 << attempt.saturating_sub(1).min(16);
    (base * factor).min(Duration::from_secs(30))
}

// ---------------------------------------------------------------------
// The worker process.
// ---------------------------------------------------------------------

/// Entry point for `amlserve --worker <jobdir>`: run (or resume) the
/// job in `job_dir` to completion. Returns the process exit code:
/// `0` done, [`STOP_EXIT_CODE`] when a stop file asked for a
/// cooperative stop at a round boundary, `1` on error. With
/// `inject_crash` the process aborts right after checkpointing its
/// first fresh round — the deterministic `worker_crash@N` fault.
pub fn run_worker(job_dir: &Path, inject_crash: bool) -> i32 {
    match worker_inner(job_dir, inject_crash) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("[amlserve worker] {}: {e}", job_dir.display());
            1
        }
    }
}

fn stop_requested(job_dir: &Path) -> bool {
    job_dir.join("stop").exists()
}

/// Sleep `ms`, polling the stop file so a cancel during the pause is
/// honored without waiting the pause out. True if stop was requested.
fn sleep_checking_stop(job_dir: &Path, ms: u64) -> bool {
    let deadline = Instant::now() + Duration::from_millis(ms);
    while Instant::now() < deadline {
        if stop_requested(job_dir) {
            return true;
        }
        std::thread::sleep(Duration::from_millis(50).min(deadline - Instant::now()));
    }
    stop_requested(job_dir)
}

fn worker_inner(job_dir: &Path, inject_crash: bool) -> Result<i32, String> {
    let started = Instant::now();
    let text = fs::read_to_string(job_dir.join("job.json"))
        .map_err(|e| format!("cannot read job.json: {e}"))?;
    let parsed = minijson::parse(&text).map_err(|e| format!("job.json: {e}"))?;
    let id = parsed
        .get("id")
        .and_then(Value::as_str)
        .ok_or("job.json missing id")?
        .to_string();
    let spec = JobSpec::from_json(parsed.get("spec").ok_or("job.json missing spec")?)?;

    write_atomic(
        &job_dir.join("worker.pid"),
        format!("{}\n", std::process::id()).as_bytes(),
    )
    .map_err(|e| format!("cannot write pidfile: {e}"))?;

    // Ledger determinism contract: every header field is a pure
    // function of the job, so an uninterrupted reference run over the
    // same job.json produces byte-identical lines.
    let workload = format!("amlserve:{id}");
    let header = RunHeader {
        run_id: id.clone(),
        workload: workload.clone(),
        seed: spec.seed,
        git: "amlserve".into(),
    };
    let ledger = job_dir.join("ledger.jsonl");
    let ckpt_path = job_dir.join("run.ckpt");

    aml_telemetry::set_level(aml_telemetry::TelemetryLevel::Summary);
    let mut exp_loop = if ckpt_path.exists() {
        let ckpt =
            aml_core::checkpoint::prepare_resume(&workload, spec.seed, &ckpt_path, Some(&ledger))
                .map_err(|e| format!("resume: {e}"))?;
        aml_telemetry::ledger::mark_search_space_emitted();
        sink::install(Box::new(
            LedgerJsonlSink::append(&ledger).map_err(|e| format!("ledger: {e}"))?,
        ));
        ExperimentLoop::from_checkpoint(ckpt, Some(ckpt_path), Some(ledger.clone()))
    } else {
        aml_telemetry::ledger::set_next_round(0);
        sink::install(Box::new(
            LedgerJsonlSink::create(&ledger, &header).map_err(|e| format!("ledger: {e}"))?,
        ));
        ExperimentLoop::new(&workload, spec.seed, Some(ckpt_path), Some(ledger.clone()))
    };
    let summary = aml_core::summary::install_collector();

    // Three-way split so every strategy capability is covered: free
    // strategies label through the oracle, pool strategies draw from
    // the held-out candidate pool. Split seeds are constants — the
    // job's own seed already varies the dataset and the search.
    let ds = spec.dataset.materialize(job_dir)?;
    let (train, test, pool) = three_way_split(&ds, 0.4, 0.3, 1).map_err(|e| e.to_string())?;
    let test_sets = split_into_k(&test, spec.n_test_sets, 7).map_err(|e| e.to_string())?;
    let oracle = |rows: &[Vec<f64>]| -> aml_core::Result<Dataset> {
        let labels: Vec<usize> = rows.iter().map(|r| usize::from(r[0] > 0.5)).collect();
        Dataset::from_rows(rows, &labels, 2)
            .map_err(|e| aml_core::CoreError::InvalidParameter(e.to_string()))
    };

    let crash_armed = inject_crash;
    let mut last_scores: Vec<f64> = Vec::new();
    for (round, strategy) in spec.rounds.iter().enumerate() {
        let round = round as u64;
        if let Some(rec) = exp_loop.completed(round) {
            last_scores = rec.scores.clone();
            continue;
        }
        if stop_requested(job_dir) {
            sink::finish(&Snapshot::default());
            return Ok(STOP_EXIT_CODE);
        }
        let cfg = ExperimentConfig {
            automl: aml_automl::AutoMlConfig {
                n_candidates: spec.n_candidates,
                parallelism: spec.parallelism,
                ..Default::default()
            },
            n_feedback_points: spec.n_feedback_points,
            n_cross_runs: spec.n_cross_runs,
            seed: spec.seed ^ ((round + 1) * 0xA5A5),
            ..Default::default()
        };
        let out = run_strategy(
            *strategy,
            &cfg,
            &train,
            Some(&pool),
            Some(&oracle),
            &test_sets,
        )
        .map_err(|e| format!("round {round}: {e}"))?;
        last_scores = out.scores.clone();
        exp_loop
            .record(ExperimentLoop::round_record(
                round,
                *strategy,
                out.n_points_added,
                &out.scores,
            ))
            .map_err(|e| format!("checkpoint: {e}"))?;
        if crash_armed {
            // The round above is checkpointed and its ledger bytes are
            // flushed; abort models a worker crash whose retry must
            // resume to a byte-identical ledger.
            std::process::abort();
        }
        if spec.round_sleep_ms > 0 && sleep_checking_stop(job_dir, spec.round_sleep_ms) {
            sink::finish(&Snapshot::default());
            return Ok(STOP_EXIT_CODE);
        }
    }

    sink::finish(&Snapshot::default());
    let totals = summary.snapshot();
    let final_acc = if last_scores.is_empty() {
        "null".to_string()
    } else {
        let acc = last_scores.iter().sum::<f64>() / last_scores.len() as f64;
        format!("{acc}")
    };
    let result = format!(
        "{{\"id\":{},\"name\":{},\"seed\":{},\"final_acc\":{},\"trials_finished\":{},\
         \"trials_failed\":{},\"rounds\":{},\"ece\":{},\"wall_time_s\":{}}}",
        json_string_literal(&id),
        json_string_literal(&spec.name),
        spec.seed,
        final_acc,
        totals.trials_finished,
        totals.trials_failed,
        totals.rounds,
        totals.ece.map_or("null".to_string(), |e| format!("{e}")),
        started.elapsed().as_secs_f64(),
    );
    // result.json is the completion marker; written last, atomically.
    write_atomic(&job_dir.join("result.json"), result.as_bytes())
        .map_err(|e| format!("cannot write result.json: {e}"))?;
    Ok(0)
}

// ---------------------------------------------------------------------
// Server configuration and state.
// ---------------------------------------------------------------------

/// Server knobs; see the `amlserve` binary's `--help` for the flags.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` for an ephemeral port; the bound
    /// address lands in `<data_dir>/serve.addr`).
    pub addr: String,
    /// Root of the journal, job directories, and history store.
    pub data_dir: PathBuf,
    /// Worker-pool bound: at most this many jobs run concurrently.
    pub workers: usize,
    /// Admission bound: at most this many jobs queued (running jobs do
    /// not count); beyond it `POST /submit` answers 429.
    pub queue_cap: usize,
    /// Per-tenant concurrency bound.
    pub tenant_max_running: usize,
    /// Per-tenant token budget for this server's lifetime; each
    /// accepted job costs [`JobSpec::cost`] tokens.
    pub tenant_budget: u64,
    /// Default per-job wall-clock budget (spec `timeout_ms` overrides).
    pub job_timeout: Duration,
    /// Crash-retry bound per job.
    pub max_retries: u32,
    /// First retry delay; doubles per attempt, capped at 30 s.
    pub retry_base: Duration,
    /// How long a graceful shutdown waits for workers to reach a round
    /// boundary before killing them.
    pub drain_grace: Duration,
    /// Preempt the longest-running job once it has run this long and a
    /// queued job is starving (None: never preempt).
    pub preempt_after: Option<Duration>,
    /// Deterministic fault injection (`worker_crash@N`, `submit_burst@N`).
    pub fault_plan: Option<FaultPlan>,
    /// History store path (default `<data_dir>/history.jsonl`).
    pub history_path: Option<PathBuf>,
}

impl ServerConfig {
    /// Defaults for everything but the data directory.
    pub fn new(data_dir: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:9900".into(),
            data_dir: data_dir.into(),
            workers: 2,
            queue_cap: 16,
            tenant_max_running: 2,
            tenant_budget: 1024,
            job_timeout: Duration::from_secs(300),
            max_retries: 3,
            retry_base: Duration::from_millis(500),
            drain_grace: Duration::from_secs(10),
            preempt_after: None,
            fault_plan: None,
            history_path: None,
        }
    }

    fn history_path(&self) -> PathBuf {
        self.history_path
            .clone()
            .unwrap_or_else(|| self.data_dir.join("history.jsonl"))
    }
}

/// Job lifecycle states (see DESIGN.md §12 for the transition diagram).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    Queued,
    Running,
    Done,
    Failed,
    Canceled,
}

impl JobState {
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Canceled => "canceled",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StopKind {
    Cancel,
    Preempt,
}

struct Job {
    id: String,
    tenant: String,
    spec: JobSpec,
    state: JobState,
    attempt: u32,
    /// Backoff gate: not eligible to launch before this instant.
    not_before: Option<Instant>,
    child: Option<Child>,
    started_at: Option<Instant>,
    deadline: Option<Instant>,
    stop_requested: Option<StopKind>,
    failure: Option<String>,
}

struct Response {
    status: &'static str,
    content_type: &'static str,
    headers: Vec<(&'static str, String)>,
    body: String,
}

impl Response {
    fn json(status: &'static str, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body,
        }
    }

    fn error(status: &'static str, message: &str) -> Response {
        Response::json(
            status,
            format!("{{\"error\":{}}}\n", json_string_literal(message)),
        )
    }
}

/// The scheduler + HTTP plane. Owned and driven by [`run_server`];
/// constructed via journal replay so a restart continues where the
/// previous life stopped.
pub struct Server {
    cfg: ServerConfig,
    exe: PathBuf,
    jobs: Vec<Job>,
    next_id: u64,
    /// Submissions seen this server life (indexes `submit_burst@N`).
    submissions: u64,
    /// Worker launches this server life (indexes `worker_crash@N`).
    launches: u64,
    /// Tokens spent per tenant (rebuilt from the journal on recovery).
    spent: HashMap<String, u64>,
    draining: bool,
    drain_deadline: Option<Instant>,
    started: Instant,
}

/// Replayed journal state for one job.
#[derive(Debug, Default, Clone)]
struct ReplayedJob {
    tenant: String,
    last_event: String,
    attempt: u32,
}

/// Replay `queue.jsonl` text: last event + attempt per job id, in first-
/// submission order. Unparseable (torn) lines are skipped.
fn replay_journal(text: &str) -> Vec<(String, ReplayedJob)> {
    let mut order: Vec<String> = Vec::new();
    let mut map: HashMap<String, ReplayedJob> = HashMap::new();
    for line in text.lines() {
        let Ok(v) = minijson::parse(line) else {
            continue;
        };
        let (Some(event), Some(id)) = (
            v.get("event").and_then(Value::as_str),
            v.get("job").and_then(Value::as_str),
        ) else {
            continue;
        };
        let entry = map.entry(id.to_string()).or_insert_with(|| {
            order.push(id.to_string());
            ReplayedJob::default()
        });
        entry.last_event = event.to_string();
        if let Some(t) = v.get("tenant").and_then(Value::as_str) {
            entry.tenant = t.to_string();
        }
        if let Some(a) = v.get("attempt").and_then(Value::as_u64) {
            entry.attempt = a as u32;
        }
    }
    order
        .into_iter()
        .map(|id| {
            let job = map.remove(&id).unwrap_or_default();
            (id, job)
        })
        .collect()
}

/// Kill a worker process orphaned by a previous server life, if one is
/// still alive on this job (pidfile + `/proc/<pid>/cmdline` identity
/// check so a recycled pid is never killed). Two writers on one ledger
/// would corrupt it, so fencing must complete before a job is resumed.
fn fence_orphan(job_dir: &Path) {
    let Ok(pid_text) = fs::read_to_string(job_dir.join("worker.pid")) else {
        return;
    };
    let Ok(pid) = pid_text.trim().parse::<u32>() else {
        return;
    };
    let cmdline_path = PathBuf::from(format!("/proc/{pid}/cmdline"));
    let Ok(cmdline) = fs::read(&cmdline_path) else {
        let _ = fs::remove_file(job_dir.join("worker.pid"));
        return; // already dead (or no /proc on this platform)
    };
    let cmdline = String::from_utf8_lossy(&cmdline).replace('\0', " ");
    let dir_str = job_dir.to_string_lossy();
    if !(cmdline.contains("--worker") && cmdline.contains(dir_str.as_ref())) {
        let _ = fs::remove_file(job_dir.join("worker.pid"));
        return; // pid recycled by an unrelated process
    }
    let _ = Command::new("kill").arg("-9").arg(pid.to_string()).status();
    for _ in 0..250 {
        if !cmdline_path.exists() {
            break;
        }
        std::thread::sleep(POLL);
    }
    let _ = fs::remove_file(job_dir.join("worker.pid"));
}

impl Server {
    fn journal_path(&self) -> PathBuf {
        self.cfg.data_dir.join("queue.jsonl")
    }

    fn job_dir(&self, id: &str) -> PathBuf {
        self.cfg.data_dir.join("jobs").join(id)
    }

    /// Append one state-transition event to the queue journal. `extra`
    /// values are raw JSON (already rendered).
    fn journal(&self, event: &str, id: &str, extra: &[(&str, String)]) {
        let mut line = format!(
            "{{\"event\":{},\"job\":{}",
            json_string_literal(event),
            json_string_literal(id)
        );
        for (key, value) in extra {
            line.push_str(&format!(",\"{key}\":{value}"));
        }
        line.push('}');
        if let Err(e) = append_line(&self.journal_path(), &line) {
            eprintln!("[amlserve] journal append failed: {e}");
        }
    }

    /// Build a server by replaying the queue journal: fence orphaned
    /// workers, promote jobs whose `result.json` landed while the
    /// previous life was dead, requeue the rest (they resume from their
    /// checkpoints when launched).
    pub fn recover(cfg: ServerConfig, exe: PathBuf) -> std::io::Result<Server> {
        fs::create_dir_all(cfg.data_dir.join("jobs"))?;
        let journal_text = fs::read_to_string(cfg.data_dir.join("queue.jsonl")).unwrap_or_default();
        let mut server = Server {
            cfg,
            exe,
            jobs: Vec::new(),
            next_id: 1,
            submissions: 0,
            launches: 0,
            spent: HashMap::new(),
            draining: false,
            drain_deadline: None,
            started: Instant::now(),
        };
        for (id, replayed) in replay_journal(&journal_text) {
            if let Some(n) = id.strip_prefix('j').and_then(|n| n.parse::<u64>().ok()) {
                server.next_id = server.next_id.max(n + 1);
            }
            let job_dir = server.job_dir(&id);
            let spec = fs::read_to_string(job_dir.join("job.json"))
                .ok()
                .and_then(|t| minijson::parse(&t).ok())
                .and_then(|v| v.get("spec").and_then(|s| JobSpec::from_json(s).ok()));
            let tenant = if replayed.tenant.is_empty() {
                "default".to_string()
            } else {
                replayed.tenant
            };
            let Some(spec) = spec else {
                // Spec lost or corrupt — nothing can run. Journal the
                // terminal state once (idempotent across restarts).
                if !matches!(replayed.last_event.as_str(), "done" | "failed" | "canceled") {
                    server.journal(
                        "failed",
                        &id,
                        &[("reason", "\"job.json missing or corrupt\"".into())],
                    );
                }
                continue;
            };
            *server.spent.entry(tenant.clone()).or_insert(0) += spec.cost();
            let state = match replayed.last_event.as_str() {
                "done" => JobState::Done,
                "failed" => JobState::Failed,
                "canceled" => JobState::Canceled,
                _ => {
                    fence_orphan(&job_dir);
                    let _ = fs::remove_file(job_dir.join("stop"));
                    if job_dir.join("result.json").exists() {
                        // The worker finished while the server was dead.
                        server.journal("done", &id, &[("recovered", "true".into())]);
                        aml_telemetry::counter_add("serve.jobs_done", 1);
                        JobState::Done
                    } else {
                        JobState::Queued
                    }
                }
            };
            server.jobs.push(Job {
                id,
                tenant,
                spec,
                state,
                attempt: replayed.attempt,
                not_before: None,
                child: None,
                started_at: None,
                deadline: None,
                stop_requested: None,
                failure: None,
            });
        }
        Ok(server)
    }

    fn queued_count(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.state == JobState::Queued)
            .count()
    }

    fn running_count(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.state == JobState::Running)
            .count()
    }

    fn tenant_running(&self, tenant: &str) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.state == JobState::Running && j.tenant == tenant)
            .count()
    }

    fn retry_after(&self) -> String {
        (2 + self.queued_count().min(28)).to_string()
    }

    // -----------------------------------------------------------------
    // Scheduler.
    // -----------------------------------------------------------------

    /// One scheduler pass: reap finished workers, kill over-deadline
    /// ones, preempt for starving queued jobs, launch eligible jobs,
    /// publish the queue gauges.
    pub fn tick(&mut self) {
        self.reap_workers();
        self.enforce_timeouts();
        self.maybe_preempt();
        self.launch_eligible();
        aml_telemetry::gauge_set("serve.jobs_queued", self.queued_count() as u64);
        aml_telemetry::gauge_set("serve.jobs_running", self.running_count() as u64);
    }

    fn reap_workers(&mut self) {
        for i in 0..self.jobs.len() {
            if self.jobs[i].state != JobState::Running {
                continue;
            }
            let Some(child) = self.jobs[i].child.as_mut() else {
                continue;
            };
            match child.try_wait() {
                Ok(None) => {}
                Ok(Some(status)) => self.finish_worker(i, status.code()),
                Err(_) => self.finish_worker(i, None),
            }
        }
    }

    fn finish_worker(&mut self, i: usize, code: Option<i32>) {
        let id = self.jobs[i].id.clone();
        let job_dir = self.job_dir(&id);
        let _ = fs::remove_file(job_dir.join("worker.pid"));
        let _ = fs::remove_file(job_dir.join("stop"));
        self.jobs[i].child = None;
        let wall = self.jobs[i]
            .started_at
            .map(|t| t.elapsed())
            .unwrap_or_default();
        self.jobs[i].started_at = None;
        self.jobs[i].deadline = None;
        let stop_kind = self.jobs[i].stop_requested.take();

        if code == Some(0) {
            self.jobs[i].state = JobState::Done;
            self.journal("done", &id, &[]);
            aml_telemetry::counter_add("serve.jobs_done", 1);
            self.append_history(i, wall);
            return;
        }
        if code == Some(STOP_EXIT_CODE) {
            if stop_kind == Some(StopKind::Cancel) {
                self.jobs[i].state = JobState::Canceled;
                self.journal("canceled", &id, &[]);
                aml_telemetry::counter_add("serve.jobs_canceled", 1);
            } else {
                // Preempt (explicit or drain): checkpoint is on disk,
                // back in the queue for this life or the next.
                self.jobs[i].state = JobState::Queued;
                self.journal("preempted", &id, &[]);
                aml_telemetry::counter_add("serve.jobs_preempted", 1);
            }
            return;
        }
        // Crash, SIGKILL, timeout kill, or injected abort.
        if self.draining {
            self.jobs[i].state = JobState::Queued;
            self.journal("preempted", &id, &[]);
            aml_telemetry::counter_add("serve.jobs_preempted", 1);
            return;
        }
        let reason = self.jobs[i].failure.take().unwrap_or_else(|| {
            code.map_or("worker killed by signal".to_string(), |c| {
                format!("worker exited with code {c}")
            })
        });
        if self.jobs[i].attempt < self.cfg.max_retries {
            self.jobs[i].attempt += 1;
            let delay = backoff_delay(self.jobs[i].attempt, self.cfg.retry_base);
            self.jobs[i].not_before = Some(Instant::now() + delay);
            self.jobs[i].state = JobState::Queued;
            self.journal(
                "retried",
                &id,
                &[
                    ("attempt", self.jobs[i].attempt.to_string()),
                    ("delay_ms", delay.as_millis().to_string()),
                    ("reason", json_string_literal(&reason)),
                ],
            );
            aml_telemetry::counter_add("serve.jobs_retried", 1);
        } else {
            self.jobs[i].state = JobState::Failed;
            self.jobs[i].failure = Some(reason.clone());
            self.journal("failed", &id, &[("reason", json_string_literal(&reason))]);
            aml_telemetry::counter_add("serve.jobs_failed", 1);
        }
    }

    /// Append a history record for a completed job from its
    /// `result.json` — the per-job analogue of `--record`.
    fn append_history(&mut self, i: usize, wall: Duration) {
        let id = self.jobs[i].id.clone();
        let result = fs::read_to_string(self.job_dir(&id).join("result.json"))
            .ok()
            .and_then(|t| minijson::parse(&t).ok());
        let get_u64 = |v: &Option<Value>, key: &str| {
            v.as_ref()
                .and_then(|v| v.get(key).and_then(Value::as_u64))
                .unwrap_or(0)
        };
        let get_f64 = |v: &Option<Value>, key: &str| {
            v.as_ref().and_then(|v| v.get(key).and_then(Value::as_f64))
        };
        let record = HistoryRecord {
            workload: self.jobs[i].spec.name.clone(),
            seed: self.jobs[i].spec.seed,
            git: String::new(),
            source: "amlserve".into(),
            wall_time_s: wall.as_secs_f64(),
            top_span_total_s: 0.0,
            peak_rss_bytes: 0,
            alloc_peak_bytes: 0,
            final_acc: get_f64(&result, "final_acc"),
            trials_finished: get_u64(&result, "trials_finished"),
            trials_failed: get_u64(&result, "trials_failed"),
            rounds: get_u64(&result, "rounds"),
            ece: get_f64(&result, "ece"),
        };
        if let Err(e) = record.append(&self.cfg.history_path()) {
            eprintln!("[amlserve] history append failed: {e}");
        }
    }

    fn enforce_timeouts(&mut self) {
        let now = Instant::now();
        for job in &mut self.jobs {
            if job.state == JobState::Running
                && job.deadline.is_some_and(|d| now > d)
                && job.failure.is_none()
            {
                job.failure = Some(format!(
                    "wall-clock timeout after {:?}",
                    job.started_at.map(|t| t.elapsed()).unwrap_or_default()
                ));
                if let Some(child) = job.child.as_mut() {
                    let _ = child.kill(); // reaped as a crash → retry path
                }
            }
        }
    }

    /// When a queued job is eligible but every worker slot is held by a
    /// long run, ask the longest-running job (past `preempt_after`) to
    /// checkpoint and requeue at its next round boundary.
    fn maybe_preempt(&mut self) {
        let Some(after) = self.cfg.preempt_after else {
            return;
        };
        if self.draining || self.running_count() < self.cfg.workers {
            return;
        }
        let now = Instant::now();
        let starving = self.jobs.iter().any(|j| {
            j.state == JobState::Queued
                && j.not_before.is_none_or(|t| now >= t)
                && self.tenant_running(&j.tenant) < self.cfg.tenant_max_running
        });
        if !starving {
            return;
        }
        let victim = self
            .jobs
            .iter_mut()
            .filter(|j| {
                j.state == JobState::Running
                    && j.stop_requested.is_none()
                    && j.started_at.is_some_and(|t| t.elapsed() > after)
            })
            .max_by_key(|j| j.started_at.map(|t| t.elapsed()).unwrap_or_default());
        if let Some(job) = victim {
            let dir = self.cfg.data_dir.join("jobs").join(&job.id);
            if write_atomic(&dir.join("stop"), b"preempt\n").is_ok() {
                job.stop_requested = Some(StopKind::Preempt);
            }
        }
    }

    fn launch_eligible(&mut self) {
        if self.draining {
            return;
        }
        loop {
            if self.running_count() >= self.cfg.workers {
                return;
            }
            let now = Instant::now();
            let Some(i) = self.jobs.iter().position(|j| {
                j.state == JobState::Queued
                    && j.not_before.is_none_or(|t| now >= t)
                    && self.tenant_running(&j.tenant) < self.cfg.tenant_max_running
            }) else {
                return;
            };
            self.launch(i);
        }
    }

    fn launch(&mut self, i: usize) {
        let id = self.jobs[i].id.clone();
        let job_dir = self.job_dir(&id);
        let _ = fs::remove_file(job_dir.join("stop"));
        let crash = self
            .cfg
            .fault_plan
            .as_ref()
            .is_some_and(|p| p.worker_crash_at(self.launches));
        self.launches += 1;

        let mut cmd = Command::new(&self.exe);
        cmd.arg("--worker")
            .arg(&job_dir)
            .stdin(Stdio::null())
            .stdout(Stdio::null());
        match fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(job_dir.join("worker.log"))
        {
            Ok(log) => {
                cmd.stderr(Stdio::from(log));
            }
            Err(_) => {
                cmd.stderr(Stdio::null());
            }
        }
        if crash {
            cmd.arg("--inject-crash");
        }
        match cmd.spawn() {
            Ok(child) => {
                let timeout = self.jobs[i]
                    .spec
                    .timeout_ms
                    .map(Duration::from_millis)
                    .unwrap_or(self.cfg.job_timeout);
                self.journal(
                    "started",
                    &id,
                    &[("attempt", self.jobs[i].attempt.to_string())],
                );
                self.jobs[i].child = Some(child);
                self.jobs[i].state = JobState::Running;
                self.jobs[i].started_at = Some(Instant::now());
                self.jobs[i].deadline = Some(Instant::now() + timeout);
                self.jobs[i].failure = None;
            }
            Err(e) => {
                let reason = format!("cannot spawn worker: {e}");
                self.jobs[i].state = JobState::Failed;
                self.jobs[i].failure = Some(reason.clone());
                self.journal("failed", &id, &[("reason", json_string_literal(&reason))]);
                aml_telemetry::counter_add("serve.jobs_failed", 1);
            }
        }
    }

    /// Drain progress: true when no worker is left running. Past the
    /// grace deadline, running workers are killed (their last
    /// checkpoint stands) and journaled `preempted` via the reap path.
    pub fn drained(&mut self) -> bool {
        if !self.draining {
            return false;
        }
        if self.drain_deadline.is_some_and(|d| Instant::now() > d) {
            for job in &mut self.jobs {
                if let Some(child) = job.child.as_mut() {
                    let _ = child.kill();
                }
            }
            self.reap_workers();
        }
        self.running_count() == 0
    }

    // -----------------------------------------------------------------
    // HTTP plane.
    // -----------------------------------------------------------------

    /// Serve one connection (one request, `Connection: close`).
    pub fn handle_connection(&mut self, mut stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        let req = match read_request(&mut stream, MAX_SUBMIT_BODY) {
            Ok(req) => req,
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                let resp = Response::error("400 Bad Request", &e.to_string());
                let _ = write_response(
                    &mut stream,
                    resp.status,
                    resp.content_type,
                    &[],
                    resp.body.as_bytes(),
                );
                return;
            }
            Err(_) => return,
        };
        let resp = self.route(&req);
        let extra: Vec<(&str, String)> =
            resp.headers.iter().map(|(k, v)| (*k, v.clone())).collect();
        let _ = write_response(
            &mut stream,
            resp.status,
            resp.content_type,
            &extra,
            resp.body.as_bytes(),
        );
    }

    fn route(&mut self, req: &HttpRequest) -> Response {
        let path = req.path.as_str();
        match (req.method.as_str(), path) {
            ("POST", "/submit") => self.submit(req),
            ("POST", "/shutdown") => self.shutdown(),
            ("GET", "/jobs") => Response::json("200 OK", self.jobs_json()),
            ("GET", "/metrics") => Response {
                status: "200 OK",
                content_type: "text/plain; version=0.0.4; charset=utf-8",
                headers: Vec::new(),
                body: render_prometheus(&aml_telemetry::global().snapshot()),
            },
            ("GET", "/healthz") => Response::json("200 OK", self.healthz_json()),
            ("GET", "/history") => Response::json(
                "200 OK",
                render_history_json(&self.cfg.history_path(), req.query.as_deref()),
            ),
            ("GET", "/dashboard") => Response {
                status: "200 OK",
                content_type: "text/html; charset=utf-8",
                headers: Vec::new(),
                body: dashboard_html().to_string(),
            },
            ("GET", _) if path.starts_with("/jobs/") => {
                self.job_detail(&path["/jobs/".len()..], req.query.as_deref())
            }
            ("DELETE", _) if path.starts_with("/jobs/") => self.cancel(&path["/jobs/".len()..]),
            _ => Response::error(
                "404 Not Found",
                "try POST /submit, GET /jobs, GET /jobs/<id>, DELETE /jobs/<id>, \
                 /metrics, /healthz, /history, /dashboard, POST /shutdown",
            ),
        }
    }

    fn submit(&mut self, req: &HttpRequest) -> Response {
        if self.draining {
            return Response::error("503 Service Unavailable", "server is draining");
        }
        let submission = self.submissions;
        self.submissions += 1;
        let reject = |server: &Server, why: &str| {
            aml_telemetry::counter_add("serve.jobs_rejected", 1);
            let mut resp = Response::error("429 Too Many Requests", why);
            resp.headers.push(("Retry-After", server.retry_after()));
            resp
        };
        if self
            .cfg
            .fault_plan
            .as_ref()
            .is_some_and(|p| p.submit_burst_at(submission))
        {
            return reject(self, "injected submit_burst: queue treated as full");
        }
        let body = String::from_utf8_lossy(&req.body).into_owned();
        let parsed = match minijson::parse(if body.trim().is_empty() { "{}" } else { &body }) {
            Ok(v) => v,
            Err(e) => return Response::error("400 Bad Request", &format!("body: {e}")),
        };
        let spec = match JobSpec::from_json(&parsed) {
            Ok(s) => s,
            Err(e) => return Response::error("400 Bad Request", &e),
        };
        if self.queued_count() >= self.cfg.queue_cap {
            return reject(self, "queue full");
        }
        let tenant = req
            .header("x-tenant")
            .map(str::to_string)
            .or_else(|| {
                parsed
                    .get("tenant")
                    .and_then(Value::as_str)
                    .map(str::to_string)
            })
            .unwrap_or_else(|| "default".to_string());
        let spent = self.spent.get(&tenant).copied().unwrap_or(0);
        if spent + spec.cost() > self.cfg.tenant_budget {
            return reject(
                self,
                &format!(
                    "tenant '{tenant}' token budget exhausted ({spent}/{} spent, job costs {})",
                    self.cfg.tenant_budget,
                    spec.cost()
                ),
            );
        }

        let id = format!("j{:06}", self.next_id);
        self.next_id += 1;
        let job_dir = self.job_dir(&id);
        if let Err(e) = fs::create_dir_all(&job_dir) {
            return Response::error("500 Internal Server Error", &e.to_string());
        }
        if let Some(csv_text) = parsed.get("csv").and_then(Value::as_str) {
            if let Err(e) = write_atomic(&job_dir.join("dataset.csv"), csv_text.as_bytes()) {
                return Response::error("500 Internal Server Error", &e.to_string());
            }
        }
        let job_json = format!(
            "{{\"id\":{},\"tenant\":{},\"spec\":{}}}",
            json_string_literal(&id),
            json_string_literal(&tenant),
            spec.to_json()
        );
        if let Err(e) = write_atomic(&job_dir.join("job.json"), job_json.as_bytes()) {
            return Response::error("500 Internal Server Error", &e.to_string());
        }
        self.journal(
            "submitted",
            &id,
            &[
                ("tenant", json_string_literal(&tenant)),
                ("cost", spec.cost().to_string()),
            ],
        );
        *self.spent.entry(tenant.clone()).or_insert(0) += spec.cost();
        aml_telemetry::counter_add("serve.jobs_submitted", 1);
        self.jobs.push(Job {
            id: id.clone(),
            tenant,
            spec,
            state: JobState::Queued,
            attempt: 0,
            not_before: None,
            child: None,
            started_at: None,
            deadline: None,
            stop_requested: None,
            failure: None,
        });
        Response::json(
            "202 Accepted",
            format!(
                "{{\"job\":{},\"state\":\"queued\"}}\n",
                json_string_literal(&id)
            ),
        )
    }

    fn cancel(&mut self, id: &str) -> Response {
        let Some(i) = self.jobs.iter().position(|j| j.id == id) else {
            return Response::error("404 Not Found", "no such job");
        };
        match self.jobs[i].state {
            JobState::Queued => {
                self.jobs[i].state = JobState::Canceled;
                let id = self.jobs[i].id.clone();
                self.journal("canceled", &id, &[]);
                aml_telemetry::counter_add("serve.jobs_canceled", 1);
                Response::json("200 OK", "{\"state\":\"canceled\"}\n".into())
            }
            JobState::Running => {
                let dir = self.job_dir(id);
                if let Err(e) = write_atomic(&dir.join("stop"), b"cancel\n") {
                    return Response::error("500 Internal Server Error", &e.to_string());
                }
                self.jobs[i].stop_requested = Some(StopKind::Cancel);
                Response::json("200 OK", "{\"state\":\"cancel_requested\"}\n".into())
            }
            state => Response::error("409 Conflict", &format!("job already {}", state.as_str())),
        }
    }

    fn shutdown(&mut self) -> Response {
        self.draining = true;
        self.drain_deadline = Some(Instant::now() + self.cfg.drain_grace);
        let mut asked = 0usize;
        for job in &mut self.jobs {
            if job.state == JobState::Running && job.stop_requested.is_none() {
                let dir = self.cfg.data_dir.join("jobs").join(&job.id);
                if write_atomic(&dir.join("stop"), b"preempt\n").is_ok() {
                    job.stop_requested = Some(StopKind::Preempt);
                    asked += 1;
                }
            }
        }
        Response::json(
            "200 OK",
            format!("{{\"status\":\"draining\",\"stopping\":{asked}}}\n"),
        )
    }

    fn jobs_json(&self) -> String {
        let rows: Vec<String> = self
            .jobs
            .iter()
            .map(|j| {
                format!(
                    "{{\"id\":{},\"name\":{},\"tenant\":{},\"state\":\"{}\",\"attempt\":{}}}",
                    json_string_literal(&j.id),
                    json_string_literal(&j.spec.name),
                    json_string_literal(&j.tenant),
                    j.state.as_str(),
                    j.attempt
                )
            })
            .collect();
        format!(
            "{{\"jobs\":[{}],\"queued\":{},\"running\":{},\"draining\":{}}}\n",
            rows.join(","),
            self.queued_count(),
            self.running_count(),
            self.draining
        )
    }

    fn job_detail(&self, id: &str, query: Option<&str>) -> Response {
        let Some(job) = self.jobs.iter().find(|j| j.id == id) else {
            return Response::error("404 Not Found", "no such job");
        };
        let job_dir = self.job_dir(id);
        let tail = query
            .and_then(|q| {
                q.split('&')
                    .find_map(|pair| pair.strip_prefix("tail=")?.parse::<usize>().ok())
            })
            .unwrap_or(JOB_EVENT_TAIL)
            .clamp(1, 64);
        let events: Vec<String> = fs::read_to_string(job_dir.join("ledger.jsonl"))
            .map(|t| {
                let lines: Vec<&str> = t
                    .lines()
                    .filter(|l| l.starts_with('{') && l.ends_with('}'))
                    .collect();
                lines
                    .iter()
                    .skip(lines.len().saturating_sub(tail))
                    .map(|l| l.to_string())
                    .collect()
            })
            .unwrap_or_default();
        let result = fs::read_to_string(job_dir.join("result.json"))
            .ok()
            .filter(|t| minijson::parse(t).is_ok())
            .unwrap_or_else(|| "null".to_string());
        Response::json(
            "200 OK",
            format!(
                "{{\"id\":{},\"name\":{},\"tenant\":{},\"state\":\"{}\",\"attempt\":{},\
                 \"failure\":{},\"checkpoint\":{},\"events\":[{}],\"result\":{}}}\n",
                json_string_literal(&job.id),
                json_string_literal(&job.spec.name),
                json_string_literal(&job.tenant),
                job.state.as_str(),
                job.attempt,
                job.failure
                    .as_deref()
                    .map_or("null".to_string(), json_string_literal),
                job_dir.join("run.ckpt").exists(),
                events.join(","),
                result.trim(),
            ),
        )
    }

    fn healthz_json(&self) -> String {
        format!(
            "{{\"status\":\"ok\",\"workload\":\"amlserve\",\"seed\":0,\"phase\":\"serving\",\
             \"uptime_s\":{:.3},\"queued\":{},\"running\":{},\"draining\":{}}}\n",
            self.started.elapsed().as_secs_f64(),
            self.queued_count(),
            self.running_count(),
            self.draining
        )
    }
}

/// Bind, recover, and serve until a graceful shutdown completes. The
/// bound address is written to `<data_dir>/serve.addr` (tmp + rename),
/// so scripts using port 0 can discover it.
pub fn run_server(cfg: ServerConfig) -> std::io::Result<()> {
    fs::create_dir_all(cfg.data_dir.join("jobs"))?;
    aml_telemetry::set_level(aml_telemetry::TelemetryLevel::Summary);
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let bound = listener.local_addr()?;
    write_atomic(
        &cfg.data_dir.join("serve.addr"),
        format!("{bound}\n").as_bytes(),
    )?;
    let exe = std::env::current_exe()?;
    let mut server = Server::recover(cfg, exe)?;
    eprintln!(
        "[amlserve] listening on http://{bound} ({} job(s) recovered, {} requeued)",
        server.jobs.len(),
        server.queued_count(),
    );
    loop {
        match listener.accept() {
            Ok((stream, _)) => server.handle_connection(stream),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
        server.tick();
        if server.draining && server.drained() {
            break;
        }
    }
    eprintln!("[amlserve] drained, exiting");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_defaults_and_round_trip() {
        let spec = JobSpec::from_json(&minijson::parse("{}").unwrap()).unwrap();
        assert_eq!(spec.name, "job");
        assert_eq!(spec.seed, 21);
        assert_eq!(spec.rounds, vec![Strategy::NoFeedback, Strategy::Uniform]);
        assert_eq!(
            spec.dataset,
            DatasetSpec::TwoMoons {
                n: 240,
                noise: 0.25,
                seed: 9
            }
        );
        assert_eq!(spec.cost(), 2);
        let reparsed = JobSpec::from_json(&minijson::parse(&spec.to_json()).unwrap()).unwrap();
        assert_eq!(reparsed, spec);
    }

    #[test]
    fn spec_parses_explicit_fields_and_rejects_bad_ones() {
        let spec = JobSpec::from_json(
            &minijson::parse(
                "{\"name\":\"x\",\"seed\":7,\"dataset\":{\"kind\":\"xor\",\"n\":100,\"flip\":0.1,\
                 \"seed\":3},\"rounds\":[\"Uniform\",\"QBC\"],\"round_sleep_ms\":250,\
                 \"timeout_ms\":9000}",
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(spec.name, "x");
        assert_eq!(spec.rounds, vec![Strategy::Uniform, Strategy::Qbc]);
        assert_eq!(spec.round_sleep_ms, 250);
        assert_eq!(spec.timeout_ms, Some(9000));
        assert!(matches!(spec.dataset, DatasetSpec::Xor { n: 100, .. }));

        let err =
            JobSpec::from_json(&minijson::parse("{\"rounds\":[\"Nope\"]}").unwrap()).unwrap_err();
        assert!(err.contains("unknown strategy 'Nope'"), "{err}");
        let err =
            JobSpec::from_json(&minijson::parse("{\"dataset\":{\"kind\":\"parquet\"}}").unwrap())
                .unwrap_err();
        assert!(err.contains("unknown dataset.kind"), "{err}");
        let err = JobSpec::from_json(&minijson::parse("{\"rounds\":[]}").unwrap()).unwrap_err();
        assert!(err.contains("must not be empty"), "{err}");
    }

    #[test]
    fn csv_submissions_default_to_csv_dataset() {
        let spec = JobSpec::from_json(
            &minijson::parse("{\"csv\":\"f0,f1,label\\n0.1,0.2,0\\n\"}").unwrap(),
        )
        .unwrap();
        assert_eq!(spec.dataset, DatasetSpec::Csv);
    }

    #[test]
    fn strategy_names_cover_all_twelve() {
        for s in Strategy::ALL {
            assert_eq!(strategy_by_name(s.name()), Some(s));
        }
        assert_eq!(strategy_by_name("nope"), None);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let base = Duration::from_millis(500);
        assert_eq!(backoff_delay(1, base), Duration::from_millis(500));
        assert_eq!(backoff_delay(2, base), Duration::from_millis(1000));
        assert_eq!(backoff_delay(3, base), Duration::from_millis(2000));
        assert_eq!(backoff_delay(30, base), Duration::from_secs(30));
    }

    #[test]
    fn journal_replay_keeps_last_event_and_order() {
        let text = "\
{\"event\":\"submitted\",\"job\":\"j000001\",\"tenant\":\"alice\",\"cost\":2}\n\
{\"event\":\"submitted\",\"job\":\"j000002\",\"tenant\":\"bob\",\"cost\":4}\n\
{\"event\":\"started\",\"job\":\"j000001\",\"attempt\":0}\n\
{\"event\":\"retried\",\"job\":\"j000001\",\"attempt\":1,\"delay_ms\":500}\n\
{\"event\":\"done\",\"job\":\"j000002\"}\n\
{\"event\":\"torn-li";
        let replayed = replay_journal(text);
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[0].0, "j000001");
        assert_eq!(replayed[0].1.last_event, "retried");
        assert_eq!(replayed[0].1.attempt, 1);
        assert_eq!(replayed[0].1.tenant, "alice");
        assert_eq!(replayed[1].0, "j000002");
        assert_eq!(replayed[1].1.last_event, "done");
    }

    #[test]
    fn write_atomic_replaces_whole_files() {
        let dir = std::env::temp_dir().join(format!("amlserve_atomic_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("job.json");
        write_atomic(&path, b"{\"v\":1}").unwrap();
        write_atomic(&path, b"{\"v\":2}").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"v\":2}");
        assert!(!path.with_extension("tmp").exists());
        fs::remove_dir_all(&dir).ok();
    }
}
