//! `amlreport`: one self-contained HTML page summarizing a run.
//!
//! Input is the machine-readable exhaust the harness already produces —
//! experiment ledgers (`ledger.jsonl`, see `aml_telemetry::ledger`) and
//! perf records (`BENCH_<workload>.json`, see [`crate::report`]) — and
//! output is a single HTML file with inline CSS and inline SVG charts:
//! no scripts, no external assets, no network references, so the file
//! can be attached to a CI run or mailed around and still render.
//!
//! Sections:
//!
//! 1. **Runs** — one overview row per ledger (workload, seed, git,
//!    trial/round/curve counts).
//! 2. **Search** — per ledger: a trial-score scatter colored by model
//!    family plus a per-family table (trials, best score, mean fit time
//!    joined from the BENCH `automl.fit_us[<family>]` histograms).
//! 3. **Ensembles** — the final ensemble composition of each run.
//! 4. **Feedback rounds** — accuracy-vs-round polylines per strategy
//!    with the min..max band shaded.
//! 5. **ALE bands** — the suggested-region evidence: mean±std band per
//!    feature with the suggested intervals shaded.
//! 6. **Perf** — wall time, top spans, allocations and dropped-event
//!    counts from the BENCH records.
//! 7. **Critical path** — per `crit.json` artifact (`--crit-out`): the
//!    causal chain chart from [`crate::critview`] plus the Amdahl
//!    speedup ceiling and dominant phase.
//!
//! Parsing uses [`crate::minijson`]; unknown ledger event types are
//! skipped so the report stays forward compatible with additive schema
//! changes (the ledger versioning contract).
//!
//! [`render_compare_html`] (the bin's `--compare A.jsonl B.jsonl` mode)
//! renders a cross-run diff instead: per-round accuracy deltas per
//! shared strategy, ensemble composition changes by family, and
//! region-suggestion drift per feature — same primitives, same
//! self-containment contract.

use crate::minijson::{self, Value};
use crate::report::BenchReport;
use aml_telemetry::{CritReport, QualityReport, SearchReport, LEDGER_SCHEMA_VERSION};
use std::collections::BTreeMap;
use std::fmt::Write as _;

// ------------------------------------------------------------- ledger data

/// A `trial_finished` line.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialScore {
    /// Stable trial id (sampling index).
    pub trial: u64,
    /// Successive-halving rung.
    pub rung: u64,
    /// Model family name.
    pub family: String,
    /// Validation accuracy at the rung.
    pub score: f64,
}

/// An `ensemble_selected` line.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleRecord {
    /// Ensemble validation score.
    pub val_score: f64,
    /// `(trial, family, weight, score)` per member.
    pub members: Vec<(u64, String, f64, f64)>,
}

/// A `round_completed` line.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// Process-wide round sequence number.
    pub round: u64,
    /// Strategy name.
    pub strategy: String,
    /// Mean / min / max accuracy across the round's test sets.
    pub acc_mean: f64,
    /// Minimum accuracy.
    pub acc_min: f64,
    /// Maximum accuracy.
    pub acc_max: f64,
    /// Labeled points added this round.
    pub points_added: u64,
    /// Suggested intervals this round.
    pub regions: u64,
}

/// A `region_suggested` line: the ALE mean±std band and the intervals
/// derived from it.
#[derive(Debug, Clone, PartialEq)]
pub struct BandRecord {
    /// Feature index.
    pub feature: u64,
    /// Feature name.
    pub name: String,
    /// Uncertainty threshold.
    pub threshold: f64,
    /// Suggested `[lo, hi]` intervals.
    pub intervals: Vec<(f64, f64)>,
    /// Grid cell centers.
    pub grid: Vec<f64>,
    /// Cross-model mean ALE per cell.
    pub mean: Vec<f64>,
    /// Cross-model std per cell.
    pub std: Vec<f64>,
}

/// One parsed `ledger.jsonl`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LedgerData {
    /// Run id from the header line.
    pub run_id: String,
    /// Workload name.
    pub workload: String,
    /// Master seed.
    pub seed: u64,
    /// Build git describe.
    pub git: String,
    /// `trial_started` count.
    pub started: u64,
    /// `trial_finished` lines.
    pub finished: Vec<TrialScore>,
    /// `(trial, rung, family, reason)` of `trial_failed` lines. The
    /// reason is one of `error` / `panic` / `timeout` / `nonfinite`
    /// (older ledgers without the field read as `error`).
    pub failed: Vec<(u64, u64, String, String)>,
    /// `ensemble_selected` lines in order.
    pub ensembles: Vec<EnsembleRecord>,
    /// `round_completed` lines in order.
    pub rounds: Vec<RoundRecord>,
    /// `region_suggested` lines in order.
    pub bands: Vec<BandRecord>,
    /// `(feature, model, method, grid_points, rows)` of `ale_curve` lines.
    pub curves: Vec<(u64, String, String, u64, u64)>,
}

fn str_field(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field '{key}'"))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-integer field '{key}'"))
}

/// Numeric field; a JSON `null` (the ledger encoding of a non-finite
/// float) reads back as NaN.
fn f64_field(v: &Value, key: &str) -> Result<f64, String> {
    match v.get(key) {
        Some(Value::Null) => Ok(f64::NAN),
        Some(n) => n
            .as_f64()
            .ok_or_else(|| format!("non-numeric field '{key}'")),
        None => Err(format!("missing field '{key}'")),
    }
}

fn f64_item(v: &Value) -> Option<f64> {
    match v {
        Value::Null => Some(f64::NAN),
        other => other.as_f64(),
    }
}

fn f64_array(v: &Value, key: &str) -> Result<Vec<f64>, String> {
    v.get(key)
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("missing or non-array field '{key}'"))?
        .iter()
        .map(|item| f64_item(item).ok_or_else(|| format!("non-numeric item in '{key}'")))
        .collect()
}

/// Parse the text of one `ledger.jsonl` file. The first line must be a
/// `{"type":"ledger", ...}` header with a supported schema version;
/// unknown event types on later lines are skipped (additive schema
/// changes don't bump the version).
pub fn parse_ledger(text: &str) -> Result<LedgerData, String> {
    let mut lines = text.lines().enumerate();
    let (_, header_line) = lines.next().ok_or("empty ledger file")?;
    let header = minijson::parse(header_line).map_err(|e| format!("line 1: {e}"))?;
    if str_field(&header, "type")? != "ledger" {
        return Err("line 1: not a ledger header".into());
    }
    let version = u64_field(&header, "schema_version")?;
    if version != LEDGER_SCHEMA_VERSION {
        return Err(format!(
            "unsupported ledger schema_version {version} (expected {LEDGER_SCHEMA_VERSION})"
        ));
    }
    let mut data = LedgerData {
        run_id: str_field(&header, "run_id")?,
        workload: str_field(&header, "workload")?,
        seed: u64_field(&header, "seed")?,
        git: str_field(&header, "git")?,
        ..LedgerData::default()
    };
    for (idx, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let v = minijson::parse(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        let event = str_field(&v, "type").map_err(|e| format!("line {}: {e}", idx + 1))?;
        let parsed: Result<(), String> = (|| {
            match event.as_str() {
                "trial_started" => data.started += 1,
                "trial_finished" => data.finished.push(TrialScore {
                    trial: u64_field(&v, "trial")?,
                    rung: u64_field(&v, "rung")?,
                    family: str_field(&v, "family")?,
                    score: f64_field(&v, "score")?,
                }),
                "trial_failed" => data.failed.push((
                    u64_field(&v, "trial")?,
                    u64_field(&v, "rung")?,
                    str_field(&v, "family")?,
                    str_field(&v, "reason").unwrap_or_else(|_| "error".into()),
                )),
                "ensemble_selected" => {
                    let members = v
                        .get("members")
                        .and_then(Value::as_arr)
                        .ok_or("missing or non-array field 'members'")?
                        .iter()
                        .map(|m| {
                            Ok((
                                u64_field(m, "trial")?,
                                str_field(m, "family")?,
                                f64_field(m, "weight")?,
                                f64_field(m, "score")?,
                            ))
                        })
                        .collect::<Result<Vec<_>, String>>()?;
                    data.ensembles.push(EnsembleRecord {
                        val_score: f64_field(&v, "val_score")?,
                        members,
                    });
                }
                "round_completed" => data.rounds.push(RoundRecord {
                    round: u64_field(&v, "round")?,
                    strategy: str_field(&v, "strategy")?,
                    acc_mean: f64_field(&v, "acc_mean")?,
                    acc_min: f64_field(&v, "acc_min")?,
                    acc_max: f64_field(&v, "acc_max")?,
                    points_added: u64_field(&v, "points_added")?,
                    regions: u64_field(&v, "regions")?,
                }),
                "region_suggested" => {
                    let intervals = v
                        .get("intervals")
                        .and_then(Value::as_arr)
                        .ok_or("missing or non-array field 'intervals'")?
                        .iter()
                        .map(|pair| {
                            let pair = pair.as_arr().filter(|p| p.len() == 2);
                            match pair {
                                Some([lo, hi]) => match (f64_item(lo), f64_item(hi)) {
                                    (Some(lo), Some(hi)) => Ok((lo, hi)),
                                    _ => Err("non-numeric interval bound".to_string()),
                                },
                                _ => Err("interval is not a [lo, hi] pair".to_string()),
                            }
                        })
                        .collect::<Result<Vec<_>, String>>()?;
                    data.bands.push(BandRecord {
                        feature: u64_field(&v, "feature")?,
                        name: str_field(&v, "name")?,
                        threshold: f64_field(&v, "threshold")?,
                        intervals,
                        grid: f64_array(&v, "grid")?,
                        mean: f64_array(&v, "mean")?,
                        std: f64_array(&v, "std")?,
                    });
                }
                "ale_curve" => data.curves.push((
                    u64_field(&v, "feature")?,
                    str_field(&v, "model")?,
                    str_field(&v, "method")?,
                    u64_field(&v, "grid_points")?,
                    u64_field(&v, "rows")?,
                )),
                _ => {} // forward compatible: skip unknown event types
            }
            Ok(())
        })();
        parsed.map_err(|e| format!("line {}: {e}", idx + 1))?;
    }
    Ok(data)
}

// ------------------------------------------------------------- svg helpers

/// Categorical palette for family / strategy series.
const PALETTE: [&str; 8] = [
    "#2f6fb4", "#d9822b", "#3d9970", "#c44e52", "#8172b3", "#937860", "#d670ad", "#64707c",
];

fn color(i: usize) -> &'static str {
    PALETTE[i % PALETTE.len()]
}

/// A plot frame: pixel size, margins, and data ranges. Maps data
/// coordinates to pixel coordinates (y inverted).
struct Frame {
    w: f64,
    h: f64,
    ml: f64,
    mr: f64,
    mt: f64,
    mb: f64,
    x0: f64,
    x1: f64,
    y0: f64,
    y1: f64,
}

impl Frame {
    fn new(xs: impl Iterator<Item = f64>, ys: impl Iterator<Item = f64>) -> Frame {
        let mut x0 = f64::INFINITY;
        let mut x1 = f64::NEG_INFINITY;
        let mut y0 = f64::INFINITY;
        let mut y1 = f64::NEG_INFINITY;
        for x in xs.filter(|v| v.is_finite()) {
            x0 = x0.min(x);
            x1 = x1.max(x);
        }
        for y in ys.filter(|v| v.is_finite()) {
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        if !x0.is_finite() || !x1.is_finite() {
            (x0, x1) = (0.0, 1.0);
        }
        if !y0.is_finite() || !y1.is_finite() {
            (y0, y1) = (0.0, 1.0);
        }
        if x1 - x0 < 1e-12 {
            (x0, x1) = (x0 - 0.5, x1 + 0.5);
        }
        if y1 - y0 < 1e-12 {
            (y0, y1) = (y0 - 0.5, y1 + 0.5);
        }
        // A little vertical headroom so markers don't sit on the border.
        let pad = (y1 - y0) * 0.05;
        Frame {
            w: 480.0,
            h: 240.0,
            ml: 52.0,
            mr: 12.0,
            mt: 10.0,
            mb: 28.0,
            x0,
            x1,
            y0: y0 - pad,
            y1: y1 + pad,
        }
    }

    fn x(&self, v: f64) -> f64 {
        self.ml + (v - self.x0) / (self.x1 - self.x0) * (self.w - self.ml - self.mr)
    }

    fn y(&self, v: f64) -> f64 {
        self.h - self.mb - (v - self.y0) / (self.y1 - self.y0) * (self.h - self.mt - self.mb)
    }

    fn open(&self, out: &mut String) {
        let _ = write!(
            out,
            "<svg viewBox=\"0 0 {} {}\" class=\"chart\">",
            self.w, self.h
        );
        // Axes with min/max labels.
        let _ = write!(
            out,
            "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" class=\"axis\"/>\
             <line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" class=\"axis\"/>",
            px(self.ml),
            px(self.mt),
            px(self.ml),
            px(self.h - self.mb),
            px(self.ml),
            px(self.h - self.mb),
            px(self.w - self.mr),
            px(self.h - self.mb),
        );
        let _ = write!(
            out,
            "<text x=\"{}\" y=\"{}\" class=\"tick\">{}</text>\
             <text x=\"{}\" y=\"{}\" class=\"tick\">{}</text>\
             <text x=\"{}\" y=\"{}\" class=\"tick tx\">{}</text>\
             <text x=\"{}\" y=\"{}\" class=\"tick tx te\">{}</text>",
            px(self.ml - 4.0),
            px(self.h - self.mb),
            sig(self.y0),
            px(self.ml - 4.0),
            px(self.mt + 8.0),
            sig(self.y1),
            px(self.ml),
            px(self.h - self.mb + 14.0),
            sig(self.x0),
            px(self.w - self.mr),
            px(self.h - self.mb + 14.0),
            sig(self.x1),
        );
    }
}

/// Pixel coordinate with one decimal (keeps the SVG small).
fn px(v: f64) -> String {
    format!("{:.1}", v)
}

/// Short human-readable tick label.
fn sig(v: f64) -> String {
    if !v.is_finite() {
        return "?".into();
    }
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if a >= 1000.0 {
        format!("{v:.0}")
    } else if a >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

fn polyline(out: &mut String, pts: &[(f64, f64)], stroke: &str, extra: &str) {
    if pts.is_empty() {
        return;
    }
    let coords: Vec<String> = pts
        .iter()
        .map(|(x, y)| format!("{},{}", px(*x), px(*y)))
        .collect();
    let _ = write!(
        out,
        "<polyline points=\"{}\" fill=\"none\" stroke=\"{}\" {extra}/>",
        coords.join(" "),
        stroke
    );
}

fn polygon(out: &mut String, pts: &[(f64, f64)], fill: &str) {
    if pts.len() < 3 {
        return;
    }
    let coords: Vec<String> = pts
        .iter()
        .map(|(x, y)| format!("{},{}", px(*x), px(*y)))
        .collect();
    let _ = write!(
        out,
        "<polygon points=\"{}\" fill=\"{}\" fill-opacity=\"0.18\" stroke=\"none\"/>",
        coords.join(" "),
        fill
    );
}

fn legend(out: &mut String, names: &[String]) {
    out.push_str("<p class=\"legend\">");
    for (i, name) in names.iter().enumerate() {
        let _ = write!(
            out,
            "<span style=\"color:{}\">&#9632; {}</span> ",
            color(i),
            esc(name)
        );
    }
    out.push_str("</p>");
}

// ------------------------------------------------------------------- html

pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

const STYLE: &str = "\
body{font-family:system-ui,sans-serif;margin:24px auto;max-width:980px;color:#1c2733;}\
h1{font-size:1.4em;border-bottom:2px solid #2f6fb4;padding-bottom:4px;}\
h2{font-size:1.15em;margin-top:1.6em;border-bottom:1px solid #d5dbe0;padding-bottom:2px;}\
h3{font-size:1em;margin-bottom:4px;}\
table{border-collapse:collapse;margin:8px 0;font-size:0.88em;}\
th,td{border:1px solid #c8d0d8;padding:3px 8px;text-align:right;}\
th{background:#eef2f5;}\
td:first-child,th:first-child{text-align:left;}\
svg.chart{background:#fbfcfd;border:1px solid #d5dbe0;max-width:480px;display:block;margin:6px 0;}\
svg .axis{stroke:#5c6a76;stroke-width:1;}\
svg .tick{font-size:9px;fill:#5c6a76;text-anchor:end;}\
svg .tick.tx{text-anchor:start;}\
svg .tick.te{text-anchor:end;}\
p.legend{font-size:0.85em;margin:2px 0 10px;}\
p.note{color:#5c6a76;font-size:0.85em;}\
";

fn fmt_u64(v: u64) -> String {
    v.to_string()
}

fn fmt_bytes(v: u64) -> String {
    if v >= 1 << 20 {
        format!("{:.1} MiB", v as f64 / (1u64 << 20) as f64)
    } else if v >= 1 << 10 {
        format!("{:.1} KiB", v as f64 / 1024.0)
    } else {
        format!("{v} B")
    }
}

/// Distinct values in encounter order.
fn uniques<'a>(it: impl Iterator<Item = &'a str>) -> Vec<String> {
    let mut seen = Vec::new();
    for v in it {
        if !seen.iter().any(|s: &String| s == v) {
            seen.push(v.to_string());
        }
    }
    seen
}

fn section_runs(out: &mut String, ledgers: &[LedgerData]) {
    out.push_str("<h2>Runs</h2>");
    if ledgers.is_empty() {
        out.push_str("<p class=\"note\">No ledgers given.</p>");
        return;
    }
    out.push_str(
        "<table><tr><th>run</th><th>workload</th><th>seed</th><th>git</th>\
         <th>trials</th><th>finished</th><th>failed</th><th>rounds</th>\
         <th>regions</th><th>curves</th></tr>",
    );
    for l in ledgers {
        let _ = write!(
            out,
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
             <td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
            esc(&l.run_id),
            esc(&l.workload),
            l.seed,
            esc(&l.git),
            l.started,
            l.finished.len(),
            l.failed.len(),
            l.rounds.len(),
            l.bands.len(),
            l.curves.len(),
        );
    }
    out.push_str("</table>");
}

/// Mean fit time (ms) of a family, joined from `automl.fit_us[<family>]`
/// histograms across the BENCH records (count-weighted).
fn family_fit_ms(benches: &[BenchReport], family: &str) -> Option<f64> {
    let key = format!("automl.fit_us[{family}]");
    let mut total = 0.0;
    let mut count = 0u64;
    for b in benches {
        for h in &b.histograms {
            if h.name == key && h.count > 0 {
                total += (h.mean * h.count) as f64;
                count += h.count;
            }
        }
    }
    (count > 0).then(|| total / count as f64 / 1e3)
}

fn section_search(out: &mut String, ledgers: &[LedgerData], benches: &[BenchReport]) {
    out.push_str("<h2>Search</h2>");
    let mut plotted = false;
    for l in ledgers {
        if l.finished.is_empty() && l.failed.is_empty() {
            continue;
        }
        plotted = true;
        let _ = write!(out, "<h3>{} — {}</h3>", esc(&l.workload), esc(&l.run_id));
        let families = uniques(l.finished.iter().map(|t| t.family.as_str()));
        let frame = Frame::new(
            l.finished.iter().map(|t| t.trial as f64),
            l.finished.iter().map(|t| t.score),
        );
        frame.open(out);
        for t in &l.finished {
            if !t.score.is_finite() {
                continue;
            }
            let fi = families.iter().position(|f| f == &t.family).unwrap_or(0);
            // Higher rungs get larger markers: the survivors stand out.
            let _ = write!(
                out,
                "<circle cx=\"{}\" cy=\"{}\" r=\"{}\" fill=\"{}\" fill-opacity=\"0.75\"/>",
                px(frame.x(t.trial as f64)),
                px(frame.y(t.score)),
                px(2.0 + t.rung as f64),
                color(fi),
            );
        }
        out.push_str("</svg>");
        legend(out, &families);
        out.push_str(
            "<table><tr><th>family</th><th>trials</th><th>best score</th>\
             <th>mean score</th><th>mean fit (ms)</th></tr>",
        );
        for (fi, family) in families.iter().enumerate() {
            let scores: Vec<f64> = l
                .finished
                .iter()
                .filter(|t| &t.family == family && t.score.is_finite())
                .map(|t| t.score)
                .collect();
            let best = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mean = scores.iter().sum::<f64>() / scores.len().max(1) as f64;
            let fit = family_fit_ms(benches, family)
                .map(|ms| format!("{ms:.2}"))
                .unwrap_or_else(|| "—".into());
            let _ = write!(
                out,
                "<tr><td style=\"color:{}\">{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
                color(fi),
                esc(family),
                scores.len(),
                sig(best),
                sig(mean),
                fit,
            );
        }
        out.push_str("</table>");
        if !l.failed.is_empty() {
            let mut by_reason: BTreeMap<&str, usize> = BTreeMap::new();
            for (_, _, _, reason) in &l.failed {
                *by_reason.entry(reason.as_str()).or_default() += 1;
            }
            let breakdown = by_reason
                .iter()
                .map(|(r, n)| format!("{}: {n}", esc(r)))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = write!(
                out,
                "<p class=\"note\">{} trial(s) failed ({breakdown}).</p>",
                l.failed.len()
            );
        }
    }
    if !plotted {
        out.push_str("<p class=\"note\">No trials recorded.</p>");
    }
}

fn section_ensembles(out: &mut String, ledgers: &[LedgerData]) {
    out.push_str("<h2>Ensembles</h2>");
    let mut any = false;
    for l in ledgers {
        // The last selection is the one that shipped.
        let Some(e) = l.ensembles.last() else {
            continue;
        };
        any = true;
        let _ = write!(
            out,
            "<h3>{} — {} (val score {})</h3>",
            esc(&l.workload),
            esc(&l.run_id),
            sig(e.val_score)
        );
        out.push_str(
            "<table><tr><th>trial</th><th>family</th><th>weight</th><th>member score</th></tr>",
        );
        for (trial, family, weight, score) in &e.members {
            let _ = write!(
                out,
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
                trial,
                esc(family),
                sig(*weight),
                sig(*score),
            );
        }
        out.push_str("</table>");
    }
    if !any {
        out.push_str("<p class=\"note\">No ensemble selections recorded.</p>");
    }
}

fn section_rounds(out: &mut String, ledgers: &[LedgerData]) {
    out.push_str("<h2>Feedback rounds</h2>");
    let mut any = false;
    for l in ledgers {
        if l.rounds.is_empty() {
            continue;
        }
        any = true;
        let _ = write!(out, "<h3>{} — {}</h3>", esc(&l.workload), esc(&l.run_id));
        let strategies = uniques(l.rounds.iter().map(|r| r.strategy.as_str()));
        // x = round index within the strategy's own series.
        let max_len = strategies
            .iter()
            .map(|s| l.rounds.iter().filter(|r| &r.strategy == s).count())
            .max()
            .unwrap_or(1);
        let frame = Frame::new(
            (0..max_len).map(|i| i as f64),
            l.rounds.iter().flat_map(|r| [r.acc_min, r.acc_max]),
        );
        frame.open(out);
        for (si, strategy) in strategies.iter().enumerate() {
            let series: Vec<&RoundRecord> = l
                .rounds
                .iter()
                .filter(|r| &r.strategy == strategy)
                .collect();
            let band: Vec<(f64, f64)> = series
                .iter()
                .enumerate()
                .map(|(i, r)| (frame.x(i as f64), frame.y(r.acc_max)))
                .chain(
                    series
                        .iter()
                        .enumerate()
                        .rev()
                        .map(|(i, r)| (frame.x(i as f64), frame.y(r.acc_min))),
                )
                .collect();
            polygon(out, &band, color(si));
            let mean: Vec<(f64, f64)> = series
                .iter()
                .enumerate()
                .filter(|(_, r)| r.acc_mean.is_finite())
                .map(|(i, r)| (frame.x(i as f64), frame.y(r.acc_mean)))
                .collect();
            polyline(out, &mean, color(si), "stroke-width=\"1.6\"");
        }
        out.push_str("</svg>");
        legend(out, &strategies);
        out.push_str(
            "<table><tr><th>strategy</th><th>rounds</th><th>final acc</th>\
             <th>points added</th><th>regions</th></tr>",
        );
        for strategy in &strategies {
            let series: Vec<&RoundRecord> = l
                .rounds
                .iter()
                .filter(|r| &r.strategy == strategy)
                .collect();
            let last = series.last().map(|r| r.acc_mean).unwrap_or(f64::NAN);
            let points: u64 = series.iter().map(|r| r.points_added).sum();
            let regions: u64 = series.iter().map(|r| r.regions).sum();
            let _ = write!(
                out,
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
                esc(strategy),
                series.len(),
                sig(last),
                points,
                regions,
            );
        }
        out.push_str("</table>");
    }
    if !any {
        out.push_str("<p class=\"note\">No feedback rounds recorded.</p>");
    }
}

/// Cap on ALE band plots per ledger so a wide run can't bloat the file.
const MAX_BAND_PLOTS: usize = 8;

fn section_bands(out: &mut String, ledgers: &[LedgerData]) {
    out.push_str("<h2>ALE bands and suggested regions</h2>");
    let mut any = false;
    for l in ledgers {
        // Last band per feature = the final state of the evidence.
        let mut latest: Vec<&BandRecord> = Vec::new();
        for band in &l.bands {
            if let Some(slot) = latest.iter_mut().find(|b| b.feature == band.feature) {
                *slot = band;
            } else {
                latest.push(band);
            }
        }
        let total = latest.len();
        for band in latest.into_iter().take(MAX_BAND_PLOTS) {
            if band.grid.len() != band.mean.len() || band.grid.len() != band.std.len() {
                continue;
            }
            any = true;
            let _ = write!(
                out,
                "<h3>{} (feature {}) — {} — threshold {}</h3>",
                esc(&band.name),
                band.feature,
                esc(&l.run_id),
                sig(band.threshold),
            );
            let frame = Frame::new(
                band.grid.iter().copied(),
                band.mean
                    .iter()
                    .zip(&band.std)
                    .flat_map(|(m, s)| [m - s, m + s]),
            );
            frame.open(out);
            // Suggested intervals: full-height shaded rects.
            for (lo, hi) in &band.intervals {
                if !lo.is_finite() || !hi.is_finite() {
                    continue;
                }
                let x0 = frame.x(lo.max(frame.x0));
                let x1 = frame.x(hi.min(frame.x1));
                let _ = write!(
                    out,
                    "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"#c44e52\" fill-opacity=\"0.12\"/>",
                    px(x0),
                    px(frame.mt),
                    px((x1 - x0).max(1.0)),
                    px(frame.h - frame.mt - frame.mb),
                );
            }
            // ±std band around the mean.
            let band_pts: Vec<(f64, f64)> = band
                .grid
                .iter()
                .zip(band.mean.iter().zip(&band.std))
                .map(|(g, (m, s))| (frame.x(*g), frame.y(m + s)))
                .chain(
                    band.grid
                        .iter()
                        .zip(band.mean.iter().zip(&band.std))
                        .rev()
                        .map(|(g, (m, s))| (frame.x(*g), frame.y(m - s))),
                )
                .collect();
            polygon(out, &band_pts, "#2f6fb4");
            let mean_pts: Vec<(f64, f64)> = band
                .grid
                .iter()
                .zip(&band.mean)
                .filter(|(g, m)| g.is_finite() && m.is_finite())
                .map(|(g, m)| (frame.x(*g), frame.y(*m)))
                .collect();
            polyline(out, &mean_pts, "#2f6fb4", "stroke-width=\"1.6\"");
            out.push_str("</svg>");
            let _ = write!(
                out,
                "<p class=\"note\">{} suggested interval(s); shaded red. Blue band is cross-model mean&#177;std ALE.</p>",
                band.intervals.len()
            );
        }
        if total > MAX_BAND_PLOTS {
            let _ = write!(
                out,
                "<p class=\"note\">{} further feature(s) omitted from {}.</p>",
                total - MAX_BAND_PLOTS,
                esc(&l.run_id)
            );
        }
    }
    if !any {
        out.push_str("<p class=\"note\">No suggested regions recorded.</p>");
    }
}

fn section_perf(out: &mut String, benches: &[BenchReport]) {
    out.push_str("<h2>Perf</h2>");
    if benches.is_empty() {
        out.push_str("<p class=\"note\">No BENCH records given.</p>");
        return;
    }
    out.push_str(
        "<table><tr><th>workload</th><th>git</th><th>wall (s)</th>\
         <th>top spans (s)</th><th>alloc</th><th>peak</th><th>events dropped</th></tr>",
    );
    for b in benches {
        let dropped = b
            .counters
            .iter()
            .find(|(n, _)| n == "telemetry.events_dropped")
            .map(|(_, v)| fmt_u64(*v))
            .unwrap_or_else(|| "0".into());
        let (alloc, peak) = b
            .alloc
            .map(|a| (fmt_bytes(a.bytes), fmt_bytes(a.peak_bytes)))
            .unwrap_or_else(|| ("—".into(), "—".into()));
        let _ = write!(
            out,
            "<tr><td>{}</td><td>{}</td><td>{:.2}</td><td>{:.2}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
            esc(&b.workload),
            esc(&b.git),
            b.wall_time_s,
            b.top_span_total_s,
            alloc,
            peak,
            dropped,
        );
    }
    out.push_str("</table>");
    for b in benches {
        let mut spans = b.spans.clone();
        spans.sort_by(|a, b| b.total_s.total_cmp(&a.total_s));
        spans.truncate(5);
        if spans.is_empty() {
            continue;
        }
        let _ = write!(out, "<h3>{} — top spans</h3>", esc(&b.workload));
        out.push_str(
            "<table><tr><th>span</th><th>calls</th><th>total (s)</th>\
             <th>mean (ms)</th><th>max (ms)</th></tr>",
        );
        for s in &spans {
            let _ = write!(
                out,
                "<tr><td>{}</td><td>{}</td><td>{:.3}</td><td>{:.3}</td><td>{:.3}</td></tr>",
                esc(&s.name),
                s.calls,
                s.total_s,
                s.mean_ms,
                s.max_ms,
            );
        }
        out.push_str("</table>");
    }
}

fn section_crit(out: &mut String, crits: &[CritReport]) {
    out.push_str("<h2>Critical path</h2>");
    if crits.is_empty() {
        out.push_str("<p class=\"note\">No crit.json reports given (run with --crit-out).</p>");
        return;
    }
    for report in crits {
        let _ = write!(
            out,
            "<p class=\"note\">wall {:.2}ms, chain {:.2}ms, dominant phase {}, \
             Amdahl ceiling {:.1}x (serial fraction {:.2}).</p>",
            report.wall_ns as f64 / 1e6,
            report.critical_path_ns as f64 / 1e6,
            esc(&report.dominant_phase),
            report.amdahl.max_speedup,
            report.amdahl.serial_fraction,
        );
        // The standalone artifact carries an xmlns so the .svg opens in a
        // browser; inline in HTML it is redundant and would break the
        // report's no-external-references contract (no `http` anywhere).
        let svg = crate::critview::render_crit_svg(report)
            .replace(" xmlns=\"http://www.w3.org/2000/svg\"", "");
        out.push_str(&svg);
    }
}

/// Search observability: declared-space coverage + importance bars per
/// `family.dimension`, and score scatters for the highest-importance
/// dimensions. One search report per ledger input, recomputed from its
/// `search_space` / `trial_started` lines.
fn section_search_space(out: &mut String, searches: &[SearchReport]) {
    out.push_str("<h2>Search space</h2>");
    let active: Vec<&SearchReport> = searches.iter().filter(|s| s.started > 0).collect();
    if active.is_empty() {
        out.push_str(
            "<p class=\"note\">No search telemetry in the given ledgers \
             (older runs predate the search_space event).</p>",
        );
        return;
    }
    for report in active {
        let _ = write!(
            out,
            "<p class=\"note\">{} fits started, {} finished, {} failed across {} families; \
             funnel: ",
            report.started,
            report.finished,
            report.failed,
            report.families.len()
        );
        for (i, r) in report.rungs.iter().enumerate() {
            if i > 0 {
                out.push_str(" &#8594; ");
            }
            let _ = write!(
                out,
                "rung {}: {}/{} promoted",
                r.rung, r.promoted, r.started
            );
        }
        out.push_str(".</p>");
        let svg = crate::searchview::render_importance_svg(report, 16)
            .replace(" xmlns=\"http://www.w3.org/2000/svg\"", "");
        out.push_str(&svg);
        // Score scatters for the dimensions the scores depended on most.
        let mut dims: Vec<(&str, &aml_telemetry::searchview::DimReport)> = report
            .families
            .iter()
            .flat_map(|f| f.dims.iter().map(move |d| (f.family.as_str(), d)))
            .filter(|(_, d)| !d.points.is_empty())
            .collect();
        dims.sort_by(|a, b| {
            b.1.importance
                .partial_cmp(&a.1.importance)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| (a.0, &a.1.name).cmp(&(b.0, &b.1.name)))
        });
        for (family, dim) in dims.into_iter().take(6) {
            let svg = crate::searchview::render_dim_scatter_svg(family, dim)
                .replace(" xmlns=\"http://www.w3.org/2000/svg\"", "");
            out.push_str(&svg);
        }
    }
}

/// Model/data-quality plane: per-round accuracy/calibration table plus
/// the confusion heat grid, reliability diagram and drift bars from
/// [`crate::qualityview`]. One quality report per ledger input,
/// recomputed from its `dataset_profile` / `model_diagnostics` lines.
fn section_quality(out: &mut String, qualities: &[QualityReport]) {
    out.push_str("<h2>Model quality</h2>");
    let active: Vec<&QualityReport> = qualities.iter().filter(|q| !q.rounds.is_empty()).collect();
    if active.is_empty() {
        out.push_str(
            "<p class=\"note\">No quality telemetry in the given ledgers \
             (older runs predate the dataset_profile event).</p>",
        );
        return;
    }
    for q in active {
        out.push_str(
            "<table><tr><th>round</th><th>strategy</th><th>rows</th><th>acc</th>\
             <th>bal acc</th><th>macro F1</th><th>brier</th><th>ECE</th>\
             <th>ALE band</th><th>PSI mean</th></tr>",
        );
        for r in &q.rounds {
            let _ = write!(
                out,
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
                 <td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
                r.round,
                esc(&r.strategy),
                r.rows,
                sig(r.accuracy),
                sig(r.balanced_accuracy),
                sig(r.macro_f1),
                sig(r.brier),
                sig(r.ece),
                sig(r.ale_band_width),
                r.psi_mean.map(sig).unwrap_or_else(|| "—".into()),
            );
        }
        out.push_str("</table>");
        // The standalone SVG helpers carry an xmlns for browser viewing;
        // inline it is redundant and would break the no-`http` contract.
        if let Some(diag) = &q.final_diag {
            let svg = crate::qualityview::render_confusion_svg(diag)
                .replace(" xmlns=\"http://www.w3.org/2000/svg\"", "");
            out.push_str(&svg);
            let svg = crate::qualityview::render_reliability_svg(&diag.reliability)
                .replace(" xmlns=\"http://www.w3.org/2000/svg\"", "");
            out.push_str(&svg);
        }
        let svg = crate::qualityview::render_drift_svg(&q.drift)
            .replace(" xmlns=\"http://www.w3.org/2000/svg\"", "");
        out.push_str(&svg);
        if q.dropped > 0 {
            let _ = write!(
                out,
                "<p class=\"note\">{} quality event(s) dropped at the collector cap.</p>",
                q.dropped
            );
        }
    }
}

/// Render the full report. Pure: input structs in, one HTML string out.
/// The page references no external assets (the self-containment tests
/// assert there is no `http` substring anywhere in the output).
pub fn render_html(
    ledgers: &[LedgerData],
    benches: &[BenchReport],
    crits: &[CritReport],
    searches: &[SearchReport],
    qualities: &[QualityReport],
    title: &str,
) -> String {
    let mut out = String::with_capacity(64 * 1024);
    let _ = write!(
        out,
        "<!doctype html><html><head><meta charset=\"utf-8\">\
         <title>{}</title><style>{STYLE}</style></head><body><h1>{}</h1>",
        esc(title),
        esc(title)
    );
    let _ = write!(
        out,
        "<p class=\"note\">{} ledger(s), {} BENCH record(s), {} crit report(s). \
         Ledger schema v{}.</p>",
        ledgers.len(),
        benches.len(),
        crits.len(),
        LEDGER_SCHEMA_VERSION
    );
    section_runs(&mut out, ledgers);
    section_search(&mut out, ledgers, benches);
    section_ensembles(&mut out, ledgers);
    section_rounds(&mut out, ledgers);
    section_bands(&mut out, ledgers);
    section_perf(&mut out, benches);
    section_crit(&mut out, crits);
    section_search_space(&mut out, searches);
    section_quality(&mut out, qualities);
    out.push_str("</body></html>");
    out
}

// ---------------------------------------------------------------- compare

/// Shipped ensemble's weight per family (encounter order), from the last
/// `ensemble_selected` event. Empty when no ensemble was recorded.
fn family_weights(l: &LedgerData) -> Vec<(String, f64)> {
    let mut weights: Vec<(String, f64)> = Vec::new();
    if let Some(e) = l.ensembles.last() {
        for (_, family, weight, _) in &e.members {
            if let Some(slot) = weights.iter_mut().find(|(f, _)| f == family) {
                slot.1 += weight;
            } else {
                weights.push((family.clone(), *weight));
            }
        }
    }
    weights
}

/// Last suggested-region band per feature — the final state of the
/// evidence, matching what [`section_bands`] plots.
fn latest_bands(l: &LedgerData) -> Vec<&BandRecord> {
    let mut latest: Vec<&BandRecord> = Vec::new();
    for band in &l.bands {
        if let Some(slot) = latest.iter_mut().find(|b| b.feature == band.feature) {
            *slot = band;
        } else {
            latest.push(band);
        }
    }
    latest
}

/// Total length covered by a band's suggested intervals.
fn interval_len(b: &BandRecord) -> f64 {
    b.intervals
        .iter()
        .filter(|(lo, hi)| lo.is_finite() && hi.is_finite())
        .map(|(lo, hi)| (hi - lo).max(0.0))
        .sum()
}

/// Signed delta cell: `b - a`, with an explicit `+` so drift direction
/// reads at a glance.
fn delta(a: f64, b: f64) -> String {
    let d = b - a;
    if !d.is_finite() {
        return "?".into();
    }
    if d >= 0.0 {
        format!("+{}", sig(d))
    } else {
        format!("&#8722;{}", sig(-d))
    }
}

fn section_compare_summary(out: &mut String, a: &LedgerData, b: &LedgerData) {
    out.push_str("<h2>Runs compared</h2>");
    out.push_str(
        "<table><tr><th>run</th><th>workload</th><th>seed</th><th>git</th>\
         <th>finished</th><th>failed</th><th>rounds</th><th>regions</th></tr>",
    );
    for (label, l) in [("A", a), ("B", b)] {
        let _ = write!(
            out,
            "<tr><td>{label}: {}</td><td>{}</td><td>{}</td><td>{}</td>\
             <td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
            esc(&l.run_id),
            esc(&l.workload),
            l.seed,
            esc(&l.git),
            l.finished.len(),
            l.failed.len(),
            l.rounds.len(),
            l.bands.len(),
        );
    }
    out.push_str("</table>");
    if a.workload != b.workload {
        out.push_str(
            "<p class=\"note\">Workloads differ — deltas below compare \
             different problems; read accordingly.</p>",
        );
    }
}

fn section_compare_rounds(out: &mut String, a: &LedgerData, b: &LedgerData) {
    out.push_str("<h2>Per-round accuracy delta</h2>");
    if a.rounds.is_empty() && b.rounds.is_empty() {
        out.push_str("<p class=\"note\">Neither run recorded feedback rounds.</p>");
        return;
    }
    let mut strategies = uniques(a.rounds.iter().map(|r| r.strategy.as_str()));
    for s in uniques(b.rounds.iter().map(|r| r.strategy.as_str())) {
        if !strategies.contains(&s) {
            strategies.push(s);
        }
    }
    fn series<'l>(l: &'l LedgerData, strategy: &str) -> Vec<&'l RoundRecord> {
        l.rounds.iter().filter(|r| r.strategy == strategy).collect()
    }
    let max_len = strategies
        .iter()
        .map(|s| series(a, s).len().max(series(b, s).len()))
        .max()
        .unwrap_or(1);
    let frame = Frame::new(
        (0..max_len).map(|i| i as f64),
        a.rounds
            .iter()
            .chain(&b.rounds)
            .map(|r| r.acc_mean)
            .filter(|v| v.is_finite()),
    );
    frame.open(out);
    for (si, strategy) in strategies.iter().enumerate() {
        for (l, extra) in [
            (a, "stroke-width=\"1.6\""),
            (b, "stroke-width=\"1.6\" stroke-dasharray=\"5,3\""),
        ] {
            let pts: Vec<(f64, f64)> = series(l, strategy)
                .iter()
                .enumerate()
                .filter(|(_, r)| r.acc_mean.is_finite())
                .map(|(i, r)| (frame.x(i as f64), frame.y(r.acc_mean)))
                .collect();
            polyline(out, &pts, color(si), extra);
        }
    }
    out.push_str("</svg>");
    legend(out, &strategies);
    out.push_str("<p class=\"note\">Solid = A, dashed = B. Mean accuracy per round.</p>");
    out.push_str(
        "<table><tr><th>strategy</th><th>round</th><th>acc A</th>\
         <th>acc B</th><th>&#916; (B &#8722; A)</th></tr>",
    );
    for strategy in &strategies {
        let sa = series(a, strategy);
        let sb = series(b, strategy);
        for i in 0..sa.len().max(sb.len()) {
            let va = sa.get(i).map(|r| r.acc_mean);
            let vb = sb.get(i).map(|r| r.acc_mean);
            let _ = write!(
                out,
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
                esc(strategy),
                i,
                va.map(sig).unwrap_or_else(|| "—".into()),
                vb.map(sig).unwrap_or_else(|| "—".into()),
                match (va, vb) {
                    (Some(va), Some(vb)) => delta(va, vb),
                    _ => "—".into(),
                },
            );
        }
    }
    out.push_str("</table>");
}

fn section_compare_ensembles(out: &mut String, a: &LedgerData, b: &LedgerData) {
    out.push_str("<h2>Ensemble composition changes</h2>");
    let wa = family_weights(a);
    let wb = family_weights(b);
    if wa.is_empty() && wb.is_empty() {
        out.push_str("<p class=\"note\">Neither run recorded an ensemble selection.</p>");
        return;
    }
    let val = |l: &LedgerData| l.ensembles.last().map(|e| e.val_score);
    if let (Some(va), Some(vb)) = (val(a), val(b)) {
        let _ = write!(
            out,
            "<p class=\"note\">Validation score: A {} &#8594; B {} ({}).</p>",
            sig(va),
            sig(vb),
            delta(va, vb),
        );
    }
    let mut families: Vec<String> = wa.iter().map(|(f, _)| f.clone()).collect();
    for (f, _) in &wb {
        if !families.contains(f) {
            families.push(f.clone());
        }
    }
    out.push_str(
        "<table><tr><th>family</th><th>weight A</th><th>weight B</th>\
         <th>&#916; (B &#8722; A)</th></tr>",
    );
    for (fi, family) in families.iter().enumerate() {
        let ga = wa.iter().find(|(f, _)| f == family).map(|(_, w)| *w);
        let gb = wb.iter().find(|(f, _)| f == family).map(|(_, w)| *w);
        let _ = write!(
            out,
            "<tr><td style=\"color:{}\">{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
            color(fi),
            esc(family),
            ga.map(sig).unwrap_or_else(|| "—".into()),
            gb.map(sig).unwrap_or_else(|| "—".into()),
            delta(ga.unwrap_or(0.0), gb.unwrap_or(0.0)),
        );
    }
    out.push_str("</table>");
}

fn section_compare_bands(out: &mut String, a: &LedgerData, b: &LedgerData) {
    out.push_str("<h2>Region-suggestion drift</h2>");
    let la = latest_bands(a);
    let lb = latest_bands(b);
    if la.is_empty() && lb.is_empty() {
        out.push_str("<p class=\"note\">Neither run suggested regions.</p>");
        return;
    }
    let mut features: Vec<u64> = la.iter().map(|band| band.feature).collect();
    for band in &lb {
        if !features.contains(&band.feature) {
            features.push(band.feature);
        }
    }
    out.push_str(
        "<table><tr><th>feature</th><th>threshold A</th><th>threshold B</th>\
         <th>&#916; thr</th><th>intervals A</th><th>intervals B</th>\
         <th>length A</th><th>length B</th><th>&#916; length</th></tr>",
    );
    for feature in features {
        let ba = la.iter().find(|band| band.feature == feature);
        let bb = lb.iter().find(|band| band.feature == feature);
        let name = ba.or(bb).map(|band| band.name.as_str()).unwrap_or("?");
        let opt = |v: Option<f64>| v.map(sig).unwrap_or_else(|| "—".into());
        let _ = write!(
            out,
            "<tr><td>{} ({feature})</td><td>{}</td><td>{}</td><td>{}</td>\
             <td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
            esc(name),
            opt(ba.map(|band| band.threshold)),
            opt(bb.map(|band| band.threshold)),
            match (ba, bb) {
                (Some(ba), Some(bb)) => delta(ba.threshold, bb.threshold),
                _ => "—".into(),
            },
            ba.map(|band| band.intervals.len().to_string())
                .unwrap_or_else(|| "—".into()),
            bb.map(|band| band.intervals.len().to_string())
                .unwrap_or_else(|| "—".into()),
            opt(ba.map(|band| interval_len(band))),
            opt(bb.map(|band| interval_len(band))),
            match (ba, bb) {
                (Some(ba), Some(bb)) => delta(interval_len(ba), interval_len(bb)),
                _ => "—".into(),
            },
        );
    }
    out.push_str("</table>");
    out.push_str(
        "<p class=\"note\">Per feature: last suggested band in each run. \
         Length is the summed width of suggested intervals.</p>",
    );
}

/// Render a cross-run diff of two ledgers (the bin's `--compare` mode).
/// `qa`/`qb` are the runs' recomputed quality reports; when both carry
/// rounds, the header surfaces the final-accuracy and ECE deltas. Same
/// self-containment contract as [`render_html`]: no scripts, no
/// external assets, one HTML string out.
pub fn render_compare_html(
    a: &LedgerData,
    b: &LedgerData,
    qa: Option<&QualityReport>,
    qb: Option<&QualityReport>,
    title: &str,
) -> String {
    let mut out = String::with_capacity(32 * 1024);
    let _ = write!(
        out,
        "<!doctype html><html><head><meta charset=\"utf-8\">\
         <title>{}</title><style>{STYLE}</style></head><body><h1>{}</h1>",
        esc(title),
        esc(title)
    );
    let _ = write!(
        out,
        "<p class=\"note\">A = {} vs B = {}. Ledger schema v{}.</p>",
        esc(&a.run_id),
        esc(&b.run_id),
        LEDGER_SCHEMA_VERSION
    );
    if let (Some(ra), Some(rb)) = (
        qa.and_then(|q| q.rounds.last()),
        qb.and_then(|q| q.rounds.last()),
    ) {
        let _ = write!(
            out,
            "<p class=\"note\">Final accuracy: A {} &#8594; B {} ({}). \
             ECE: A {} &#8594; B {} ({}).</p>",
            sig(ra.accuracy),
            sig(rb.accuracy),
            delta(ra.accuracy, rb.accuracy),
            sig(ra.ece),
            sig(rb.ece),
            delta(ra.ece, rb.ece),
        );
    }
    section_compare_summary(&mut out, a, b);
    section_compare_rounds(&mut out, a, b);
    section_compare_ensembles(&mut out, a, b);
    section_compare_bands(&mut out, a, b);
    out.push_str("</body></html>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{BenchAlloc, BenchHist, BenchSpan};

    fn sample_ledger_text() -> String {
        [
            r#"{"type":"ledger","schema_version":1,"run_id":"w-s1-p2","workload":"w","seed":1,"git":"abc"}"#,
            r#"{"type":"search_space","families":[{"family":"forest","dims":[{"name":"trees","kind":"int","scale":"linear","lo":4,"hi":16,"choices":[]}]},{"family":"logreg","dims":[{"name":"l2","kind":"float","scale":"log10","lo":0.00001,"hi":1,"choices":[]}]}]}"#,
            r#"{"type":"trial_started","trial":0,"rung":0,"family":"forest","config":"ForestConfig { trees: 8 }","params":{"trees":8}}"#,
            r#"{"type":"trial_finished","trial":0,"rung":0,"family":"forest","score":0.91}"#,
            r#"{"type":"trial_started","trial":3,"rung":0,"family":"forest","config":"ForestConfig { trees: 14 }","params":{"trees":14}}"#,
            r#"{"type":"trial_finished","trial":3,"rung":0,"family":"forest","score":0.84}"#,
            r#"{"type":"trial_started","trial":1,"rung":0,"family":"logreg","config":"LogRegConfig { l2: 0.1 }","params":{"l2":0.1}}"#,
            r#"{"type":"trial_failed","trial":1,"rung":0,"family":"logreg","reason":"panic"}"#,
            r#"{"type":"trial_finished","trial":2,"rung":1,"family":"forest","score":null}"#,
            r#"{"type":"ensemble_selected","val_score":0.93,"members":[{"trial":0,"family":"forest","weight":3,"score":0.91}]}"#,
            r#"{"type":"round_completed","round":0,"strategy":"Within-ALE","acc_mean":0.8,"acc_min":0.7,"acc_max":0.9,"points_added":40,"regions":2,"ale_std_mean":0.02,"ale_std_max":0.09}"#,
            r#"{"type":"round_completed","round":1,"strategy":"Within-ALE","acc_mean":0.85,"acc_min":0.8,"acc_max":0.9,"points_added":40,"regions":1,"ale_std_mean":0.01,"ale_std_max":0.05}"#,
            r#"{"type":"round_completed","round":2,"strategy":"Random","acc_mean":0.75,"acc_min":0.7,"acc_max":0.8,"points_added":40,"regions":0,"ale_std_mean":0,"ale_std_max":0}"#,
            r#"{"type":"region_suggested","feature":0,"name":"pkt_size","threshold":0.05,"intervals":[[0.2,0.4],[0.7,0.9]],"grid":[0,0.25,0.5,0.75,1],"mean":[0.1,0.3,0.2,0.4,0.1],"std":[0.01,0.08,0.02,0.09,0.01]}"#,
            r#"{"type":"ale_curve","feature":0,"model":"forest","method":"ale","grid_points":5,"rows":200}"#,
            r#"{"type":"dataset_profile","round":0,"split":"train","rows":4,"class_counts":[2,2],"features":[{"name":"pkt_size","count":4,"mean":0.4,"std":0.2,"min":0.1,"max":0.9,"log10":false,"lo":0,"hi":1,"bins":[2,1,0,1]}]}"#,
            r#"{"type":"model_diagnostics","round":0,"strategy":"Within-ALE","rows":2,"classes":["a","b"],"confusion":[[1,0],[1,0]],"brier":0.4,"bin_count":[0,0,0,0,0,0,0,2,0,0],"bin_conf_sum":[0,0,0,0,0,0,0,1.5,0,0],"bin_hit":[0,0,0,0,0,0,0,1,0,0],"ale_band_width":0.3}"#,
            r#"{"type":"dataset_profile","round":1,"split":"train","rows":6,"class_counts":[3,3],"features":[{"name":"pkt_size","count":6,"mean":0.5,"std":0.3,"min":0.1,"max":0.95,"log10":false,"lo":0,"hi":1,"bins":[2,1,0,3]}]}"#,
            r#"{"type":"model_diagnostics","round":1,"strategy":"Within-ALE","rows":2,"classes":["a","b"],"confusion":[[1,0],[0,1]],"brier":0.1,"bin_count":[0,0,0,0,0,0,0,0,2,0],"bin_conf_sum":[0,0,0,0,0,0,0,0,1.7,0],"bin_hit":[0,0,0,0,0,0,0,0,2,0],"ale_band_width":0.1}"#,
            r#"{"type":"some_future_event","payload":42}"#,
        ]
        .join("\n")
    }

    fn sample_bench() -> BenchReport {
        BenchReport {
            workload: "w".into(),
            seed: 1,
            scale: 0.05,
            threads: 2,
            git: "abc".into(),
            wall_time_s: 10.0,
            top_span_total_s: 9.5,
            spans: vec![BenchSpan {
                name: "automl.search.run".into(),
                calls: 4,
                total_s: 2.0,
                mean_ms: 500.0,
                max_ms: 900.0,
            }],
            counters: vec![("telemetry.events_dropped".into(), 2)],
            throughput: vec![],
            histograms: vec![BenchHist {
                name: "automl.fit_us[forest]".into(),
                count: 4,
                mean: 1500,
                p50: 1400,
                p95: 2000,
                max: 2100,
            }],
            alloc: Some(BenchAlloc {
                bytes: 4 << 20,
                count: 1000,
                peak_bytes: 1 << 20,
            }),
        }
    }

    #[test]
    fn parses_every_event_type_and_skips_unknown_ones() {
        let l = parse_ledger(&sample_ledger_text()).unwrap();
        assert_eq!(l.run_id, "w-s1-p2");
        assert_eq!(l.workload, "w");
        assert_eq!(l.seed, 1);
        assert_eq!(l.started, 3);
        assert_eq!(l.finished.len(), 3);
        assert_eq!(l.finished[0].family, "forest");
        assert!((l.finished[0].score - 0.91).abs() < 1e-12);
        assert!(l.finished[2].score.is_nan(), "null score reads as NaN");
        assert_eq!(l.failed, vec![(1, 0, "logreg".into(), "panic".into())]);
        assert_eq!(l.ensembles.len(), 1);
        assert_eq!(l.ensembles[0].members[0].1, "forest");
        assert_eq!(l.rounds.len(), 3);
        assert_eq!(l.rounds[2].strategy, "Random");
        assert_eq!(l.bands.len(), 1);
        assert_eq!(l.bands[0].intervals, vec![(0.2, 0.4), (0.7, 0.9)]);
        assert_eq!(l.curves.len(), 1);
    }

    #[test]
    fn rejects_bad_headers_and_versions() {
        assert!(parse_ledger("").is_err());
        assert!(parse_ledger("{\"type\":\"events\"}").is_err());
        let bumped = sample_ledger_text().replace("\"schema_version\":1", "\"schema_version\":99");
        let err = parse_ledger(&bumped).unwrap_err();
        assert!(err.contains("schema_version 99"), "{err}");
        // A malformed event line reports its line number.
        let err = parse_ledger(
            "{\"type\":\"ledger\",\"schema_version\":1,\"run_id\":\"r\",\"workload\":\"w\",\"seed\":1,\"git\":\"g\"}\n{oops",
        )
        .unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    /// A small hand-built critical-path report (datagen -> labeling ->
    /// one parallel scenario) for the section-7 rendering tests.
    fn sample_crit() -> aml_telemetry::CritReport {
        use aml_telemetry::crit::{PhaseStat, Segment};
        aml_telemetry::CritReport {
            wall_ns: 5_000_000,
            cpu_ns: Some(9_000_000),
            dominant_phase: "bench.datagen".into(),
            critical_path_ns: 4_200_000,
            path: vec![
                Segment {
                    name: "bench.datagen".into(),
                    id: 7,
                    depth: 0,
                    total_ns: 4_200_000,
                    contribution_ns: 2_600_000,
                    parallel: false,
                },
                Segment {
                    name: "netsim.scenario".into(),
                    id: 11,
                    depth: 1,
                    total_ns: 1_600_000,
                    contribution_ns: 1_600_000,
                    parallel: true,
                },
            ],
            phases: vec![PhaseStat {
                name: "bench.datagen".into(),
                total_ns: 4_200_000,
                work_ns: 6_000_000,
                ideal_ns: 3_900_000,
                serial_fraction: 0.65,
                max_speedup: 1.54,
                subtree_spans: 4,
            }],
            amdahl: PhaseStat {
                name: "run".into(),
                total_ns: 4_200_000,
                work_ns: 6_000_000,
                ideal_ns: 3_900_000,
                serial_fraction: 0.65,
                max_speedup: 1.54,
                subtree_spans: 5,
            },
            scenarios: None,
            nodes: 5,
            nodes_dropped: 0,
        }
    }

    #[test]
    fn report_is_self_contained_and_has_all_sections() {
        let l = parse_ledger(&sample_ledger_text()).unwrap();
        let s = crate::searchview::parse_search_ledger(&sample_ledger_text()).unwrap();
        let q = crate::qualityview::parse_quality_ledger(&sample_ledger_text()).unwrap();
        let html = render_html(
            &[l],
            &[sample_bench()],
            &[sample_crit()],
            &[s],
            &[q],
            "test report",
        );
        // Single file, no external references of any kind.
        assert!(!html.contains("http"), "external reference in report");
        assert!(!html.contains("<script"), "no scripts allowed");
        assert!(html.len() < 2 * 1024 * 1024, "report too large");
        // All nine sections render.
        for heading in [
            "Runs",
            "Search",
            "Ensembles",
            "Feedback rounds",
            "ALE bands",
            "Perf",
            "Critical path",
            "Search space",
            "Model quality",
        ] {
            assert!(html.contains(heading), "missing section {heading}");
        }
        // Charts are inline SVG, and open/close tags balance.
        assert!(html.contains("<svg"), "no charts rendered");
        assert_eq!(html.matches("<svg").count(), html.matches("</svg>").count());
        assert_eq!(
            html.matches("<table").count(),
            html.matches("</table>").count()
        );
        // Data from every section shows up.
        assert!(html.contains("forest"));
        assert!(html.contains("Within-ALE"));
        assert!(html.contains("pkt_size"));
        assert!(html.contains("automl.search.run"));
        // The dropped-events counter from BENCH surfaces in Perf.
        assert!(html.contains("events dropped"));
        // The crit section carries the chain chart and the Amdahl note.
        assert!(html.contains("bench.datagen"));
        assert!(html.contains("Amdahl ceiling 1.5x"));
        assert!(html.contains("[par]"));
        // The search-space section carries importance bars and a funnel.
        assert!(html.contains("forest.trees"));
        assert!(html.contains("importance"));
        assert!(html.contains("rung 0:"));
        // The quality section carries the calibration table and panels.
        assert!(html.contains("ECE"));
        assert!(html.contains("reliability (confidence vs accuracy)"));
        assert!(html.contains("confusion (row = true class)"));
        assert!(html.contains("drift vs previous_round"));
    }

    #[test]
    fn empty_inputs_still_render_a_valid_page() {
        let html = render_html(&[], &[], &[], &[], &[], "empty");
        assert!(html.contains("No ledgers given"));
        assert!(html.contains("No BENCH records given"));
        assert!(html.contains("No crit.json reports given"));
        assert!(html.contains("No search telemetry"));
        assert!(html.contains("No quality telemetry"));
        assert!(html.contains("</html>"));
        assert!(!html.contains("http"));
    }

    #[test]
    fn family_fit_time_joins_from_bench_histograms() {
        let b = sample_bench();
        let ms = family_fit_ms(&[b], "forest").unwrap();
        assert!((ms - 1.5).abs() < 1e-9, "{ms}");
        assert!(family_fit_ms(&[sample_bench()], "mlp").is_none());
    }

    /// A second run of the same workload with drifted numbers: slightly
    /// better accuracy, a reweighted ensemble with a new family, and a
    /// shifted region suggestion.
    fn shifted_ledger_text() -> String {
        sample_ledger_text()
            .replace("\"run_id\":\"w-s1-p2\"", "\"run_id\":\"w-s2-p2\"")
            .replace("\"seed\":1,", "\"seed\":2,")
            .replace("\"acc_mean\":0.85", "\"acc_mean\":0.88")
            .replace(
                "\"members\":[{\"trial\":0,\"family\":\"forest\",\"weight\":3,\"score\":0.91}]",
                "\"members\":[{\"trial\":0,\"family\":\"forest\",\"weight\":2,\"score\":0.91},\
                 {\"trial\":2,\"family\":\"mlp\",\"weight\":1,\"score\":0.89}]",
            )
            .replace("\"threshold\":0.05", "\"threshold\":0.07")
            .replace(
                "\"intervals\":[[0.2,0.4],[0.7,0.9]]",
                "\"intervals\":[[0.25,0.45]]",
            )
    }

    #[test]
    fn compare_report_is_self_contained_and_shows_the_drift() {
        let a = parse_ledger(&sample_ledger_text()).unwrap();
        let b = parse_ledger(&shifted_ledger_text()).unwrap();
        let qa = crate::qualityview::parse_quality_ledger(&sample_ledger_text()).unwrap();
        let qb = crate::qualityview::parse_quality_ledger(&shifted_ledger_text()).unwrap();
        let html = render_compare_html(&a, &b, Some(&qa), Some(&qb), "A vs B");
        // The header surfaces the quality deltas up front.
        assert!(html.contains("Final accuracy: A"), "missing quality header");
        assert!(html.contains("ECE: A"), "missing ECE header");
        // Same self-containment contract as the single-run report.
        assert!(!html.contains("http"), "external reference in compare");
        assert!(!html.contains("<script"), "no scripts allowed");
        for heading in [
            "Runs compared",
            "Per-round accuracy delta",
            "Ensemble composition changes",
            "Region-suggestion drift",
        ] {
            assert!(html.contains(heading), "missing section {heading}");
        }
        assert_eq!(html.matches("<svg").count(), html.matches("</svg>").count());
        assert_eq!(
            html.matches("<table").count(),
            html.matches("</table>").count()
        );
        // Both run ids label the page; B's series is dashed.
        assert!(html.contains("w-s1-p2") && html.contains("w-s2-p2"));
        assert!(html.contains("stroke-dasharray"));
        // Round 1 of Within-ALE drifted 0.85 -> 0.88: delta +0.030.
        assert!(html.contains("+0.030"), "missing accuracy delta");
        // The new mlp family appears with no weight on the A side.
        assert!(html.contains("mlp"));
        // Region drift: threshold moved and total interval length shrank
        // from 0.4 to 0.2.
        assert!(html.contains("+0.020"), "missing threshold delta");
        assert!(html.contains("&#8722;0.200"), "missing length delta");
    }

    #[test]
    fn compare_of_empty_ledgers_still_renders_a_valid_page() {
        let header =
            "{\"type\":\"ledger\",\"schema_version\":1,\"run_id\":\"r\",\"workload\":\"w\",\"seed\":1,\"git\":\"g\"}";
        let l = parse_ledger(header).unwrap();
        let html = render_compare_html(&l, &l, None, None, "empty vs empty");
        assert!(
            !html.contains("Final accuracy: A"),
            "no quality header without reports"
        );
        assert!(html.contains("Neither run recorded feedback rounds"));
        assert!(html.contains("Neither run recorded an ensemble selection"));
        assert!(html.contains("Neither run suggested regions"));
        assert!(html.contains("</html>"));
        assert!(!html.contains("http"));
    }

    #[test]
    fn compare_helpers_aggregate_weights_and_interval_lengths() {
        let a = parse_ledger(&sample_ledger_text()).unwrap();
        assert_eq!(family_weights(&a), vec![("forest".into(), 3.0)]);
        let b = parse_ledger(&shifted_ledger_text()).unwrap();
        assert_eq!(
            family_weights(&b),
            vec![("forest".into(), 2.0), ("mlp".into(), 1.0)]
        );
        let bands = latest_bands(&a);
        assert_eq!(bands.len(), 1);
        assert!((interval_len(bands[0]) - 0.4).abs() < 1e-12);
        assert_eq!(delta(0.8, 0.85), "+0.050");
        assert_eq!(delta(0.85, 0.8), "&#8722;0.050");
    }
}
