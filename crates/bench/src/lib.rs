//! # aml-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper (see DESIGN.md §4 for the index):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig1_scream_ale` | Figure 1 — ALE band of `config.link_rate` |
//! | `table1_scream` | Table 1 — Scream-vs-rest balanced accuracy + Wilcoxon p-values |
//! | `fig2_firewall_ale` | Figures 2a/2b — firewall src/dst-port ALE bands |
//! | `table2_firewall` | §4.2 — firewall accuracy comparison |
//! | `threshold_sweep` | §4 "Setting the threshold" — coverage vs 𝒯 |
//! | `ablations` | design-choice ablations (committee size, runs, grid) |
//!
//! All binaries accept `--quick` (scaled-down but same-shape run),
//! `--full` (paper-scale), `--seed N`, `--threads N`, `--out DIR` and
//! `--telemetry off|summary|verbose`; the default scale ("medium")
//! reproduces the paper's qualitative results in minutes on a laptop.
//! Generated datasets are cached as CSV under the output directory so
//! repeated runs don't re-simulate.
//!
//! ## Output discipline (DESIGN.md §6)
//!
//! Stdout carries only the banner and final result tables, so piping a
//! binary into a file captures exactly the paper artifact. Status,
//! progress, and the timing summary go to stderr and appear only with
//! `--telemetry summary|verbose`, which also writes
//! `<out>/manifest.json` with every span/counter/histogram of the run.

use aml_dataset::Dataset;
use aml_telemetry::TelemetryLevel;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-scale smoke run; same shape, large error bars.
    Quick,
    /// Default: qualitative reproduction in tens of minutes.
    Medium,
    /// Paper-scale sample sizes.
    Full,
}

impl Scale {
    /// Numeric multiplier recorded in the manifest (quick 0.05 / medium
    /// 0.3 / full 1.0 — the rough sample-size ratio vs the paper).
    pub fn factor(&self) -> f64 {
        match self {
            Scale::Quick => 0.05,
            Scale::Medium => 0.3,
            Scale::Full => 1.0,
        }
    }
}

/// Parsed common CLI options.
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// Experiment scale.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Output directory for CSV/SVG/JSON artifacts.
    pub out_dir: PathBuf,
    /// Worker threads.
    pub threads: usize,
    /// Telemetry level for this run.
    pub telemetry: TelemetryLevel,
    /// When option parsing finished — the manifest's wall-clock origin.
    pub started: Instant,
}

/// Usage text shared by every benchmark binary.
pub const USAGE: &str = "\
options:
  --quick                 minutes-scale smoke run
  --full                  paper-scale run (default: medium)
  --seed N                master seed (default 1)
  --threads N             worker threads (default: all cores)
  --out DIR               artifact directory (default target/experiments)
  --telemetry LEVEL       off|summary|verbose (default off)
  --help                  show this help";

impl RunOpts {
    fn defaults() -> RunOpts {
        RunOpts {
            scale: Scale::Medium,
            seed: 1,
            out_dir: PathBuf::from("target/experiments"),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            telemetry: TelemetryLevel::Off,
            started: Instant::now(),
        }
    }

    /// Parse from `std::env::args`. Prints usage and exits on `--help` or
    /// any parse error — unknown flags and missing/invalid values are
    /// errors, not silently ignored.
    pub fn parse() -> RunOpts {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match RunOpts::parse_from(&args) {
            Ok(Some(opts)) => {
                aml_telemetry::set_level(opts.telemetry);
                std::fs::create_dir_all(&opts.out_dir).ok();
                opts
            }
            Ok(None) => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            Err(msg) => {
                eprintln!("error: {msg}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// Parse an argument list (no program name). `Ok(None)` means `--help`
    /// was requested. Pure: does not touch the process level, filesystem,
    /// or exit — that's [`RunOpts::parse`]'s job, and what makes this
    /// testable.
    pub fn parse_from(args: &[String]) -> Result<Option<RunOpts>, String> {
        let mut opts = RunOpts::defaults();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--help" | "-h" => return Ok(None),
                "--quick" => opts.scale = Scale::Quick,
                "--full" => opts.scale = Scale::Full,
                "--seed" => {
                    let v = value_of(args, &mut i, "--seed")?;
                    opts.seed = v
                        .parse()
                        .map_err(|_| format!("--seed expects an integer, got '{v}'"))?;
                }
                "--threads" => {
                    let v = value_of(args, &mut i, "--threads")?;
                    opts.threads = v
                        .parse()
                        .map_err(|_| format!("--threads expects an integer, got '{v}'"))?;
                    if opts.threads == 0 {
                        return Err("--threads must be >= 1".into());
                    }
                }
                "--out" => {
                    let v = value_of(args, &mut i, "--out")?;
                    opts.out_dir = PathBuf::from(v);
                }
                "--telemetry" => {
                    let v = value_of(args, &mut i, "--telemetry")?;
                    opts.telemetry = v.parse()?;
                }
                unknown => return Err(format!("unknown flag '{unknown}'")),
            }
            i += 1;
        }
        Ok(Some(opts))
    }

    /// Pick a value by scale.
    pub fn by_scale<T: Copy>(&self, quick: T, medium: T, full: T) -> T {
        match self.scale {
            Scale::Quick => quick,
            Scale::Medium => medium,
            Scale::Full => full,
        }
    }

    /// Print the run header (seed etc.) so results are reproducible.
    pub fn banner(&self, name: &str) {
        aml_telemetry::report(&format!(
            "== {name} | scale {:?} | seed {} | {} threads | artifacts -> {} ==\n",
            self.scale,
            self.seed,
            self.threads,
            self.out_dir.display()
        ));
    }

    /// Finish the run: when telemetry is enabled, write
    /// `<out>/manifest.json` from the global registry and print the timing
    /// summary to stderr. A no-op with `--telemetry off`, keeping output
    /// and artifacts identical to an uninstrumented run.
    pub fn finish(&self, binary: &str) {
        if !aml_telemetry::enabled() {
            return;
        }
        let manifest = aml_telemetry::Manifest::new(
            binary,
            self.seed,
            self.scale.factor(),
            self.threads,
            self.started,
            aml_telemetry::global().snapshot(),
        );
        eprint!("{}", manifest.render_summary());
        match manifest.write_json(&self.out_dir) {
            Ok(path) => aml_telemetry::note(&format!("wrote {}", path.display())),
            Err(e) => aml_telemetry::warn(&format!("could not write manifest: {e}")),
        }
    }
}

/// The value following flag `args[*i]`, advancing `i` past it.
fn value_of<'a>(args: &'a [String], i: &mut usize, flag: &str) -> Result<&'a str, String> {
    *i += 1;
    args.get(*i)
        .map(String::as_str)
        .filter(|v| !v.starts_with("--"))
        .ok_or_else(|| format!("{flag} expects a value"))
}

/// Write a text artifact to the output directory.
pub fn write_artifact(out_dir: &Path, name: &str, content: &str) {
    let path = out_dir.join(name);
    if let Err(e) = std::fs::write(&path, content) {
        aml_telemetry::warn(&format!("could not write {}: {e}", path.display()));
    } else {
        aml_telemetry::note(&format!("wrote {}", path.display()));
    }
}

/// Write a JSON artifact.
pub fn write_json<T: serde::Serialize>(out_dir: &Path, name: &str, value: &T) {
    match serde_json::to_string_pretty(value) {
        Ok(s) => write_artifact(out_dir, name, &s),
        Err(e) => aml_telemetry::warn(&format!("could not serialize {name}: {e}")),
    }
}

/// Load a cached dataset or generate-and-cache it. The cache key must
/// uniquely identify the generation parameters (include n and seed!).
pub fn cached_dataset(out_dir: &Path, key: &str, generate: impl FnOnce() -> Dataset) -> Dataset {
    let path = out_dir.join(format!("{key}.csv"));
    if path.exists() {
        if let Ok(ds) = aml_dataset::csv::read_csv(&path) {
            aml_telemetry::note(&format!("loaded cached {key} ({} rows)", ds.n_rows()));
            return ds;
        }
    }
    let ds = generate();
    if aml_dataset::csv::write_csv(&ds, &path).is_ok() {
        aml_telemetry::note(&format!("cached {key} ({} rows)", ds.n_rows()));
    }
    ds
}

/// Mean of a slice (experiment reporting helper).
pub fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use aml_dataset::synth;

    fn parse(args: &[&str]) -> Result<Option<RunOpts>, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        RunOpts::parse_from(&owned)
    }

    #[test]
    fn defaults_when_no_args() {
        let opts = parse(&[]).unwrap().unwrap();
        assert_eq!(opts.scale, Scale::Medium);
        assert_eq!(opts.seed, 1);
        assert_eq!(opts.telemetry, TelemetryLevel::Off);
        assert!(opts.threads >= 1);
    }

    #[test]
    fn all_flags_parse() {
        let opts = parse(&[
            "--quick",
            "--seed",
            "42",
            "--threads",
            "3",
            "--out",
            "/tmp/x",
            "--telemetry",
            "summary",
        ])
        .unwrap()
        .unwrap();
        assert_eq!(opts.scale, Scale::Quick);
        assert_eq!(opts.seed, 42);
        assert_eq!(opts.threads, 3);
        assert_eq!(opts.out_dir, PathBuf::from("/tmp/x"));
        assert_eq!(opts.telemetry, TelemetryLevel::Summary);
        let verbose = parse(&["--full", "--telemetry", "verbose"])
            .unwrap()
            .unwrap();
        assert_eq!(verbose.scale, Scale::Full);
        assert_eq!(verbose.telemetry, TelemetryLevel::Verbose);
    }

    #[test]
    fn unknown_flag_is_an_error() {
        let err = parse(&["--bogus"]).unwrap_err();
        assert!(err.contains("--bogus"), "{err}");
        // Positional junk is rejected too.
        assert!(parse(&["quick"]).is_err());
    }

    #[test]
    fn missing_values_are_errors() {
        for flag in ["--seed", "--threads", "--out", "--telemetry"] {
            let err = parse(&[flag]).unwrap_err();
            assert!(err.contains(flag), "{flag}: {err}");
            // A following flag is not a value.
            let err = parse(&[flag, "--quick"]).unwrap_err();
            assert!(err.contains(flag), "{flag}: {err}");
        }
    }

    #[test]
    fn invalid_values_are_errors() {
        assert!(parse(&["--seed", "abc"]).unwrap_err().contains("--seed"));
        assert!(parse(&["--threads", "x"])
            .unwrap_err()
            .contains("--threads"));
        assert!(parse(&["--threads", "0"])
            .unwrap_err()
            .contains("--threads"));
        assert!(parse(&["--telemetry", "loud"])
            .unwrap_err()
            .contains("telemetry level"));
    }

    #[test]
    fn help_short_circuits() {
        assert!(parse(&["--help"]).unwrap().is_none());
        assert!(parse(&["--quick", "-h", "--bogus"]).unwrap().is_none());
    }

    #[test]
    fn by_scale_picks_correctly() {
        let mut o = parse(&["--quick"]).unwrap().unwrap();
        assert_eq!(o.by_scale(1, 2, 3), 1);
        o.scale = Scale::Medium;
        assert_eq!(o.by_scale(1, 2, 3), 2);
        o.scale = Scale::Full;
        assert_eq!(o.by_scale(1, 2, 3), 3);
    }

    #[test]
    fn dataset_cache_round_trips() {
        let dir = std::env::temp_dir().join("aml_bench_cache_test");
        std::fs::create_dir_all(&dir).unwrap();
        let key = "test_ds_cache";
        std::fs::remove_file(dir.join(format!("{key}.csv"))).ok();
        let first = cached_dataset(&dir, key, || synth::two_moons(30, 0.1, 1).unwrap());
        let second = cached_dataset(&dir, key, || panic!("must hit the cache"));
        assert_eq!(first.n_rows(), second.n_rows());
        assert_eq!(first.labels(), second.labels());
        std::fs::remove_file(dir.join(format!("{key}.csv"))).ok();
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }
}
