//! # aml-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper (see DESIGN.md §4 for the index):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig1_scream_ale` | Figure 1 — ALE band of `config.link_rate` |
//! | `table1_scream` | Table 1 — Scream-vs-rest balanced accuracy + Wilcoxon p-values |
//! | `fig2_firewall_ale` | Figures 2a/2b — firewall src/dst-port ALE bands |
//! | `table2_firewall` | §4.2 — firewall accuracy comparison |
//! | `threshold_sweep` | §4 "Setting the threshold" — coverage vs 𝒯 |
//! | `ablations` | design-choice ablations (committee size, runs, grid) |
//!
//! All binaries accept `--quick` (scaled-down but same-shape run),
//! `--full` (paper-scale), `--seed N` and `--out DIR`; the default scale
//! ("medium") reproduces the paper's qualitative results in minutes on a
//! laptop. Generated datasets are cached as CSV under the output directory
//! so repeated runs don't re-simulate.

use aml_dataset::Dataset;
use std::path::{Path, PathBuf};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-scale smoke run; same shape, large error bars.
    Quick,
    /// Default: qualitative reproduction in tens of minutes.
    Medium,
    /// Paper-scale sample sizes.
    Full,
}

/// Parsed common CLI options.
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// Experiment scale.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Output directory for CSV/SVG/JSON artifacts.
    pub out_dir: PathBuf,
    /// Worker threads.
    pub threads: usize,
}

impl RunOpts {
    /// Parse from `std::env::args` (ignores unknown flags).
    pub fn parse() -> RunOpts {
        let args: Vec<String> = std::env::args().collect();
        let mut opts = RunOpts {
            scale: Scale::Medium,
            seed: 1,
            out_dir: PathBuf::from("target/experiments"),
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
        };
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => opts.scale = Scale::Quick,
                "--full" => opts.scale = Scale::Full,
                "--seed" if i + 1 < args.len() => {
                    opts.seed = args[i + 1].parse().unwrap_or(opts.seed);
                    i += 1;
                }
                "--out" if i + 1 < args.len() => {
                    opts.out_dir = PathBuf::from(&args[i + 1]);
                    i += 1;
                }
                "--threads" if i + 1 < args.len() => {
                    opts.threads = args[i + 1].parse().unwrap_or(opts.threads);
                    i += 1;
                }
                _ => {}
            }
            i += 1;
        }
        std::fs::create_dir_all(&opts.out_dir).ok();
        opts
    }

    /// Pick a value by scale.
    pub fn by_scale<T: Copy>(&self, quick: T, medium: T, full: T) -> T {
        match self.scale {
            Scale::Quick => quick,
            Scale::Medium => medium,
            Scale::Full => full,
        }
    }

    /// Print the run header (seed etc.) so results are reproducible.
    pub fn banner(&self, name: &str) {
        println!(
            "== {name} | scale {:?} | seed {} | {} threads | artifacts -> {} ==\n",
            self.scale,
            self.seed,
            self.threads,
            self.out_dir.display()
        );
    }
}

/// Write a text artifact to the output directory.
pub fn write_artifact(out_dir: &Path, name: &str, content: &str) {
    let path = out_dir.join(name);
    if let Err(e) = std::fs::write(&path, content) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
}

/// Write a JSON artifact.
pub fn write_json<T: serde::Serialize>(out_dir: &Path, name: &str, value: &T) {
    match serde_json::to_string_pretty(value) {
        Ok(s) => write_artifact(out_dir, name, &s),
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Load a cached dataset or generate-and-cache it. The cache key must
/// uniquely identify the generation parameters (include n and seed!).
pub fn cached_dataset(
    out_dir: &Path,
    key: &str,
    generate: impl FnOnce() -> Dataset,
) -> Dataset {
    let path = out_dir.join(format!("{key}.csv"));
    if path.exists() {
        if let Ok(ds) = aml_dataset::csv::read_csv(&path) {
            println!("loaded cached {key} ({} rows)", ds.n_rows());
            return ds;
        }
    }
    let ds = generate();
    if aml_dataset::csv::write_csv(&ds, &path).is_ok() {
        println!("cached {key} ({} rows)", ds.n_rows());
    }
    ds
}

/// Mean of a slice (experiment reporting helper).
pub fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use aml_dataset::synth;

    #[test]
    fn by_scale_picks_correctly() {
        let mut o = RunOpts {
            scale: Scale::Quick,
            seed: 0,
            out_dir: PathBuf::from("/tmp"),
            threads: 1,
        };
        assert_eq!(o.by_scale(1, 2, 3), 1);
        o.scale = Scale::Medium;
        assert_eq!(o.by_scale(1, 2, 3), 2);
        o.scale = Scale::Full;
        assert_eq!(o.by_scale(1, 2, 3), 3);
    }

    #[test]
    fn dataset_cache_round_trips() {
        let dir = std::env::temp_dir().join("aml_bench_cache_test");
        std::fs::create_dir_all(&dir).unwrap();
        let key = "test_ds_cache";
        std::fs::remove_file(dir.join(format!("{key}.csv"))).ok();
        let first = cached_dataset(&dir, key, || synth::two_moons(30, 0.1, 1).unwrap());
        let second = cached_dataset(&dir, key, || panic!("must hit the cache"));
        assert_eq!(first.n_rows(), second.n_rows());
        assert_eq!(first.labels(), second.labels());
        std::fs::remove_file(dir.join(format!("{key}.csv"))).ok();
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }
}
