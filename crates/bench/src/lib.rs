//! # aml-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper (see DESIGN.md §4 for the index):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig1_scream_ale` | Figure 1 — ALE band of `config.link_rate` |
//! | `table1_scream` | Table 1 — Scream-vs-rest balanced accuracy + Wilcoxon p-values |
//! | `fig2_firewall_ale` | Figures 2a/2b — firewall src/dst-port ALE bands |
//! | `table2_firewall` | §4.2 — firewall accuracy comparison |
//! | `threshold_sweep` | §4 "Setting the threshold" — coverage vs 𝒯 |
//! | `ablations` | design-choice ablations (committee size, runs, grid) |
//!
//! All binaries accept `--quick` (scaled-down but same-shape run),
//! `--full` (paper-scale), `--seed N`, `--threads N`, `--out DIR` and
//! `--telemetry off|summary|verbose`; the default scale ("medium")
//! reproduces the paper's qualitative results in minutes on a laptop.
//! Generated datasets are cached as CSV under the output directory so
//! repeated runs don't re-simulate.
//!
//! ## Output discipline (DESIGN.md §6)
//!
//! Stdout carries only the banner and final result tables, so piping a
//! binary into a file captures exactly the paper artifact. Status,
//! progress, and the timing summary go to stderr and appear only with
//! `--telemetry summary|verbose`, which also writes
//! `<out>/manifest.json` with every span/counter/histogram of the run.

pub mod amlreport;
pub mod amlserve;
pub mod critview;
pub mod gate;
pub mod minijson;
pub mod qualityview;
pub mod report;
pub mod searchview;

use aml_dataset::Dataset;
use aml_telemetry::TelemetryLevel;
use report::BenchReport;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-scale smoke run; same shape, large error bars.
    Quick,
    /// Default: qualitative reproduction in tens of minutes.
    Medium,
    /// Paper-scale sample sizes.
    Full,
}

impl Scale {
    /// Numeric multiplier recorded in the manifest (quick 0.05 / medium
    /// 0.3 / full 1.0 — the rough sample-size ratio vs the paper).
    pub fn factor(&self) -> f64 {
        match self {
            Scale::Quick => 0.05,
            Scale::Medium => 0.3,
            Scale::Full => 1.0,
        }
    }
}

/// Parsed common CLI options.
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// Experiment scale.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Output directory for CSV/SVG/JSON artifacts.
    pub out_dir: PathBuf,
    /// Worker threads.
    pub threads: usize,
    /// Telemetry level for this run.
    pub telemetry: TelemetryLevel,
    /// Write `BENCH_<workload>.json` (the perf record `perfgate`
    /// compares) into the output directory at the end of the run.
    pub emit_bench: bool,
    /// Append one cross-run [`aml_telemetry::HistoryRecord`] here at the
    /// end of the run (`--record`, default
    /// `results/history/history.jsonl`). Feeds
    /// `perfgate --against-history` and the `/dashboard` trend section.
    pub record: Option<PathBuf>,
    /// Live tallies of the ledger summary collector installed by
    /// [`RunOpts::prepare`] when `--record` was given.
    pub summary: Option<aml_core::SummaryHandle>,
    /// Write a Chrome trace-event file (Perfetto-loadable) here.
    pub trace_out: Option<PathBuf>,
    /// Stream telemetry as JSON lines here.
    pub events_out: Option<PathBuf>,
    /// Stream the experiment ledger (trials, ensembles, rounds, regions)
    /// as JSON lines here.
    pub ledger_out: Option<PathBuf>,
    /// Serve the live observability plane (`/metrics`, `/healthz`,
    /// `/runs`) on this address (e.g. `127.0.0.1:9100`; port 0 picks a
    /// free port, written to `<out>/serve.addr`).
    pub serve: Option<String>,
    /// Write the span self-time profile here in collapsed-stack folded
    /// format (flamegraph-ready) at the end of the run.
    pub profile_out: Option<PathBuf>,
    /// Collect the causal trace tree during the run and write the
    /// critical-path report (longest chain, per-phase Amdahl estimate,
    /// per-scenario costs) here as JSON at the end; also printed as a
    /// table on stderr and served live at `/crit` with `--serve`.
    pub crit_out: Option<PathBuf>,
    /// Collect search observability (declared-space coverage, rung
    /// funnels, hyperparameter importance) during the run and write
    /// `search.json` here at the end; also printed as a table on stderr,
    /// served live at `/search` with `--serve`, and read by the
    /// `amlsearch` bin (which recomputes the same report from a ledger).
    pub search_out: Option<PathBuf>,
    /// Collect the model/data-quality plane (dataset profiles, PSI drift,
    /// confusion/calibration diagnostics) during the run and write
    /// `quality.json` here at the end; also printed as a table on stderr,
    /// served live at `/quality` with `--serve`, and read by the
    /// `amlquality` bin (which recomputes the same report from a ledger).
    pub quality_out: Option<PathBuf>,
    /// Drift baseline for the quality plane (`--quality-ref`): a previous
    /// run's `quality.json` whose latest train profile anchors the PSI
    /// drift scores. Without it each round drifts against the previous
    /// round.
    pub quality_ref: Option<PathBuf>,
    /// Deterministic fault plan (`--fault-plan`), installed process-wide
    /// by [`RunOpts::prepare`]. `None` keeps every fault hook inert.
    pub fault_plan: Option<aml_faults::FaultPlan>,
    /// Wall-clock budget per AutoML trial (`--max-trial-time`);
    /// over-budget trials become `trial_failed` (reason `timeout`).
    pub max_trial_time: Option<std::time::Duration>,
    /// Minimum trials that must survive each AutoML search
    /// (`--min-trials`); below this the run errors instead of degrading.
    pub min_trials: usize,
    /// Write an atomic experiment checkpoint here after every feedback
    /// round (`--checkpoint`).
    pub checkpoint: Option<PathBuf>,
    /// Resume from this checkpoint (`--resume`); workload and seed must
    /// match the checkpointed run.
    pub resume: Option<PathBuf>,
    /// The validated checkpoint loaded by [`RunOpts::prepare`] when
    /// `--resume` was given.
    pub resumed: Option<aml_core::Checkpoint>,
    /// Workload name (set by [`RunOpts::parse_for`]); names the manifest,
    /// the BENCH report, and the export sinks' run id.
    pub workload: String,
    /// When option parsing finished — the manifest's wall-clock origin.
    pub started: Instant,
}

/// Usage text shared by every benchmark binary.
pub const USAGE: &str = "\
options:
  --quick                 minutes-scale smoke run
  --full                  paper-scale run (default: medium)
  --seed N                master seed (default 1)
  --threads N             worker threads (default: all cores)
  --out DIR               artifact directory (default target/experiments)
  --telemetry LEVEL       off|summary|verbose (default off)
  --emit-bench            write BENCH_<workload>.json into the out dir
  --record [PATH]         append one cross-run history record (wall time,
                          peak RSS, final accuracy, trial counts) to PATH
                          (default results/history/history.jsonl) at the
                          end of the run; see `perfgate --against-history`
  --trace-out PATH        write a Chrome trace (Perfetto) file
  --events-out PATH       stream telemetry as JSON lines
  --ledger-out PATH       stream the experiment ledger (trials, ensembles,
                          feedback rounds) as JSON lines; see `amlreport`
  --serve ADDR            serve /metrics, /healthz and /runs over HTTP while
                          the run is live (port 0 picks a free port, written
                          to <out>/serve.addr); also starts the /proc
                          resource sampler
  --profile-out PATH      write the span self-time profile as collapsed
                          stacks (flamegraph-ready) and print a top table
                          (export/serve/profile flags imply --telemetry summary)
  --crit-out PATH         collect the causal trace tree and write the
                          critical-path report (longest dependency chain,
                          per-phase serial fraction / Amdahl speedup ceiling,
                          per-scenario datagen costs) as JSON; printed as a
                          table on stderr, served live at /crit, and read by
                          the `amlcrit` bin
  --search-out PATH       collect search observability (declared-space
                          coverage, successive-halving rung funnels,
                          fANOVA-lite hyperparameter importance) and write
                          search.json; printed as a table on stderr, served
                          live at /search, and read by the `amlsearch` bin
  --quality-out PATH      collect the model/data-quality plane (per-feature
                          dataset profiles, PSI drift, confusion matrix,
                          reliability/ECE calibration) and write quality.json;
                          printed as a table on stderr, served live at
                          /quality, and read by the `amlquality` bin
  --quality-ref PATH      drift baseline: a previous run's quality.json whose
                          latest train profile anchors the PSI scores (the
                          default drifts each round against the previous one)
  --fault-plan SPEC       inject deterministic faults, e.g.
                          trial_panic@3,trial_slow@7:500ms,sink_fail@2,nan_labels@1
  --max-trial-time MS     wall-clock budget per AutoML trial; over-budget
                          trials are abandoned as trial_failed (reason timeout)
  --min-trials N          error if fewer than N trials survive an AutoML
                          search (default 1)
  --checkpoint PATH       write an atomic experiment checkpoint after every
                          feedback round
  --resume PATH           resume from a checkpoint (workload and seed must
                          match; completed rounds are skipped and the ledger
                          continues byte-identically)
  --help                  show this help";

impl RunOpts {
    fn defaults() -> RunOpts {
        RunOpts {
            scale: Scale::Medium,
            seed: 1,
            out_dir: PathBuf::from("target/experiments"),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            telemetry: TelemetryLevel::Off,
            emit_bench: false,
            record: None,
            summary: None,
            trace_out: None,
            events_out: None,
            ledger_out: None,
            serve: None,
            profile_out: None,
            crit_out: None,
            search_out: None,
            quality_out: None,
            quality_ref: None,
            fault_plan: None,
            max_trial_time: None,
            min_trials: 1,
            checkpoint: None,
            resume: None,
            resumed: None,
            workload: "bench".to_string(),
            started: Instant::now(),
        }
    }

    /// Parse from `std::env::args` for the named workload. Prints usage
    /// and exits on `--help` or any parse error — unknown flags, missing
    /// or invalid values, and unwritable output paths are usage errors
    /// (exit 2), not panics. On success the telemetry level is set, the
    /// output directory exists, and any export sinks are installed.
    pub fn parse_for(workload: &str) -> RunOpts {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match RunOpts::parse_from(&args) {
            Ok(Some(mut opts)) => {
                opts.workload = workload.to_string();
                if let Err(msg) = opts.prepare() {
                    eprintln!("error: {msg}\n{USAGE}");
                    std::process::exit(2);
                }
                opts
            }
            Ok(None) => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            Err(msg) => {
                eprintln!("error: {msg}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// Apply the parsed options to the process: set the telemetry level
    /// (export flags imply at least `summary`), create the output
    /// directory and any export-path parent directories, and install the
    /// requested sinks. Separated from parsing so tests can exercise the
    /// filesystem failures without exiting.
    pub fn prepare(&mut self) -> Result<(), String> {
        let wants_export = self.emit_bench
            || self.record.is_some()
            || self.trace_out.is_some()
            || self.events_out.is_some()
            || self.ledger_out.is_some()
            || self.serve.is_some()
            || self.profile_out.is_some()
            || self.crit_out.is_some()
            || self.search_out.is_some()
            || self.quality_out.is_some();
        if wants_export && self.telemetry == TelemetryLevel::Off {
            self.telemetry = TelemetryLevel::Summary;
        }
        aml_telemetry::set_level(self.telemetry);
        std::fs::create_dir_all(&self.out_dir)
            .map_err(|e| format!("cannot create --out {}: {e}", self.out_dir.display()))?;

        if let Some(plan) = &self.fault_plan {
            aml_faults::install(plan.clone());
        }

        // Resume: validate the checkpoint and truncate the ledger file
        // back to its recorded byte length BEFORE any sink reopens it —
        // the sink below then appends, continuing the original run's
        // ledger byte-identically.
        if let Some(resume) = &self.resume {
            let ckpt = aml_core::checkpoint::prepare_resume(
                &self.workload,
                self.seed,
                resume,
                self.ledger_out.as_deref(),
            )
            .map_err(|e| format!("--resume {}: {e}", resume.display()))?;
            self.resumed = Some(ckpt);
            // The original run already wrote its search_space line; a
            // resumed continuation must not append a second one.
            aml_telemetry::ledger::mark_search_space_emitted();
        }

        if self.trace_out.is_some() || self.events_out.is_some() || self.ledger_out.is_some() {
            let header = aml_telemetry::RunHeader::new(&self.workload, self.seed);
            if let Some(path) = &self.events_out {
                ensure_parent(path, "--events-out")?;
                let sink = aml_telemetry::JsonlSink::create(path, &header)
                    .map_err(|e| format!("cannot write --events-out {}: {e}", path.display()))?;
                aml_telemetry::sink::install(Box::new(sink));
            }
            if let Some(path) = &self.trace_out {
                ensure_parent(path, "--trace-out")?;
                let sink = aml_telemetry::ChromeTraceSink::create(path, &header)
                    .map_err(|e| format!("cannot write --trace-out {}: {e}", path.display()))?;
                aml_telemetry::sink::install(Box::new(sink));
            }
            if let Some(path) = &self.ledger_out {
                ensure_parent(path, "--ledger-out")?;
                let sink = if self.resume.is_some() {
                    aml_telemetry::LedgerJsonlSink::append(path).map_err(|e| {
                        format!("cannot append --ledger-out {}: {e}", path.display())
                    })?
                } else {
                    aml_telemetry::LedgerJsonlSink::create(path, &header)
                        .map_err(|e| format!("cannot write --ledger-out {}: {e}", path.display()))?
                };
                // Off-is-free: the fault wrapper is only interposed when
                // the plan actually schedules sink failures.
                let inject = self
                    .fault_plan
                    .as_ref()
                    .is_some_and(|p| !p.sink_fail.is_empty());
                if inject {
                    aml_telemetry::sink::install(Box::new(FaultInjectedLedger { inner: sink }));
                } else {
                    aml_telemetry::sink::install(Box::new(sink));
                }
            }
        }

        if let Some(path) = &self.record {
            ensure_parent(path, "--record")?;
            // The summary collector tallies trials/failures/rounds and the
            // last round's accuracy in memory (and raises the ledger gate,
            // so events flow even without --ledger-out).
            self.summary = Some(aml_core::summary::install_collector());
            // Point the live plane's /history route at the same store the
            // run appends to.
            aml_telemetry::serve::set_history_path(path);
        }

        if let Some(path) = &self.profile_out {
            ensure_parent(path, "--profile-out")?;
            aml_telemetry::profile::reset();
            aml_telemetry::profile::set_active(true);
        }
        if let Some(path) = &self.crit_out {
            ensure_parent(path, "--crit-out")?;
            aml_telemetry::tracetree::reset();
            aml_telemetry::tracetree::set_active(true);
        }
        if let Some(path) = &self.search_out {
            ensure_parent(path, "--search-out")?;
            aml_telemetry::searchview::reset();
            aml_telemetry::searchview::set_active(true);
            // The collector observes events inside ledger::emit, which only
            // fires when some sink wants ledger events; GateSink raises that
            // gate without writing anywhere, so --search-out works alone.
            aml_telemetry::sink::install(Box::new(aml_telemetry::searchview::GateSink));
        }
        if let Some(path) = &self.quality_out {
            ensure_parent(path, "--quality-out")?;
            aml_telemetry::quality::reset();
            if let Some(ref_path) = &self.quality_ref {
                let text = std::fs::read_to_string(ref_path).map_err(|e| {
                    format!("cannot read --quality-ref {}: {e}", ref_path.display())
                })?;
                let reference = qualityview::load_reference(&text)
                    .map_err(|e| format!("--quality-ref {}: {e}", ref_path.display()))?;
                aml_telemetry::quality::set_reference(reference);
            }
            aml_telemetry::quality::set_active(true);
            // Same off-is-free arrangement as --search-out: the collector
            // observes events inside ledger::emit, and GateSink raises the
            // ledger gate without writing anywhere.
            aml_telemetry::sink::install(Box::new(aml_telemetry::quality::GateSink));
        } else if self.quality_ref.is_some() {
            return Err("--quality-ref requires --quality-out".into());
        }
        if let Some(addr) = &self.serve {
            let header = aml_telemetry::RunHeader::new(&self.workload, self.seed);
            let bound = aml_telemetry::serve::start(addr, &header)
                .map_err(|e| format!("cannot bind --serve {addr}: {e}"))?;
            // Port 0 means "pick one"; record the resolved address so
            // scripts (and the CI smoke test) can find the live plane.
            let addr_file = self.out_dir.join("serve.addr");
            std::fs::write(&addr_file, format!("{bound}\n"))
                .map_err(|e| format!("cannot write {}: {e}", addr_file.display()))?;
            aml_telemetry::note(&format!(
                "serving /metrics /healthz /runs /events /history /dashboard on http://{bound}"
            ));
            aml_telemetry::resource::start_sampler(std::time::Duration::from_millis(500));
        }
        Ok(())
    }

    /// Parse an argument list (no program name). `Ok(None)` means `--help`
    /// was requested. Pure: does not touch the process level, filesystem,
    /// or exit — that's [`RunOpts::parse`]'s job, and what makes this
    /// testable.
    pub fn parse_from(args: &[String]) -> Result<Option<RunOpts>, String> {
        let mut opts = RunOpts::defaults();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--help" | "-h" => return Ok(None),
                "--quick" => opts.scale = Scale::Quick,
                "--full" => opts.scale = Scale::Full,
                "--seed" => {
                    let v = value_of(args, &mut i, "--seed")?;
                    opts.seed = v
                        .parse()
                        .map_err(|_| format!("--seed expects an integer, got '{v}'"))?;
                }
                "--threads" => {
                    let v = value_of(args, &mut i, "--threads")?;
                    opts.threads = v
                        .parse()
                        .map_err(|_| format!("--threads expects an integer, got '{v}'"))?;
                    if opts.threads == 0 {
                        return Err("--threads must be >= 1".into());
                    }
                }
                "--out" => {
                    let v = value_of(args, &mut i, "--out")?;
                    opts.out_dir = PathBuf::from(v);
                }
                "--telemetry" => {
                    let v = value_of(args, &mut i, "--telemetry")?;
                    opts.telemetry = v.parse()?;
                }
                "--emit-bench" => opts.emit_bench = true,
                "--record" => {
                    // The path is optional: a following flag (or nothing)
                    // means "use the default store".
                    match args.get(i + 1).map(String::as_str) {
                        Some(v) if !v.starts_with("--") => {
                            opts.record = Some(PathBuf::from(v));
                            i += 1;
                        }
                        _ => {
                            opts.record =
                                Some(PathBuf::from(aml_telemetry::history::DEFAULT_HISTORY_PATH))
                        }
                    }
                }
                "--trace-out" => {
                    let v = value_of(args, &mut i, "--trace-out")?;
                    opts.trace_out = Some(PathBuf::from(v));
                }
                "--events-out" => {
                    let v = value_of(args, &mut i, "--events-out")?;
                    opts.events_out = Some(PathBuf::from(v));
                }
                "--ledger-out" => {
                    let v = value_of(args, &mut i, "--ledger-out")?;
                    opts.ledger_out = Some(PathBuf::from(v));
                }
                "--serve" => {
                    let v = value_of(args, &mut i, "--serve")?;
                    opts.serve = Some(v.to_string());
                }
                "--profile-out" => {
                    let v = value_of(args, &mut i, "--profile-out")?;
                    opts.profile_out = Some(PathBuf::from(v));
                }
                "--crit-out" => {
                    let v = value_of(args, &mut i, "--crit-out")?;
                    opts.crit_out = Some(PathBuf::from(v));
                }
                "--search-out" => {
                    let v = value_of(args, &mut i, "--search-out")?;
                    opts.search_out = Some(PathBuf::from(v));
                }
                "--quality-out" => {
                    let v = value_of(args, &mut i, "--quality-out")?;
                    opts.quality_out = Some(PathBuf::from(v));
                }
                "--quality-ref" => {
                    let v = value_of(args, &mut i, "--quality-ref")?;
                    opts.quality_ref = Some(PathBuf::from(v));
                }
                "--fault-plan" => {
                    let v = value_of(args, &mut i, "--fault-plan")?;
                    opts.fault_plan = Some(
                        aml_faults::FaultPlan::parse(v)
                            .map_err(|e| format!("--fault-plan: {e}"))?,
                    );
                }
                "--max-trial-time" => {
                    let v = value_of(args, &mut i, "--max-trial-time")?;
                    let ms: u64 = v
                        .parse()
                        .map_err(|_| format!("--max-trial-time expects milliseconds, got '{v}'"))?;
                    if ms == 0 {
                        return Err("--max-trial-time must be >= 1 ms".into());
                    }
                    opts.max_trial_time = Some(std::time::Duration::from_millis(ms));
                }
                "--min-trials" => {
                    let v = value_of(args, &mut i, "--min-trials")?;
                    opts.min_trials = v
                        .parse()
                        .map_err(|_| format!("--min-trials expects an integer, got '{v}'"))?;
                    if opts.min_trials == 0 {
                        return Err("--min-trials must be >= 1".into());
                    }
                }
                "--checkpoint" => {
                    let v = value_of(args, &mut i, "--checkpoint")?;
                    opts.checkpoint = Some(PathBuf::from(v));
                }
                "--resume" => {
                    let v = value_of(args, &mut i, "--resume")?;
                    opts.resume = Some(PathBuf::from(v));
                }
                unknown => return Err(format!("unknown flag '{unknown}'")),
            }
            i += 1;
        }
        Ok(Some(opts))
    }

    /// Apply the CLI's trial-robustness flags (`--max-trial-time`,
    /// `--min-trials`) to an AutoML config. Every bin calls this on the
    /// configs it builds so the flags reach the search layer.
    pub fn apply_automl_limits(&self, cfg: &mut aml_automl::AutoMlConfig) {
        cfg.max_trial_time = self.max_trial_time;
        cfg.min_trials = self.min_trials;
    }

    /// The checkpointed experiment loop for this run — resumed from
    /// `--resume` when given, fresh otherwise. Subsequent checkpoints go
    /// to `--checkpoint` if set, else keep updating the resumed file.
    pub fn experiment_loop(&self) -> aml_core::ExperimentLoop {
        let ckpt_path = self.checkpoint.clone().or_else(|| self.resume.clone());
        match &self.resumed {
            Some(ckpt) => aml_core::ExperimentLoop::from_checkpoint(
                ckpt.clone(),
                ckpt_path,
                self.ledger_out.clone(),
            ),
            None => aml_core::ExperimentLoop::new(
                &self.workload,
                self.seed,
                ckpt_path,
                self.ledger_out.clone(),
            ),
        }
    }

    /// Pick a value by scale.
    pub fn by_scale<T: Copy>(&self, quick: T, medium: T, full: T) -> T {
        match self.scale {
            Scale::Quick => quick,
            Scale::Medium => medium,
            Scale::Full => full,
        }
    }

    /// Print the run header (seed etc.) so results are reproducible.
    pub fn banner(&self, name: &str) {
        aml_telemetry::report(&format!(
            "== {name} | scale {:?} | seed {} | {} threads | artifacts -> {} ==\n",
            self.scale,
            self.seed,
            self.threads,
            self.out_dir.display()
        ));
    }

    /// Finish the run: when telemetry is enabled, publish allocation
    /// counters, write `<out>/manifest.json` from the global registry,
    /// print the timing summary to stderr, flush every export sink
    /// (`--trace-out`, `--events-out`), and — with `--emit-bench` —
    /// write `BENCH_<workload>.json`. A no-op with `--telemetry off`,
    /// keeping output and artifacts identical to an uninstrumented run.
    pub fn finish(&self) {
        if !aml_telemetry::enabled() {
            return;
        }
        aml_telemetry::serve::set_phase("finishing");
        // Stop the sampler (taking one last reading) before the snapshot
        // so the final proc.* gauges land in the manifest.
        aml_telemetry::resource::stop_sampler();
        if self.record.is_some() {
            // Without --serve no sampler ran; take one reading so the
            // history record still gets an RSS figure.
            aml_telemetry::resource::publish_once();
        }
        aml_telemetry::alloc::publish_counters();
        let manifest = aml_telemetry::Manifest::new(
            &self.workload,
            self.seed,
            self.scale.factor(),
            self.threads,
            self.started,
            aml_telemetry::global().snapshot(),
        );
        eprint!("{}", manifest.render_summary());
        match manifest.write_json(&self.out_dir) {
            Ok(path) => aml_telemetry::note(&format!("wrote {}", path.display())),
            Err(e) => aml_telemetry::warn(&format!("could not write manifest: {e}")),
        }
        for (target, result) in aml_telemetry::sink::finish(&manifest.snapshot) {
            match result {
                Ok(()) => aml_telemetry::note(&format!("wrote {target}")),
                Err(e) => aml_telemetry::warn(&format!("could not write {target}: {e}")),
            }
        }
        let bench = (self.emit_bench || self.record.is_some())
            .then(|| BenchReport::from_manifest(&manifest));
        if self.emit_bench {
            match bench.as_ref().unwrap().write(&self.out_dir) {
                Ok(path) => aml_telemetry::note(&format!("wrote {}", path.display())),
                Err(e) => aml_telemetry::warn(&format!("could not write BENCH report: {e}")),
            }
        }
        if let Some(path) = &self.record {
            let record = self.history_record(bench.as_ref().unwrap(), &manifest.snapshot);
            match record.append(path) {
                Ok(()) => aml_telemetry::note(&format!("recorded history -> {}", path.display())),
                Err(e) => aml_telemetry::warn(&format!(
                    "could not append --record {}: {e}",
                    path.display()
                )),
            }
        }
        if let Some(path) = &self.profile_out {
            aml_telemetry::profile::set_active(false);
            match aml_telemetry::profile::write_folded(path) {
                Ok(()) => aml_telemetry::note(&format!("wrote {}", path.display())),
                Err(e) => aml_telemetry::warn(&format!(
                    "could not write --profile-out {}: {e}",
                    path.display()
                )),
            }
            let entries = aml_telemetry::profile::entries();
            eprint!("{}", aml_telemetry::profile::render_top_table(&entries, 10));
        }
        if let Some(path) = &self.crit_out {
            // Deactivate first so the report's tree is final; the resource
            // gauges were already published above, so wall-vs-CPU
            // attribution lands in the report.
            aml_telemetry::tracetree::set_active(false);
            match aml_telemetry::crit::write_json(path) {
                Ok(report) => {
                    aml_telemetry::note(&format!("wrote {}", path.display()));
                    eprint!("{}", report.render_table());
                }
                Err(e) => aml_telemetry::warn(&format!(
                    "could not write --crit-out {}: {e}",
                    path.display()
                )),
            }
        }
        if let Some(path) = &self.search_out {
            // Deactivate first so the report is computed over a frozen
            // trial set; render_table gives the operator the same view
            // amlsearch prints from the ledger.
            aml_telemetry::searchview::set_active(false);
            match aml_telemetry::searchview::write_json(path) {
                Ok(report) => {
                    aml_telemetry::note(&format!("wrote {}", path.display()));
                    eprint!("{}", report.render_table());
                }
                Err(e) => aml_telemetry::warn(&format!(
                    "could not write --search-out {}: {e}",
                    path.display()
                )),
            }
        }
        if let Some(path) = &self.quality_out {
            // Deactivate first so the report reduces a frozen event store;
            // render_table mirrors what amlquality prints from the ledger.
            aml_telemetry::quality::set_active(false);
            match aml_telemetry::quality::write_json(path) {
                Ok(report) => {
                    aml_telemetry::note(&format!("wrote {}", path.display()));
                    eprint!("{}", report.render_table());
                }
                Err(e) => aml_telemetry::warn(&format!(
                    "could not write --quality-out {}: {e}",
                    path.display()
                )),
            }
        }
        aml_telemetry::serve::stop();
    }

    /// Distill this run into one cross-run history record: perf numbers
    /// from the BENCH report, peak RSS from the `proc.*` gauges, ML
    /// totals from the summary collector (zeros when no collector was
    /// installed — e.g. a workload that never emits ledger events).
    pub fn history_record(
        &self,
        bench: &BenchReport,
        snapshot: &aml_telemetry::Snapshot,
    ) -> aml_telemetry::HistoryRecord {
        let gauge = |name: &str| {
            snapshot
                .gauges
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
        };
        let summary = self.summary.as_ref().map(|h| h.snapshot());
        aml_telemetry::HistoryRecord {
            workload: self.workload.clone(),
            seed: self.seed,
            git: bench.git.clone(),
            source: "run".into(),
            wall_time_s: bench.wall_time_s,
            top_span_total_s: bench.top_span_total_s,
            peak_rss_bytes: gauge("proc.rss_peak_bytes")
                .or_else(|| gauge("proc.rss_bytes"))
                .unwrap_or(0),
            alloc_peak_bytes: bench.alloc.as_ref().map_or(0, |a| a.peak_bytes),
            final_acc: summary.as_ref().and_then(|s| s.final_acc),
            trials_finished: summary.as_ref().map_or(0, |s| s.trials_finished),
            trials_failed: summary.as_ref().map_or(0, |s| s.trials_failed),
            rounds: summary.as_ref().map_or(0, |s| s.rounds),
            ece: summary.as_ref().and_then(|s| s.ece),
        }
    }
}

/// Ledger sink wrapper driving the `sink_fail@N` fault: scheduled writes
/// are dropped — counted under `telemetry.events_dropped` — instead of
/// reaching the file, so downstream consumers' resilience to lost events
/// (amlreport, checkpoint/resume) can be tested deterministically.
struct FaultInjectedLedger {
    inner: aml_telemetry::LedgerJsonlSink,
}

impl aml_telemetry::sink::Sink for FaultInjectedLedger {
    fn on_span_close(&self, event: &aml_telemetry::sink::SpanEvent) {
        self.inner.on_span_close(event)
    }
    fn on_ledger_event(&self, event: &aml_telemetry::LedgerEvent) {
        if aml_faults::sink_write_fails() {
            aml_telemetry::counter_add("telemetry.events_dropped", 1);
            return;
        }
        self.inner.on_ledger_event(event)
    }
    fn wants_ledger(&self) -> bool {
        true
    }
    fn flush_now(&self) -> std::io::Result<()> {
        self.inner.flush_now()
    }
    fn finish(&self, snapshot: &aml_telemetry::Snapshot) -> std::io::Result<()> {
        self.inner.finish(snapshot)
    }
    fn target(&self) -> String {
        self.inner.target()
    }
}

/// Create `path`'s parent directory (if any) so export files can land in
/// not-yet-existing directories; failures become usage errors naming the
/// flag.
fn ensure_parent(path: &Path, flag: &str) -> Result<(), String> {
    match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => std::fs::create_dir_all(parent)
            .map_err(|e| format!("cannot create parent of {flag} {}: {e}", path.display())),
        _ => Ok(()),
    }
}

/// The value following flag `args[*i]`, advancing `i` past it.
fn value_of<'a>(args: &'a [String], i: &mut usize, flag: &str) -> Result<&'a str, String> {
    *i += 1;
    args.get(*i)
        .map(String::as_str)
        .filter(|v| !v.starts_with("--"))
        .ok_or_else(|| format!("{flag} expects a value"))
}

/// Write a text artifact to the output directory.
pub fn write_artifact(out_dir: &Path, name: &str, content: &str) {
    let path = out_dir.join(name);
    if let Err(e) = std::fs::write(&path, content) {
        aml_telemetry::warn(&format!("could not write {}: {e}", path.display()));
    } else {
        aml_telemetry::note(&format!("wrote {}", path.display()));
    }
}

/// Write a JSON artifact (pretty-printed via [`minijson::Value::render`]).
pub fn write_json<T: minijson::ToJson + ?Sized>(out_dir: &Path, name: &str, value: &T) {
    write_artifact(out_dir, name, &value.to_json().render());
}

impl minijson::ToJson for aml_interpret::AleBand {
    fn to_json(&self) -> minijson::Value {
        minijson::Value::Obj(vec![
            ("feature".into(), self.feature.to_json()),
            ("feature_name".into(), self.feature_name.to_json()),
            ("grid".into(), self.grid.to_json()),
            ("mean".into(), self.mean.to_json()),
            ("std".into(), self.std.to_json()),
            ("n_models".into(), self.n_models.to_json()),
        ])
    }
}

/// Load a cached dataset or generate-and-cache it. The cache key must
/// uniquely identify the generation parameters (include n and seed!).
pub fn cached_dataset(out_dir: &Path, key: &str, generate: impl FnOnce() -> Dataset) -> Dataset {
    let path = out_dir.join(format!("{key}.csv"));
    if path.exists() {
        if let Ok(ds) = aml_dataset::csv::read_csv(&path) {
            aml_telemetry::note(&format!("loaded cached {key} ({} rows)", ds.n_rows()));
            return ds;
        }
    }
    let ds = generate();
    if aml_dataset::csv::write_csv(&ds, &path).is_ok() {
        aml_telemetry::note(&format!("cached {key} ({} rows)", ds.n_rows()));
    }
    ds
}

/// Mean of a slice (experiment reporting helper).
pub fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use aml_dataset::synth;

    fn parse(args: &[&str]) -> Result<Option<RunOpts>, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        RunOpts::parse_from(&owned)
    }

    #[test]
    fn defaults_when_no_args() {
        let opts = parse(&[]).unwrap().unwrap();
        assert_eq!(opts.scale, Scale::Medium);
        assert_eq!(opts.seed, 1);
        assert_eq!(opts.telemetry, TelemetryLevel::Off);
        assert!(opts.threads >= 1);
    }

    #[test]
    fn all_flags_parse() {
        let opts = parse(&[
            "--quick",
            "--seed",
            "42",
            "--threads",
            "3",
            "--out",
            "/tmp/x",
            "--telemetry",
            "summary",
        ])
        .unwrap()
        .unwrap();
        assert_eq!(opts.scale, Scale::Quick);
        assert_eq!(opts.seed, 42);
        assert_eq!(opts.threads, 3);
        assert_eq!(opts.out_dir, PathBuf::from("/tmp/x"));
        assert_eq!(opts.telemetry, TelemetryLevel::Summary);
        let verbose = parse(&["--full", "--telemetry", "verbose"])
            .unwrap()
            .unwrap();
        assert_eq!(verbose.scale, Scale::Full);
        assert_eq!(verbose.telemetry, TelemetryLevel::Verbose);
    }

    #[test]
    fn unknown_flag_is_an_error() {
        let err = parse(&["--bogus"]).unwrap_err();
        assert!(err.contains("--bogus"), "{err}");
        // Positional junk is rejected too.
        assert!(parse(&["quick"]).is_err());
    }

    #[test]
    fn export_flags_parse() {
        let opts = parse(&[
            "--emit-bench",
            "--trace-out",
            "/tmp/x/trace.json",
            "--events-out",
            "/tmp/x/events.jsonl",
            "--ledger-out",
            "/tmp/x/ledger.jsonl",
        ])
        .unwrap()
        .unwrap();
        assert!(opts.emit_bench);
        assert_eq!(opts.trace_out, Some(PathBuf::from("/tmp/x/trace.json")));
        assert_eq!(opts.events_out, Some(PathBuf::from("/tmp/x/events.jsonl")));
        assert_eq!(opts.ledger_out, Some(PathBuf::from("/tmp/x/ledger.jsonl")));
        // Parsing alone never touches the level; prepare() does.
        assert_eq!(opts.telemetry, TelemetryLevel::Off);
    }

    #[test]
    fn record_flag_parses_with_and_without_path() {
        let opts = parse(&["--record", "/tmp/x/h.jsonl"]).unwrap().unwrap();
        assert_eq!(opts.record, Some(PathBuf::from("/tmp/x/h.jsonl")));
        // No value: the default store.
        let opts = parse(&["--record"]).unwrap().unwrap();
        assert_eq!(
            opts.record,
            Some(PathBuf::from(aml_telemetry::history::DEFAULT_HISTORY_PATH))
        );
        // A following flag is not a path.
        let opts = parse(&["--record", "--quick"]).unwrap().unwrap();
        assert_eq!(
            opts.record,
            Some(PathBuf::from(aml_telemetry::history::DEFAULT_HISTORY_PATH))
        );
        assert_eq!(opts.scale, Scale::Quick);
        // Parsing alone never touches the level; prepare() bumps it.
        assert_eq!(opts.telemetry, TelemetryLevel::Off);
    }

    #[test]
    fn history_record_maps_bench_and_gauges() {
        let mut opts = parse(&["--seed", "7"]).unwrap().unwrap();
        opts.workload = "w".into();
        let bench = BenchReport {
            workload: "w".into(),
            seed: 7,
            scale: 0.05,
            threads: 2,
            git: "abc1234".into(),
            wall_time_s: 12.5,
            top_span_total_s: 11.0,
            spans: vec![],
            counters: vec![],
            throughput: vec![],
            histograms: vec![],
            alloc: None,
        };
        let snapshot = aml_telemetry::Snapshot {
            spans: vec![],
            counters: vec![],
            gauges: vec![
                ("proc.rss_bytes".into(), 50 << 20),
                ("proc.rss_peak_bytes".into(), 70 << 20),
            ],
            histograms: vec![],
        };
        let rec = opts.history_record(&bench, &snapshot);
        assert_eq!(rec.workload, "w");
        assert_eq!(rec.seed, 7);
        assert_eq!(rec.source, "run");
        assert_eq!(rec.wall_time_s, 12.5);
        assert_eq!(rec.peak_rss_bytes, 70 << 20);
        // No summary collector installed: ML totals default to zero/None.
        assert_eq!(rec.final_acc, None);
        assert_eq!(rec.trials_finished, 0);
        // Without the peak gauge the current-RSS gauge is the fallback.
        let snapshot = aml_telemetry::Snapshot {
            spans: vec![],
            counters: vec![],
            gauges: vec![("proc.rss_bytes".into(), 50 << 20)],
            histograms: vec![],
        };
        assert_eq!(
            opts.history_record(&bench, &snapshot).peak_rss_bytes,
            50 << 20
        );
    }

    #[test]
    fn live_plane_flags_parse() {
        let opts = parse(&[
            "--serve",
            "127.0.0.1:0",
            "--profile-out",
            "/tmp/x/profile.folded",
        ])
        .unwrap()
        .unwrap();
        assert_eq!(opts.serve, Some("127.0.0.1:0".to_string()));
        assert_eq!(
            opts.profile_out,
            Some(PathBuf::from("/tmp/x/profile.folded"))
        );
        // Parsing alone never touches the level; prepare() bumps it.
        assert_eq!(opts.telemetry, TelemetryLevel::Off);
        assert!(parse(&["--serve"]).unwrap_err().contains("--serve"));
        assert!(parse(&["--profile-out", "--quick"])
            .unwrap_err()
            .contains("--profile-out"));
    }

    #[test]
    fn search_out_flag_parses() {
        let opts = parse(&["--search-out", "/tmp/x/search.json"])
            .unwrap()
            .unwrap();
        assert_eq!(opts.search_out, Some(PathBuf::from("/tmp/x/search.json")));
        assert!(parse(&["--search-out"])
            .unwrap_err()
            .contains("--search-out"));
    }

    #[test]
    fn quality_flags_parse() {
        let opts = parse(&[
            "--quality-out",
            "/tmp/x/quality.json",
            "--quality-ref",
            "/tmp/x/baseline.json",
        ])
        .unwrap()
        .unwrap();
        assert_eq!(opts.quality_out, Some(PathBuf::from("/tmp/x/quality.json")));
        assert_eq!(
            opts.quality_ref,
            Some(PathBuf::from("/tmp/x/baseline.json"))
        );
        // Parsing alone never touches the level; prepare() bumps it.
        assert_eq!(opts.telemetry, TelemetryLevel::Off);
        assert!(parse(&["--quality-out"])
            .unwrap_err()
            .contains("--quality-out"));
        assert!(parse(&["--quality-ref", "--quick"])
            .unwrap_err()
            .contains("--quality-ref"));
    }

    #[test]
    fn quality_ref_without_quality_out_is_a_usage_error() {
        let mut opts = parse(&["--quality-ref", "/tmp/x/baseline.json"])
            .unwrap()
            .unwrap();
        opts.out_dir = std::env::temp_dir().join("aml_quality_ref_alone_test");
        let err = opts.prepare().unwrap_err();
        assert!(err.contains("--quality-ref requires"), "{err}");
        aml_telemetry::set_level(TelemetryLevel::Off);
        std::fs::remove_dir_all(&opts.out_dir).ok();
    }

    #[test]
    fn crit_out_flag_parses() {
        let opts = parse(&["--crit-out", "/tmp/x/crit.json"]).unwrap().unwrap();
        assert_eq!(opts.crit_out, Some(PathBuf::from("/tmp/x/crit.json")));
        // Parsing alone never touches the level; prepare() bumps it.
        assert_eq!(opts.telemetry, TelemetryLevel::Off);
        assert!(parse(&["--crit-out"]).unwrap_err().contains("--crit-out"));
        assert!(parse(&["--crit-out", "--quick"])
            .unwrap_err()
            .contains("--crit-out"));
    }

    #[test]
    fn fault_and_robustness_flags_parse() {
        let opts = parse(&[
            "--fault-plan",
            "trial_panic@3,trial_slow@7:500ms,sink_fail@2,nan_labels@1",
            "--max-trial-time",
            "250",
            "--min-trials",
            "4",
            "--checkpoint",
            "/tmp/x/run.ckpt",
            "--resume",
            "/tmp/x/old.ckpt",
        ])
        .unwrap()
        .unwrap();
        let plan = opts.fault_plan.as_ref().unwrap();
        assert_eq!(plan.trial_panic, vec![3]);
        assert_eq!(plan.sink_fail, vec![2]);
        assert_eq!(
            opts.max_trial_time,
            Some(std::time::Duration::from_millis(250))
        );
        assert_eq!(opts.min_trials, 4);
        assert_eq!(opts.checkpoint, Some(PathBuf::from("/tmp/x/run.ckpt")));
        assert_eq!(opts.resume, Some(PathBuf::from("/tmp/x/old.ckpt")));
        // The limits propagate into an AutoML config.
        let mut cfg = aml_automl::AutoMlConfig::default();
        opts.apply_automl_limits(&mut cfg);
        assert_eq!(cfg.max_trial_time, opts.max_trial_time);
        assert_eq!(cfg.min_trials, 4);
    }

    #[test]
    fn bad_fault_and_robustness_values_are_usage_errors() {
        assert!(parse(&["--fault-plan", "bogus@1"])
            .unwrap_err()
            .contains("--fault-plan"));
        assert!(parse(&["--max-trial-time", "soon"])
            .unwrap_err()
            .contains("--max-trial-time"));
        assert!(parse(&["--max-trial-time", "0"])
            .unwrap_err()
            .contains("--max-trial-time"));
        assert!(parse(&["--min-trials", "0"])
            .unwrap_err()
            .contains("--min-trials"));
        for flag in ["--fault-plan", "--checkpoint", "--resume"] {
            assert!(parse(&[flag]).unwrap_err().contains(flag), "{flag}");
        }
    }

    #[test]
    fn resume_with_missing_checkpoint_is_a_usage_error() {
        let mut opts = parse(&["--resume", "/nonexistent/run.ckpt"])
            .unwrap()
            .unwrap();
        opts.out_dir = std::env::temp_dir().join("aml_resume_missing_test");
        let err = opts.prepare().unwrap_err();
        assert!(err.contains("--resume"), "{err}");
        std::fs::remove_dir_all(&opts.out_dir).ok();
    }

    #[test]
    fn experiment_loop_is_fresh_without_resume() {
        let opts = parse(&["--checkpoint", "/tmp/x/run.ckpt"])
            .unwrap()
            .unwrap();
        let lp = opts.experiment_loop();
        assert!(lp.rounds().is_empty());
        assert!(lp.completed(0).is_none());
    }

    #[test]
    fn prepare_bumps_telemetry_creates_parents_and_installs_sinks() {
        let dir = std::env::temp_dir().join(format!("aml_prepare_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut opts = parse(&["--emit-bench"]).unwrap().unwrap();
        opts.out_dir = dir.join("out");
        opts.trace_out = Some(dir.join("nested/deeply/trace.json"));
        opts.events_out = Some(dir.join("nested/events.jsonl"));
        opts.ledger_out = Some(dir.join("nested/ledger.jsonl"));
        opts.prepare().expect("prepare succeeds");
        // Export flags imply summary.
        assert_eq!(opts.telemetry, TelemetryLevel::Summary);
        assert!(opts.out_dir.is_dir());
        // Parent dirs were created and the files exist (truncated now,
        // written at finish).
        assert!(dir.join("nested/deeply/trace.json").exists());
        assert!(dir.join("nested/events.jsonl").exists());
        assert!(dir.join("nested/ledger.jsonl").exists());
        assert!(aml_telemetry::sink::active());
        assert!(aml_telemetry::ledger::active());
        // Drain the installed sinks so other tests see a clean slate.
        for (_, result) in aml_telemetry::sink::finish(&aml_telemetry::global().snapshot()) {
            result.unwrap();
        }
        aml_telemetry::set_level(TelemetryLevel::Off);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prepare_reports_unwritable_paths_as_usage_errors() {
        // A path whose parent is a *file* cannot be created.
        let dir = std::env::temp_dir().join(format!("aml_unwritable_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let blocker = dir.join("blocker");
        std::fs::write(&blocker, "not a directory").unwrap();

        let mut opts = parse(&[]).unwrap().unwrap();
        opts.out_dir = dir.clone();
        opts.trace_out = Some(blocker.join("sub/trace.json"));
        let err = opts.prepare().unwrap_err();
        assert!(err.contains("--trace-out"), "{err}");

        let mut opts = parse(&[]).unwrap().unwrap();
        opts.out_dir = blocker.join("out");
        let err = opts.prepare().unwrap_err();
        assert!(err.contains("--out"), "{err}");

        aml_telemetry::set_level(TelemetryLevel::Off);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_values_are_errors() {
        for flag in ["--seed", "--threads", "--out", "--telemetry"] {
            let err = parse(&[flag]).unwrap_err();
            assert!(err.contains(flag), "{flag}: {err}");
            // A following flag is not a value.
            let err = parse(&[flag, "--quick"]).unwrap_err();
            assert!(err.contains(flag), "{flag}: {err}");
        }
    }

    #[test]
    fn invalid_values_are_errors() {
        assert!(parse(&["--seed", "abc"]).unwrap_err().contains("--seed"));
        assert!(parse(&["--threads", "x"])
            .unwrap_err()
            .contains("--threads"));
        assert!(parse(&["--threads", "0"])
            .unwrap_err()
            .contains("--threads"));
        assert!(parse(&["--telemetry", "loud"])
            .unwrap_err()
            .contains("telemetry level"));
    }

    #[test]
    fn help_short_circuits() {
        assert!(parse(&["--help"]).unwrap().is_none());
        assert!(parse(&["--quick", "-h", "--bogus"]).unwrap().is_none());
    }

    #[test]
    fn by_scale_picks_correctly() {
        let mut o = parse(&["--quick"]).unwrap().unwrap();
        assert_eq!(o.by_scale(1, 2, 3), 1);
        o.scale = Scale::Medium;
        assert_eq!(o.by_scale(1, 2, 3), 2);
        o.scale = Scale::Full;
        assert_eq!(o.by_scale(1, 2, 3), 3);
    }

    #[test]
    fn dataset_cache_round_trips() {
        let dir = std::env::temp_dir().join("aml_bench_cache_test");
        std::fs::create_dir_all(&dir).unwrap();
        let key = "test_ds_cache";
        std::fs::remove_file(dir.join(format!("{key}.csv"))).ok();
        let first = cached_dataset(&dir, key, || synth::two_moons(30, 0.1, 1).unwrap());
        let second = cached_dataset(&dir, key, || panic!("must hit the cache"));
        assert_eq!(first.n_rows(), second.n_rows());
        assert_eq!(first.labels(), second.labels());
        std::fs::remove_file(dir.join(format!("{key}.csv"))).ok();
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }
}
