//! Read-side of `crit.json`: parse the critical-path report written by
//! `--crit-out` (or served at `/crit`) back into an
//! [`aml_telemetry::CritReport`], render the chain as an inline SVG for
//! `amlreport`, and diff two reports for `amlcrit --compare`.
//!
//! The parser is strict about the pinned shape (see the byte-pinned
//! golden in `aml-telemetry`'s `crit` module): `active` must be `true`
//! and `schema_version` must match [`aml_telemetry::CRIT_SCHEMA_VERSION`],
//! so a stale artifact from a future schema fails loudly instead of
//! rendering nonsense.

use crate::minijson::{self, Value};
use aml_telemetry::crit::{PhaseStat, ScenarioStats, Segment};
use aml_telemetry::{CritReport, CRIT_SCHEMA_VERSION};
use std::fmt::Write;

/// Parse a `crit.json` document (one object, as written by `--crit-out`).
pub fn parse_crit(text: &str) -> Result<CritReport, String> {
    let v = minijson::parse(text)?;
    match v.get("active") {
        Some(Value::Bool(true)) => {}
        Some(Value::Bool(false)) => {
            return Err("collector was not active (run with --crit-out)".into())
        }
        _ => return Err("missing 'active' field — not a crit.json document".into()),
    }
    let schema = req_u64(&v, "schema_version")?;
    if schema != CRIT_SCHEMA_VERSION as u64 {
        return Err(format!(
            "unsupported crit schema v{schema} (this build reads v{CRIT_SCHEMA_VERSION})"
        ));
    }
    let path = v
        .get("critical_path")
        .and_then(Value::as_arr)
        .ok_or("missing 'critical_path' array")?
        .iter()
        .map(parse_segment)
        .collect::<Result<Vec<Segment>, String>>()?;
    let phases = v
        .get("phases")
        .and_then(Value::as_arr)
        .ok_or("missing 'phases' array")?
        .iter()
        .map(parse_phase)
        .collect::<Result<Vec<PhaseStat>, String>>()?;
    let amdahl = parse_phase(v.get("amdahl").ok_or("missing 'amdahl'")?)?;
    let scenarios = match v.get("scenarios") {
        None | Some(Value::Null) => None,
        Some(s) => Some(parse_scenarios(s)?),
    };
    Ok(CritReport {
        wall_ns: req_u64(&v, "wall_ns")?,
        cpu_ns: v.get("cpu_ns").and_then(Value::as_u64),
        dominant_phase: v
            .get("dominant_phase")
            .and_then(Value::as_str)
            .ok_or("missing 'dominant_phase'")?
            .to_string(),
        critical_path_ns: req_u64(&v, "critical_path_ns")?,
        path,
        phases,
        amdahl,
        scenarios,
        nodes: req_u64(&v, "nodes")? as usize,
        nodes_dropped: req_u64(&v, "nodes_dropped")?,
    })
}

fn req_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-integer '{key}'"))
}

fn parse_segment(v: &Value) -> Result<Segment, String> {
    Ok(Segment {
        name: v
            .get("name")
            .and_then(Value::as_str)
            .ok_or("segment missing 'name'")?
            .to_string(),
        // Ids are rendered as decimal strings: as JSON numbers the
        // 64-bit hashes would round through f64 and lose low bits.
        id: v
            .get("id")
            .and_then(Value::as_str)
            .and_then(|s| s.parse().ok())
            .ok_or("segment missing string 'id'")?,
        depth: req_u64(v, "depth")? as usize,
        total_ns: req_u64(v, "total_ns")?,
        contribution_ns: req_u64(v, "contribution_ns")?,
        parallel: matches!(v.get("parallel"), Some(Value::Bool(true))),
    })
}

fn parse_phase(v: &Value) -> Result<PhaseStat, String> {
    Ok(PhaseStat {
        name: v
            .get("name")
            .and_then(Value::as_str)
            .ok_or("phase missing 'name'")?
            .to_string(),
        total_ns: req_u64(v, "total_ns")?,
        work_ns: req_u64(v, "work_ns")?,
        ideal_ns: req_u64(v, "ideal_ns")?,
        serial_fraction: v
            .get("serial_fraction")
            .and_then(Value::as_f64)
            .unwrap_or(f64::NAN),
        max_speedup: v
            .get("max_speedup")
            .and_then(Value::as_f64)
            .unwrap_or(f64::NAN),
        subtree_spans: req_u64(v, "subtree_spans")?,
    })
}

fn parse_scenarios(v: &Value) -> Result<ScenarioStats, String> {
    let hist = v.get("histogram").ok_or("scenarios missing 'histogram'")?;
    Ok(ScenarioStats {
        total: req_u64(v, "total")?,
        count: req_u64(hist, "count")?,
        sum_ns: req_u64(hist, "sum_ns")?,
        mean_ns: req_u64(hist, "mean_ns")?,
        p50_ns: req_u64(hist, "p50_ns")?,
        p95_ns: req_u64(hist, "p95_ns")?,
        max_ns: req_u64(hist, "max_ns")?,
    })
}

/// The critical-path chain as a self-contained inline SVG: one bar per
/// chain segment, full-width = the dominant phase's total, the solid
/// part = the segment's own contribution. Same self-containment contract
/// as the rest of `amlreport` (no scripts, no external assets).
pub fn render_crit_svg(report: &CritReport) -> String {
    const W: f64 = 640.0;
    const BAR: f64 = 22.0;
    const GAP: f64 = 6.0;
    const LEFT: f64 = 10.0;
    let rows = report.path.len().max(1);
    let height = rows as f64 * (BAR + GAP) + GAP;
    let mut out = String::with_capacity(2048);
    let _ = write!(
        out,
        "<svg viewBox=\"0 0 {W} {height}\" width=\"{W}\" height=\"{height}\" \
         xmlns=\"http://www.w3.org/2000/svg\" role=\"img\">"
    );
    if report.path.is_empty() {
        let _ = write!(
            out,
            "<text x=\"{LEFT}\" y=\"{}\" font-size=\"12\">no critical path recorded</text>",
            GAP + BAR * 0.7
        );
        out.push_str("</svg>");
        return out;
    }
    let scale = (W - 2.0 * LEFT) / report.path[0].total_ns.max(1) as f64;
    for (i, s) in report.path.iter().enumerate() {
        let y = GAP + i as f64 * (BAR + GAP);
        let total_w = s.total_ns as f64 * scale;
        let contrib_w = s.contribution_ns as f64 * scale;
        let fill = if s.parallel { "#7aa2d4" } else { "#d49a6a" };
        let _ = write!(
            out,
            "<rect x=\"{LEFT}\" y=\"{y:.1}\" width=\"{total_w:.1}\" height=\"{BAR}\" \
             fill=\"{fill}\" opacity=\"0.35\"/>\
             <rect x=\"{LEFT}\" y=\"{y:.1}\" width=\"{contrib_w:.1}\" height=\"{BAR}\" \
             fill=\"{fill}\"/>\
             <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\" font-family=\"monospace\">\
             {}{} — {:.2}ms (contrib {:.2}ms)</text>",
            LEFT + 4.0,
            y + BAR * 0.7,
            crate::amlreport::esc(&s.name),
            if s.parallel { " [par]" } else { "" },
            s.total_ns as f64 / 1e6,
            s.contribution_ns as f64 / 1e6,
        );
    }
    out.push_str("</svg>");
    out
}

/// Text diff of two reports for `amlcrit --compare`: the figures someone
/// checks before and after a performance PR.
pub fn render_compare(a: &CritReport, b: &CritReport) -> String {
    let mut out = String::from("critical path compare (A -> B):\n");
    let ms = |ns: u64| ns as f64 / 1e6;
    let line = |out: &mut String, label: &str, x: f64, y: f64, unit: &str| {
        let _ = writeln!(
            out,
            "  {label:<24} {x:>10.2}{unit} -> {y:>10.2}{unit} ({:+.1}%)",
            if x.abs() < f64::EPSILON {
                0.0
            } else {
                (y - x) * 100.0 / x
            }
        );
    };
    line(&mut out, "wall", ms(a.wall_ns), ms(b.wall_ns), "ms");
    line(
        &mut out,
        "critical path",
        ms(a.critical_path_ns),
        ms(b.critical_path_ns),
        "ms",
    );
    if let (Some(ca), Some(cb)) = (a.cpu_ns, b.cpu_ns) {
        line(&mut out, "cpu", ms(ca), ms(cb), "ms");
    }
    let _ = writeln!(
        out,
        "  {:<24} {:>12} -> {:>12}",
        "dominant phase", a.dominant_phase, b.dominant_phase
    );
    line(
        &mut out,
        "run max speedup",
        a.amdahl.max_speedup,
        b.amdahl.max_speedup,
        "x",
    );
    for pa in &a.phases {
        if let Some(pb) = b.phases.iter().find(|p| p.name == pa.name) {
            line(
                &mut out,
                &format!("phase {}", pa.name),
                ms(pa.total_ns),
                ms(pb.total_ns),
                "ms",
            );
        }
    }
    if let (Some(sa), Some(sb)) = (&a.scenarios, &b.scenarios) {
        line(
            &mut out,
            "scenario mean cost",
            sa.mean_ns as f64 / 1e6,
            sb.mean_ns as f64 / 1e6,
            "ms",
        );
        let _ = writeln!(
            out,
            "  {:<24} {:>12} -> {:>12}",
            "scenarios labeled", sa.total, sb.total
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aml_telemetry::crit::analyze;
    use aml_telemetry::tracetree::Node;

    fn sample_report() -> CritReport {
        let node = |id, parent, name: &str, start, total, parallel| Node {
            id,
            parent,
            name: name.to_string(),
            start_ns: start,
            total_ns: total,
            parallel,
        };
        let nodes = vec![
            node(10, 0, "bench.datagen", 0, 2_000_000, false),
            node(11, 10, "netsim.labeling", 100_000, 1_600_000, false),
            node(21, 11, "netsim.scenario", 110_000, 700_000, true),
            node(22, 11, "netsim.scenario", 120_000, 800_000, true),
            node(30, 0, "bench.strategies", 2_100_000, 1_000_000, false),
        ];
        analyze(&nodes, &aml_telemetry::Registry::new().snapshot())
    }

    #[test]
    fn crit_json_round_trips_through_the_parser() {
        let report = sample_report();
        let parsed = parse_crit(&report.render_json()).expect("parses");
        // Floats lose precision to the {:.6} rendering, so compare via a
        // second render: parse -> render is a fixpoint.
        assert_eq!(parsed.render_json(), report.render_json());
        assert_eq!(parsed.path, report.path);
        assert_eq!(parsed.dominant_phase, report.dominant_phase);
        assert_eq!(parsed.nodes, report.nodes);
    }

    #[test]
    fn parser_rejects_inactive_and_foreign_documents() {
        let err = parse_crit("{\"active\":false}\n").unwrap_err();
        assert!(err.contains("--crit-out"), "{err}");
        assert!(parse_crit("{\"workload\":\"x\"}").is_err());
        assert!(parse_crit("not json at all").is_err());
        let future = sample_report()
            .render_json()
            .replace("\"schema_version\":1", "\"schema_version\":99");
        let err = parse_crit(&future).unwrap_err();
        assert!(err.contains("v99"), "{err}");
    }

    #[test]
    fn svg_draws_one_bar_per_segment() {
        let report = sample_report();
        let svg = render_crit_svg(&report);
        assert!(svg.starts_with("<svg"), "{svg}");
        // Two rects per segment: total (faded) + contribution (solid).
        assert_eq!(svg.matches("<rect").count(), 2 * report.path.len());
        assert!(svg.contains("bench.datagen"), "{svg}");
        assert!(svg.contains("[par]"), "{svg}");
        let empty = render_crit_svg(&analyze(&[], &aml_telemetry::Registry::new().snapshot()));
        assert!(empty.contains("no critical path"), "{empty}");
    }

    #[test]
    fn compare_reports_deltas_per_phase() {
        let a = sample_report();
        let mut b = a.clone();
        b.wall_ns = 1_500_000;
        b.critical_path_ns = 1_000_000;
        let text = render_compare(&a, &b);
        assert!(text.contains("wall"), "{text}");
        assert!(text.contains("-50.0%"), "{text}");
        assert!(text.contains("phase bench.datagen"), "{text}");
        assert!(text.contains("dominant phase"), "{text}");
    }
}
