//! `BENCH_<workload>.json`: the perf record one benchmark run leaves
//! behind, and the unit `perfgate` compares across commits.
//!
//! The report is distilled from the run manifest (DESIGN.md §6): wall
//! time, per-span totals, counter totals and their per-second throughput,
//! histogram quantiles, and — when the `alloc-track` feature is on —
//! allocation totals. Keys follow the telemetry naming scheme
//! (`crate.component.action`); the compare layer flattens them to metric
//! ids like `span:bench.datagen` (see [`crate::gate`]).
//!
//! Serialization is hand-rolled (like the manifest) and parsing uses
//! [`crate::minijson`], so the format works identically with or without
//! a real serde_json in the build.

use aml_telemetry::Manifest;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Schema version stamped into every report.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// One span's aggregate in the report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSpan {
    /// Span name.
    pub name: String,
    /// Closed calls.
    pub calls: u64,
    /// Total wall time, seconds.
    pub total_s: f64,
    /// Mean per call, milliseconds.
    pub mean_ms: f64,
    /// Longest call, milliseconds.
    pub max_ms: f64,
}

/// One histogram's summary in the report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchHist {
    /// Histogram name.
    pub name: String,
    /// Observations.
    pub count: u64,
    /// Mean observation.
    pub mean: u64,
    /// Approximate median.
    pub p50: u64,
    /// Approximate 95th percentile.
    pub p95: u64,
    /// Largest observation.
    pub max: u64,
}

/// Allocation totals (present when the run tracked allocations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchAlloc {
    /// Total bytes allocated over the run.
    pub bytes: u64,
    /// Total allocations over the run.
    pub count: u64,
    /// High-water mark of live bytes (RSS proxy).
    pub peak_bytes: u64,
}

/// The full perf record of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Workload (benchmark binary) name.
    pub workload: String,
    /// Master RNG seed.
    pub seed: u64,
    /// Problem-size multiplier.
    pub scale: f64,
    /// Worker threads.
    pub threads: u64,
    /// `git describe` of the build.
    pub git: String,
    /// Total wall time, seconds.
    pub wall_time_s: f64,
    /// Sum of top-level `bench.*` phase spans, seconds — should track
    /// `wall_time_s` closely; a widening gap means untimed work.
    pub top_span_total_s: f64,
    /// Per-span aggregates, sorted by name.
    pub spans: Vec<BenchSpan>,
    /// Counter totals, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Counter totals divided by wall time (`<counter>` per second),
    /// excluding `alloc.*`.
    pub throughput: Vec<(String, f64)>,
    /// Histogram summaries, sorted by name.
    pub histograms: Vec<BenchHist>,
    /// Allocation totals, when tracked.
    pub alloc: Option<BenchAlloc>,
}

impl BenchReport {
    /// The canonical file name for a workload's report.
    pub fn file_name(workload: &str) -> String {
        format!("BENCH_{workload}.json")
    }

    /// Distill a report from a run manifest.
    pub fn from_manifest(manifest: &Manifest) -> BenchReport {
        let spans: Vec<BenchSpan> = manifest
            .snapshot
            .spans
            .iter()
            .map(|s| BenchSpan {
                name: s.name.clone(),
                calls: s.calls,
                total_s: s.total_secs(),
                mean_ms: s.mean_ns() as f64 / 1e6,
                max_ms: s.max_ns as f64 / 1e6,
            })
            .collect();
        let top_span_total_s = spans
            .iter()
            .filter(|s| s.name.starts_with("bench."))
            .map(|s| s.total_s)
            .sum();
        let counters = manifest.snapshot.counters.clone();
        let throughput = if manifest.wall_time_s > 0.0 {
            counters
                .iter()
                .filter(|(name, _)| !name.starts_with("alloc."))
                .map(|(name, v)| (name.clone(), *v as f64 / manifest.wall_time_s))
                .collect()
        } else {
            Vec::new()
        };
        let find = |name: &str| counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
        let alloc = match (
            find("alloc.bytes"),
            find("alloc.count"),
            find("alloc.peak_bytes"),
        ) {
            (Some(bytes), Some(count), Some(peak_bytes)) => Some(BenchAlloc {
                bytes,
                count,
                peak_bytes,
            }),
            _ => None,
        };
        BenchReport {
            workload: manifest.binary.clone(),
            seed: manifest.seed,
            scale: manifest.scale,
            threads: manifest.threads as u64,
            git: manifest.git.clone(),
            wall_time_s: manifest.wall_time_s,
            top_span_total_s,
            spans,
            counters,
            throughput,
            histograms: manifest
                .snapshot
                .histograms
                .iter()
                .map(|h| BenchHist {
                    name: h.name.clone(),
                    count: h.count,
                    mean: h.mean(),
                    p50: h.p50,
                    p95: h.p95,
                    max: h.max,
                })
                .collect(),
            alloc,
        }
    }

    /// Serialize to pretty JSON with stable key order.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": {BENCH_SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"workload\": {},", json_str(&self.workload));
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"scale\": {},", json_f64(self.scale));
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let _ = writeln!(out, "  \"git\": {},", json_str(&self.git));
        let _ = writeln!(out, "  \"wall_time_s\": {},", json_f64(self.wall_time_s));
        let _ = writeln!(
            out,
            "  \"top_span_total_s\": {},",
            json_f64(self.top_span_total_s)
        );

        out.push_str("  \"spans\": {");
        for (i, s) in self.spans.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {}: {{\"calls\": {}, \"total_s\": {}, \"mean_ms\": {}, \"max_ms\": {}}}",
                comma(i),
                json_str(&s.name),
                s.calls,
                json_f64(s.total_s),
                json_f64(s.mean_ms),
                json_f64(s.max_ms),
            );
        }
        out.push_str(close_map(self.spans.is_empty()));

        out.push_str("  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            let _ = write!(out, "{}\n    {}: {}", comma(i), json_str(name), value);
        }
        out.push_str(close_map(self.counters.is_empty()));

        out.push_str("  \"throughput\": {");
        for (i, (name, value)) in self.throughput.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {}: {}",
                comma(i),
                json_str(name),
                json_f64(*value)
            );
        }
        out.push_str(close_map(self.throughput.is_empty()));

        out.push_str("  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {}: {{\"count\": {}, \"mean\": {}, \"p50\": {}, \"p95\": {}, \"max\": {}}}",
                comma(i),
                json_str(&h.name),
                h.count,
                h.mean,
                h.p50,
                h.p95,
                h.max,
            );
        }
        out.push_str(close_map(self.histograms.is_empty()));

        match &self.alloc {
            Some(a) => {
                let _ = writeln!(
                    out,
                    "  \"alloc\": {{\"bytes\": {}, \"count\": {}, \"peak_bytes\": {}}}",
                    a.bytes, a.count, a.peak_bytes
                );
            }
            None => out.push_str("  \"alloc\": null\n"),
        }
        out.push_str("}\n");
        out
    }

    /// Parse a report back from JSON (see [`crate::minijson`]).
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let v = crate::minijson::parse(text)?;
        let version = field_u64(&v, "schema_version")?;
        if version != BENCH_SCHEMA_VERSION {
            return Err(format!(
                "unsupported BENCH schema_version {version} (expected {BENCH_SCHEMA_VERSION})"
            ));
        }
        let spans = map_entries(&v, "spans")?
            .iter()
            .map(|(name, s)| {
                Ok(BenchSpan {
                    name: name.clone(),
                    calls: field_u64(s, "calls")?,
                    total_s: field_f64(s, "total_s")?,
                    mean_ms: field_f64(s, "mean_ms")?,
                    max_ms: field_f64(s, "max_ms")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let counters = map_entries(&v, "counters")?
            .iter()
            .map(|(name, c)| {
                c.as_u64()
                    .map(|n| (name.clone(), n))
                    .ok_or_else(|| format!("counter '{name}' is not an integer"))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let throughput = map_entries(&v, "throughput")?
            .iter()
            .map(|(name, t)| {
                t.as_f64()
                    .map(|n| (name.clone(), n))
                    .ok_or_else(|| format!("throughput '{name}' is not a number"))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let histograms = map_entries(&v, "histograms")?
            .iter()
            .map(|(name, h)| {
                Ok(BenchHist {
                    name: name.clone(),
                    count: field_u64(h, "count")?,
                    mean: field_u64(h, "mean")?,
                    p50: field_u64(h, "p50")?,
                    p95: field_u64(h, "p95")?,
                    max: field_u64(h, "max")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let alloc = match v.get("alloc") {
            None | Some(crate::minijson::Value::Null) => None,
            Some(a) => Some(BenchAlloc {
                bytes: field_u64(a, "bytes")?,
                count: field_u64(a, "count")?,
                peak_bytes: field_u64(a, "peak_bytes")?,
            }),
        };
        Ok(BenchReport {
            workload: field_str(&v, "workload")?,
            seed: field_u64(&v, "seed")?,
            scale: field_f64(&v, "scale")?,
            threads: field_u64(&v, "threads")?,
            git: field_str(&v, "git")?,
            wall_time_s: field_f64(&v, "wall_time_s")?,
            top_span_total_s: field_f64(&v, "top_span_total_s")?,
            spans,
            counters,
            throughput,
            histograms,
            alloc,
        })
    }

    /// Load a report from a file.
    pub fn load(path: &Path) -> Result<BenchReport, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        BenchReport::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Write `BENCH_<workload>.json` into `dir`.
    pub fn write(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(BenchReport::file_name(&self.workload));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Element-wise median across repeated runs of the same workload: each
/// numeric field becomes the median of its values across `reports`
/// (spans/counters/histograms matched by name; entries missing from any
/// repeat are dropped). Identity fields come from the first report.
pub fn median_report(reports: &[BenchReport]) -> Option<BenchReport> {
    use crate::gate::percentile;
    let first = reports.first()?;
    if reports.len() == 1 {
        return Some(first.clone());
    }
    let med = |values: Vec<f64>| -> f64 {
        let mut sorted = values;
        sorted.sort_by(f64::total_cmp);
        percentile(&sorted, 0.5)
    };
    let med_u = |values: Vec<u64>| -> u64 {
        med(values.into_iter().map(|v| v as f64).collect()).round() as u64
    };

    let spans = first
        .spans
        .iter()
        .filter_map(|s| {
            let all: Vec<&BenchSpan> = reports
                .iter()
                .filter_map(|r| r.spans.iter().find(|o| o.name == s.name))
                .collect();
            (all.len() == reports.len()).then(|| BenchSpan {
                name: s.name.clone(),
                calls: med_u(all.iter().map(|o| o.calls).collect()),
                total_s: med(all.iter().map(|o| o.total_s).collect()),
                mean_ms: med(all.iter().map(|o| o.mean_ms).collect()),
                max_ms: med(all.iter().map(|o| o.max_ms).collect()),
            })
        })
        .collect();
    let counters = first
        .counters
        .iter()
        .filter_map(|(name, _)| {
            let all: Vec<u64> = reports
                .iter()
                .filter_map(|r| r.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v))
                .collect();
            (all.len() == reports.len()).then(|| (name.clone(), med_u(all)))
        })
        .collect();
    let throughput = first
        .throughput
        .iter()
        .filter_map(|(name, _)| {
            let all: Vec<f64> = reports
                .iter()
                .filter_map(|r| {
                    r.throughput
                        .iter()
                        .find(|(n, _)| n == name)
                        .map(|(_, v)| *v)
                })
                .collect();
            (all.len() == reports.len()).then(|| (name.clone(), med(all)))
        })
        .collect();
    let histograms = first
        .histograms
        .iter()
        .filter_map(|h| {
            let all: Vec<&BenchHist> = reports
                .iter()
                .filter_map(|r| r.histograms.iter().find(|o| o.name == h.name))
                .collect();
            (all.len() == reports.len()).then(|| BenchHist {
                name: h.name.clone(),
                count: med_u(all.iter().map(|o| o.count).collect()),
                mean: med_u(all.iter().map(|o| o.mean).collect()),
                p50: med_u(all.iter().map(|o| o.p50).collect()),
                p95: med_u(all.iter().map(|o| o.p95).collect()),
                max: med_u(all.iter().map(|o| o.max).collect()),
            })
        })
        .collect();
    let alloc = if reports.iter().all(|r| r.alloc.is_some()) {
        let all: Vec<BenchAlloc> = reports.iter().filter_map(|r| r.alloc).collect();
        Some(BenchAlloc {
            bytes: med_u(all.iter().map(|a| a.bytes).collect()),
            count: med_u(all.iter().map(|a| a.count).collect()),
            peak_bytes: med_u(all.iter().map(|a| a.peak_bytes).collect()),
        })
    } else {
        None
    };

    Some(BenchReport {
        wall_time_s: med(reports.iter().map(|r| r.wall_time_s).collect()),
        top_span_total_s: med(reports.iter().map(|r| r.top_span_total_s).collect()),
        spans,
        counters,
        throughput,
        histograms,
        alloc,
        ..first.clone()
    })
}

fn comma(i: usize) -> &'static str {
    if i == 0 {
        ""
    } else {
        ","
    }
}

fn close_map(empty: bool) -> &'static str {
    if empty {
        "},\n"
    } else {
        "\n  },\n"
    }
}

fn field_u64(v: &crate::minijson::Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(|f| f.as_u64())
        .ok_or_else(|| format!("missing or non-integer field '{key}'"))
}

fn field_f64(v: &crate::minijson::Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(|f| f.as_f64())
        .ok_or_else(|| format!("missing or non-numeric field '{key}'"))
}

fn field_str(v: &crate::minijson::Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(|f| f.as_str())
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field '{key}'"))
}

fn map_entries<'a>(
    v: &'a crate::minijson::Value,
    key: &str,
) -> Result<&'a [(String, crate::minijson::Value)], String> {
    v.get(key)
        .and_then(|m| m.as_obj())
        .ok_or_else(|| format!("missing or non-object field '{key}'"))
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Fixed-precision finite JSON number (6 decimals: µs resolution for
/// seconds fields); non-finite becomes `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aml_telemetry::{HistSnapshot, Snapshot, SpanSnapshot};

    pub(crate) fn sample_report() -> BenchReport {
        let manifest = Manifest {
            binary: "table1_scream".into(),
            seed: 1,
            scale: 0.05,
            threads: 2,
            git: "abc1234".into(),
            telemetry: "summary".into(),
            wall_time_s: 10.0,
            snapshot: Snapshot {
                spans: vec![
                    SpanSnapshot {
                        name: "automl.search.run".into(),
                        calls: 4,
                        total_ns: 2_000_000_000,
                        max_ns: 900_000_000,
                        min_ns: 100_000_000,
                    },
                    SpanSnapshot {
                        name: "bench.datagen".into(),
                        calls: 1,
                        total_ns: 7_000_000_000,
                        max_ns: 7_000_000_000,
                        min_ns: 7_000_000_000,
                    },
                    SpanSnapshot {
                        name: "bench.strategies".into(),
                        calls: 1,
                        total_ns: 2_500_000_000,
                        max_ns: 2_500_000_000,
                        min_ns: 2_500_000_000,
                    },
                ],
                counters: vec![
                    ("alloc.bytes".into(), 4096),
                    ("alloc.count".into(), 17),
                    ("alloc.peak_bytes".into(), 2048),
                    ("netsim.sim.events".into(), 50_000),
                ],
                gauges: vec![],
                histograms: vec![HistSnapshot {
                    name: "automl.fit_us[forest]".into(),
                    count: 4,
                    sum: 400,
                    min: 50,
                    max: 200,
                    p50: 127,
                    p95: 255,
                    buckets: vec![],
                }],
            },
        };
        BenchReport::from_manifest(&manifest)
    }

    #[test]
    fn from_manifest_distills_all_sections() {
        let r = sample_report();
        assert_eq!(r.workload, "table1_scream");
        assert_eq!(r.spans.len(), 3);
        // top spans = bench.datagen (7s) + bench.strategies (2.5s).
        assert!(
            (r.top_span_total_s - 9.5).abs() < 1e-9,
            "{}",
            r.top_span_total_s
        );
        // Throughput excludes alloc.* counters.
        assert_eq!(r.throughput.len(), 1);
        assert_eq!(r.throughput[0].0, "netsim.sim.events");
        assert!((r.throughput[0].1 - 5000.0).abs() < 1e-9);
        // Alloc counters surface as the alloc block.
        let alloc = r.alloc.unwrap();
        assert_eq!(alloc.bytes, 4096);
        assert_eq!(alloc.count, 17);
        assert_eq!(alloc.peak_bytes, 2048);
    }

    #[test]
    fn json_round_trips_exactly() {
        let r = sample_report();
        let parsed = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
        // And a report without alloc tracking.
        let mut no_alloc = r.clone();
        no_alloc.alloc = None;
        assert_eq!(
            BenchReport::from_json(&no_alloc.to_json()).unwrap().alloc,
            None
        );
    }

    #[test]
    fn write_and_load_use_the_canonical_name() {
        let dir = std::env::temp_dir().join(format!("aml_bench_report_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let r = sample_report();
        let path = r.write(&dir).unwrap();
        assert!(path.ends_with("BENCH_table1_scream.json"), "{path:?}");
        assert_eq!(BenchReport::load(&path).unwrap(), r);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn schema_version_mismatch_is_rejected() {
        let bad = sample_report()
            .to_json()
            .replace("\"schema_version\": 1", "\"schema_version\": 99");
        let err = BenchReport::from_json(&bad).unwrap_err();
        assert!(err.contains("schema_version 99"), "{err}");
    }

    #[test]
    fn median_of_three_runs_takes_middle_values() {
        let mk = |wall: f64, datagen: f64| {
            let mut r = sample_report();
            r.wall_time_s = wall;
            r.spans[1].total_s = datagen;
            r
        };
        let merged = median_report(&[mk(10.0, 7.0), mk(30.0, 8.0), mk(20.0, 6.0)]).unwrap();
        assert_eq!(merged.wall_time_s, 20.0);
        assert_eq!(merged.spans[1].total_s, 7.0);
        // Single run passes through unchanged; empty input is None.
        assert_eq!(median_report(&[mk(1.0, 1.0)]).unwrap().wall_time_s, 1.0);
        assert!(median_report(&[]).is_none());
    }
}
