//! Read-side of search telemetry: re-derive the search-observability
//! report (coverage, rung funnels, fANOVA-lite importance) from a
//! `ledger.jsonl`, render SVG panels for `amlreport`, and diff two
//! reports for `amlsearch --compare`.
//!
//! The heavy lifting lives in `aml_telemetry::searchview::analyze` —
//! this module only reconstructs its inputs (the declared
//! [`SpaceFamily`] descriptors from the once-per-run `search_space`
//! line, one trial record per `trial_started` line settled by the
//! matching outcome line) and reuses the identical pure analysis, so
//! `amlsearch ledger.jsonl` reproduces `--search-out`'s `search.json`
//! byte for byte.

use crate::minijson::{self, Value};
use aml_telemetry::searchview::{analyze, DimReport, FamilyReport, RungReport, TrialRec};
use aml_telemetry::{ParamValue, SearchReport, SpaceDim, SpaceFamily, LEDGER_SCHEMA_VERSION};
use std::fmt::Write;

fn str_field(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field '{key}'"))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-integer field '{key}'"))
}

/// Numeric field; a JSON `null` (the ledger encoding of a non-finite
/// float) reads back as NaN.
fn f64_field(v: &Value, key: &str) -> Result<f64, String> {
    match v.get(key) {
        Some(Value::Null) => Ok(f64::NAN),
        Some(n) => n
            .as_f64()
            .ok_or_else(|| format!("non-numeric field '{key}'")),
        None => Err(format!("missing field '{key}'")),
    }
}

/// Re-type one rendered parameter value. The ledger writes `Int` params
/// as bare integers and `Float` params via the shortest float form, so
/// integral numbers read back as `Int` — the distinction only feeds the
/// grouping signature, which stays internally consistent either way.
fn param_value(v: &Value) -> ParamValue {
    match v {
        Value::Num(n) if n.fract() == 0.0 && n.abs() < 9.0e15 => ParamValue::Int(*n as i64),
        Value::Num(n) => ParamValue::Float(*n),
        Value::Str(s) => ParamValue::Cat(s.clone()),
        _ => ParamValue::Float(f64::NAN),
    }
}

/// The typed `params` map of a `trial_started` line; empty for ledgers
/// written before the field existed (pre-search-observability runs).
fn parse_params(v: &Value) -> Vec<(String, ParamValue)> {
    v.get("params")
        .and_then(Value::as_obj)
        .map(|members| {
            members
                .iter()
                .map(|(name, value)| (name.clone(), param_value(value)))
                .collect()
        })
        .unwrap_or_default()
}

fn parse_space(v: &Value) -> Result<Vec<SpaceFamily>, String> {
    v.get("families")
        .and_then(Value::as_arr)
        .ok_or("missing 'families' array")?
        .iter()
        .map(|f| {
            Ok(SpaceFamily {
                family: str_field(f, "family")?,
                dims: f
                    .get("dims")
                    .and_then(Value::as_arr)
                    .ok_or("family missing 'dims' array")?
                    .iter()
                    .map(|d| {
                        Ok(SpaceDim {
                            name: str_field(d, "name")?,
                            kind: str_field(d, "kind")?,
                            scale: str_field(d, "scale")?,
                            lo: f64_field(d, "lo")?,
                            hi: f64_field(d, "hi")?,
                            choices: d
                                .get("choices")
                                .and_then(Value::as_arr)
                                .ok_or("dim missing 'choices' array")?
                                .iter()
                                .map(|c| {
                                    c.as_str()
                                        .map(str::to_string)
                                        .ok_or_else(|| "non-string choice".to_string())
                                })
                                .collect::<Result<Vec<_>, String>>()?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?,
            })
        })
        .collect()
}

/// Settle the most recent unsettled record for `(trial, rung, family)` —
/// trial ids repeat across the many searches of one run, so matching
/// from the back pairs each outcome with its own start (the same rule
/// as the live collector).
fn settle(
    trials: &mut [TrialRec],
    trial: u64,
    rung: u64,
    family: &str,
    score: Option<f64>,
    failed: Option<String>,
) {
    if let Some(rec) = trials.iter_mut().rev().find(|r| {
        r.trial == trial
            && r.rung == rung
            && r.family == family
            && r.score.is_none()
            && r.failed.is_none()
    }) {
        rec.score = score;
        rec.failed = failed;
    }
}

/// Parse the text of one `ledger.jsonl` and compute its search report.
/// The first line must be a `{"type":"ledger", ...}` header with a
/// supported schema version; unknown event types are skipped (additive
/// schema changes don't bump the version).
pub fn parse_search_ledger(text: &str) -> Result<SearchReport, String> {
    let mut lines = text.lines().enumerate();
    let (_, header_line) = lines.next().ok_or("empty ledger file")?;
    let header = minijson::parse(header_line).map_err(|e| format!("line 1: {e}"))?;
    if str_field(&header, "type")? != "ledger" {
        return Err("line 1: not a ledger header".into());
    }
    let version = u64_field(&header, "schema_version")?;
    if version != LEDGER_SCHEMA_VERSION {
        return Err(format!(
            "unsupported ledger schema_version {version} (expected {LEDGER_SCHEMA_VERSION})"
        ));
    }
    let mut space: Vec<SpaceFamily> = Vec::new();
    let mut trials: Vec<TrialRec> = Vec::new();
    for (idx, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let v = minijson::parse(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        let event = str_field(&v, "type").map_err(|e| format!("line {}: {e}", idx + 1))?;
        let parsed: Result<(), String> = (|| {
            match event.as_str() {
                // First wins, like the live collector: a resumed run
                // that accidentally re-emitted keeps the original.
                "search_space" if space.is_empty() => {
                    space = parse_space(&v)?;
                }
                "trial_started" => trials.push(TrialRec {
                    trial: u64_field(&v, "trial")?,
                    rung: u64_field(&v, "rung")?,
                    family: str_field(&v, "family")?,
                    params: parse_params(&v),
                    score: None,
                    failed: None,
                }),
                "trial_finished" => settle(
                    &mut trials,
                    u64_field(&v, "trial")?,
                    u64_field(&v, "rung")?,
                    &str_field(&v, "family")?,
                    Some(f64_field(&v, "score")?),
                    None,
                ),
                "trial_failed" => settle(
                    &mut trials,
                    u64_field(&v, "trial")?,
                    u64_field(&v, "rung")?,
                    &str_field(&v, "family")?,
                    None,
                    Some(str_field(&v, "reason").unwrap_or_else(|_| "error".into())),
                ),
                _ => {}
            }
            Ok(())
        })();
        parsed.map_err(|e| format!("line {}: {e}", idx + 1))?;
    }
    Ok(analyze(&space, &trials, 0))
}

/// Optional score field: JSON `null` reads back as `None`.
fn opt_f64_field(v: &Value, key: &str) -> Result<Option<f64>, String> {
    match v.get(key) {
        Some(Value::Null) => Ok(None),
        Some(n) => n
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("non-numeric field '{key}'")),
        None => Err(format!("missing field '{key}'")),
    }
}

/// Parse a rendered `search.json` artifact back into a [`SearchReport`].
/// Strict, like `critview`: refuses inactive documents (a `/search`
/// probe of a disarmed collector) and foreign/newer schema versions
/// loudly instead of guessing. Round-trips byte-for-byte:
/// `parse_search_json(r.render_json()).render_json() == r.render_json()`.
pub fn parse_search_json(text: &str) -> Result<SearchReport, String> {
    let v = minijson::parse(text.trim_end())?;
    match v.get("active") {
        Some(Value::Bool(true)) => {}
        Some(Value::Bool(false)) => {
            return Err("inactive document: the collector was disarmed (run with --search-out, or point amlsearch at a ledger.jsonl)".into())
        }
        _ => return Err("not a search.json document (missing 'active')".into()),
    }
    let version = u64_field(&v, "schema_version")?;
    if version > u64::from(aml_telemetry::SEARCH_SCHEMA_VERSION) {
        return Err(format!(
            "schema_version {version} is newer than this amlsearch ({})",
            aml_telemetry::SEARCH_SCHEMA_VERSION
        ));
    }
    let trials = v.get("trials").ok_or("missing 'trials' object")?;
    let rungs = v
        .get("rungs")
        .and_then(Value::as_arr)
        .ok_or("missing 'rungs' array")?
        .iter()
        .map(|r| {
            Ok(RungReport {
                rung: u64_field(r, "rung")?,
                started: u64_field(r, "started")?,
                finished: u64_field(r, "finished")?,
                failed: u64_field(r, "failed")?,
                promoted: u64_field(r, "promoted")?,
                eliminated: u64_field(r, "eliminated")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let families = v
        .get("families")
        .and_then(Value::as_arr)
        .ok_or("missing 'families' array")?
        .iter()
        .map(|f| {
            Ok(FamilyReport {
                family: str_field(f, "family")?,
                configs: u64_field(f, "configs")?,
                fits: u64_field(f, "fits")?,
                failed: u64_field(f, "failed")?,
                best_score: opt_f64_field(f, "best_score")?,
                mean_score: opt_f64_field(f, "mean_score")?,
                dims: f
                    .get("dims")
                    .and_then(Value::as_arr)
                    .ok_or("family missing 'dims' array")?
                    .iter()
                    .map(parse_dim_report)
                    .collect::<Result<Vec<_>, String>>()?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(SearchReport {
        started: u64_field(trials, "started")?,
        finished: u64_field(trials, "finished")?,
        failed: u64_field(trials, "failed")?,
        rungs,
        families,
        dropped: u64_field(&v, "dropped")?,
    })
}

fn parse_dim_report(d: &Value) -> Result<DimReport, String> {
    Ok(DimReport {
        name: str_field(d, "name")?,
        kind: str_field(d, "kind")?,
        scale: str_field(d, "scale")?,
        lo: f64_field(d, "lo")?,
        hi: f64_field(d, "hi")?,
        choices: d
            .get("choices")
            .and_then(Value::as_arr)
            .ok_or("dim missing 'choices' array")?
            .iter()
            .map(|c| {
                c.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "non-string choice".to_string())
            })
            .collect::<Result<Vec<_>, String>>()?,
        bins: u64_field(d, "bins")? as usize,
        hist: d
            .get("hist")
            .and_then(Value::as_arr)
            .ok_or("dim missing 'hist' array")?
            .iter()
            .map(|c| c.as_u64().ok_or_else(|| "non-integer hist count".into()))
            .collect::<Result<Vec<_>, String>>()?,
        visited: u64_field(d, "visited")? as usize,
        coverage: f64_field(d, "coverage")?,
        importance: f64_field(d, "importance")?,
        points: d
            .get("points")
            .and_then(Value::as_arr)
            .ok_or("dim missing 'points' array")?
            .iter()
            .map(|p| match p.as_arr() {
                Some([t, s]) => Ok((
                    t.as_f64().ok_or("non-numeric point position")?,
                    s.as_f64().ok_or("non-numeric point score")?,
                )),
                _ => Err("point is not a [position, score] pair".to_string()),
            })
            .collect::<Result<Vec<_>, String>>()?,
    })
}

/// Parse either artifact the search pipeline produces: a `ledger.jsonl`
/// (the report is recomputed through [`analyze`]) or a rendered
/// `search.json` (the report is read back verbatim), told apart by the
/// first line's JSON shape.
pub fn parse_search_artifact(text: &str) -> Result<SearchReport, String> {
    let first = text.lines().next().unwrap_or("");
    let looks_rendered = minijson::parse(first)
        .ok()
        .is_some_and(|v| v.get("active").is_some());
    if looks_rendered {
        parse_search_json(text)
    } else {
        parse_search_ledger(text)
    }
}

/// Hyperparameter importance as a self-contained inline SVG: one
/// horizontal bar per `family.dimension`, sorted by importance, the
/// faded background showing the dimension's coverage. Same
/// self-containment contract as the rest of `amlreport` (no scripts,
/// no external assets).
pub fn render_importance_svg(report: &SearchReport, max_rows: usize) -> String {
    const W: f64 = 640.0;
    const BAR: f64 = 18.0;
    const GAP: f64 = 5.0;
    const LEFT: f64 = 10.0;
    let mut rows: Vec<(String, f64, f64)> = report
        .families
        .iter()
        .flat_map(|f| {
            f.dims
                .iter()
                .map(move |d| (format!("{}.{}", f.family, d.name), d.importance, d.coverage))
        })
        .collect();
    rows.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    rows.truncate(max_rows.max(1));
    let n = rows.len().max(1);
    let height = n as f64 * (BAR + GAP) + GAP;
    let mut out = String::with_capacity(2048);
    let _ = write!(
        out,
        "<svg viewBox=\"0 0 {W} {height}\" width=\"{W}\" height=\"{height}\" \
         xmlns=\"http://www.w3.org/2000/svg\" role=\"img\">"
    );
    if rows.is_empty() {
        let _ = write!(
            out,
            "<text x=\"{LEFT}\" y=\"{}\" font-size=\"12\">no search telemetry recorded</text>",
            GAP + BAR * 0.7
        );
        out.push_str("</svg>");
        return out;
    }
    let scale = W - 2.0 * LEFT;
    for (i, (name, importance, coverage)) in rows.iter().enumerate() {
        let y = GAP + i as f64 * (BAR + GAP);
        let cov_w = (coverage * scale).max(1.0);
        let imp_w = (importance * scale).max(1.0);
        let _ = write!(
            out,
            "<rect x=\"{LEFT}\" y=\"{y:.1}\" width=\"{cov_w:.1}\" height=\"{BAR}\" \
             fill=\"#7aa2d4\" opacity=\"0.25\"/>\
             <rect x=\"{LEFT}\" y=\"{y:.1}\" width=\"{imp_w:.1}\" height=\"{BAR}\" \
             fill=\"#d49a6a\"/>\
             <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\" font-family=\"monospace\">\
             {} — importance {:.3}, coverage {:.0}%</text>",
            LEFT + 4.0,
            y + BAR * 0.7,
            crate::amlreport::esc(name),
            importance,
            coverage * 100.0,
        );
    }
    out.push_str("</svg>");
    out
}

/// One dimension's `(position, rung-top score)` scatter as a small
/// self-contained SVG panel: x is the normalized position in the
/// declared range, y the score. The panels flow inline in `amlreport`.
pub fn render_dim_scatter_svg(family: &str, dim: &DimReport) -> String {
    const W: f64 = 220.0;
    const H: f64 = 140.0;
    const PAD: f64 = 10.0;
    const TOP: f64 = 24.0;
    let mut out = String::with_capacity(1024);
    let _ = write!(
        out,
        "<svg viewBox=\"0 0 {W} {H}\" width=\"{W}\" height=\"{H}\" \
         xmlns=\"http://www.w3.org/2000/svg\" role=\"img\">\
         <rect x=\"0\" y=\"0\" width=\"{W}\" height=\"{H}\" fill=\"#fbfbfb\" stroke=\"#d5dbe0\"/>\
         <text x=\"{PAD}\" y=\"16\" font-size=\"11\" font-family=\"monospace\">{} ({}, {})</text>",
        crate::amlreport::esc(&format!("{family}.{}", dim.name)),
        crate::amlreport::esc(&dim.kind),
        crate::amlreport::esc(&dim.scale),
    );
    if dim.points.is_empty() {
        let _ = write!(
            out,
            "<text x=\"{PAD}\" y=\"{:.1}\" font-size=\"11\">no scored configurations</text>",
            H / 2.0
        );
        out.push_str("</svg>");
        return out;
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for (_, s) in &dim.points {
        lo = lo.min(*s);
        hi = hi.max(*s);
    }
    if !(hi - lo).is_finite() || hi - lo < 1e-9 {
        // A flat (or single-point) score range: center the points.
        lo -= 0.5;
        hi += 0.5;
    }
    for (t, s) in &dim.points {
        let x = PAD + t * (W - 2.0 * PAD);
        let y = H - PAD - (s - lo) / (hi - lo) * (H - PAD - TOP);
        let _ = write!(
            out,
            "<circle cx=\"{x:.1}\" cy=\"{y:.1}\" r=\"2.5\" fill=\"#2f6fb4\" opacity=\"0.6\"/>"
        );
    }
    out.push_str("</svg>");
    out
}

/// Text diff of two reports for `amlsearch --compare`: the figures
/// someone checks when changing the sampler or the search budget.
pub fn render_compare(a: &SearchReport, b: &SearchReport) -> String {
    let mut out = String::from("search compare (A -> B):\n");
    let line = |out: &mut String, label: &str, x: f64, y: f64, unit: &str| {
        let _ = writeln!(
            out,
            "  {label:<24} {x:>10.2}{unit} -> {y:>10.2}{unit} ({:+.1}%)",
            if x.abs() < f64::EPSILON {
                0.0
            } else {
                (y - x) * 100.0 / x
            }
        );
    };
    line(
        &mut out,
        "fits started",
        a.started as f64,
        b.started as f64,
        "",
    );
    line(
        &mut out,
        "fits finished",
        a.finished as f64,
        b.finished as f64,
        "",
    );
    line(
        &mut out,
        "fits failed",
        a.failed as f64,
        b.failed as f64,
        "",
    );
    let _ = writeln!(
        out,
        "  {:<24} {:>10} -> {:>10}",
        "rungs",
        a.rungs.len(),
        b.rungs.len()
    );
    for fa in &a.families {
        let Some(fb) = b.families.iter().find(|f| f.family == fa.family) else {
            continue;
        };
        if let (Some(ba), Some(bb)) = (fa.best_score, fb.best_score) {
            line(&mut out, &format!("{} best", fa.family), ba, bb, "");
        }
        let mean_cov = |dims: &[DimReport]| {
            if dims.is_empty() {
                0.0
            } else {
                dims.iter().map(|d| d.coverage).sum::<f64>() / dims.len() as f64
            }
        };
        line(
            &mut out,
            &format!("{} coverage", fa.family),
            mean_cov(&fa.dims),
            mean_cov(&fb.dims),
            "",
        );
        let top = |dims: &[DimReport]| {
            dims.iter()
                .max_by(|x, y| {
                    x.importance
                        .partial_cmp(&y.importance)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map_or_else(
                    || "-".to_string(),
                    |d| format!("{} ({:.3})", d.name, d.importance),
                )
        };
        let _ = writeln!(
            out,
            "  {:<24} {:>18} -> {:>18}",
            format!("{} top dim", fa.family),
            top(&fa.dims),
            top(&fb.dims),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knn_space() -> Vec<SpaceFamily> {
        vec![SpaceFamily {
            family: "knn".into(),
            dims: vec![
                SpaceDim {
                    name: "k".into(),
                    kind: "int".into(),
                    scale: "linear".into(),
                    lo: 1.0,
                    hi: 8.0,
                    choices: vec![],
                },
                SpaceDim {
                    name: "weights".into(),
                    kind: "cat".into(),
                    scale: "linear".into(),
                    lo: 0.0,
                    hi: 0.0,
                    choices: vec!["uniform".into(), "distance".into()],
                },
            ],
        }]
    }

    fn rec(
        trial: u64,
        rung: u64,
        k: i64,
        weights: &str,
        score: Option<f64>,
        failed: Option<&str>,
    ) -> TrialRec {
        TrialRec {
            trial,
            rung,
            family: "knn".into(),
            params: vec![
                ("k".into(), ParamValue::Int(k)),
                ("weights".into(), ParamValue::Cat(weights.into())),
            ],
            score,
            failed: failed.map(str::to_string),
        }
    }

    fn fixture() -> Vec<TrialRec> {
        vec![
            rec(0, 0, 1, "uniform", Some(0.9), None),
            rec(1, 0, 2, "distance", Some(0.85), None),
            rec(2, 0, 7, "uniform", Some(0.5), None),
            rec(3, 0, 8, "distance", None, Some("error")),
            rec(0, 1, 1, "uniform", Some(0.92), None),
            rec(1, 1, 2, "distance", Some(0.87), None),
        ]
    }

    fn sample_ledger() -> String {
        let mut out = String::from(
            "{\"type\":\"ledger\",\"schema_version\":1,\"run_id\":\"r\",\"workload\":\"w\",\"seed\":1,\"git\":\"g\"}\n\
             {\"type\":\"search_space\",\"families\":[{\"family\":\"knn\",\"dims\":[\
             {\"name\":\"k\",\"kind\":\"int\",\"scale\":\"linear\",\"lo\":1,\"hi\":8,\"choices\":[]},\
             {\"name\":\"weights\",\"kind\":\"cat\",\"scale\":\"linear\",\"lo\":0,\"hi\":0,\
             \"choices\":[\"uniform\",\"distance\"]}]}]}\n",
        );
        for r in fixture() {
            let (k, w) = match (&r.params[0].1, &r.params[1].1) {
                (ParamValue::Int(k), ParamValue::Cat(w)) => (*k, w.clone()),
                _ => unreachable!(),
            };
            let _ = writeln!(
                out,
                "{{\"type\":\"trial_started\",\"trial\":{},\"rung\":{},\"family\":\"knn\",\
                 \"config\":\"KnnConfig\",\"params\":{{\"k\":{k},\"weights\":\"{w}\"}}}}",
                r.trial, r.rung
            );
            if let Some(score) = r.score {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"trial_finished\",\"trial\":{},\"rung\":{},\"family\":\"knn\",\"score\":{score}}}",
                    r.trial, r.rung
                );
            }
            if let Some(reason) = &r.failed {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"trial_failed\",\"trial\":{},\"rung\":{},\"family\":\"knn\",\"reason\":\"{reason}\"}}",
                    r.trial, r.rung
                );
            }
        }
        out
    }

    #[test]
    fn ledger_reproduces_the_collector_report_byte_for_byte() {
        let from_ledger = parse_search_ledger(&sample_ledger()).unwrap();
        let from_collector = analyze(&knn_space(), &fixture(), 0);
        assert_eq!(from_ledger.render_json(), from_collector.render_json());
        assert_eq!(from_ledger.started, 6);
        assert_eq!(from_ledger.finished, 5);
        assert_eq!(from_ledger.failed, 1);
    }

    #[test]
    fn rendered_artifact_round_trips_byte_for_byte() {
        let report = analyze(&knn_space(), &fixture(), 0);
        let json = report.render_json();
        let back = parse_search_json(&json).unwrap();
        assert_eq!(back.render_json(), json);
        assert_eq!(back.started, report.started);
        assert_eq!(back.families.len(), report.families.len());
    }

    #[test]
    fn artifact_dispatch_tells_ledgers_and_rendered_reports_apart() {
        let from_ledger = parse_search_artifact(&sample_ledger()).unwrap();
        let json = from_ledger.render_json();
        let from_json = parse_search_artifact(&json).unwrap();
        assert_eq!(from_json.render_json(), json);
    }

    #[test]
    fn inactive_and_future_artifacts_are_rejected() {
        let err = parse_search_json("{\"active\":false}\n").unwrap_err();
        assert!(err.contains("inactive"), "{err}");
        let report = analyze(&knn_space(), &fixture(), 0);
        let future = report
            .render_json()
            .replace("\"schema_version\":1", "\"schema_version\":999");
        let err = parse_search_json(&future).unwrap_err();
        assert!(err.contains("newer"), "{err}");
    }

    #[test]
    fn unknown_event_types_and_missing_params_are_tolerated() {
        let mut text = sample_ledger();
        text.push_str("{\"type\":\"mystery_event\",\"x\":1}\n");
        // A pre-params trial_started line still counts as a fit.
        text.push_str(
            "{\"type\":\"trial_started\",\"trial\":9,\"rung\":0,\"family\":\"knn\",\"config\":\"c\"}\n",
        );
        let report = parse_search_ledger(&text).unwrap();
        assert_eq!(report.started, 7);
    }

    #[test]
    fn parser_rejects_foreign_and_future_documents() {
        assert!(parse_search_ledger("").is_err());
        assert!(parse_search_ledger("{\"type\":\"events\"}").is_err());
        let bumped = sample_ledger().replace("\"schema_version\":1", "\"schema_version\":99");
        let err = parse_search_ledger(&bumped).unwrap_err();
        assert!(err.contains("schema_version 99"), "{err}");
        let err = parse_search_ledger(
            "{\"type\":\"ledger\",\"schema_version\":1,\"run_id\":\"r\",\"workload\":\"w\",\"seed\":1,\"git\":\"g\"}\n{oops",
        )
        .unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn param_values_re_type_from_their_rendering() {
        let v = minijson::parse("{\"a\":3,\"b\":0.05,\"c\":\"gini\"}").unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(param_value(&obj[0].1), ParamValue::Int(3));
        assert_eq!(param_value(&obj[1].1), ParamValue::Float(0.05));
        assert_eq!(param_value(&obj[2].1), ParamValue::Cat("gini".into()));
    }

    #[test]
    fn importance_svg_draws_sorted_bars() {
        let report = analyze(&knn_space(), &fixture(), 0);
        let svg = render_importance_svg(&report, 16);
        assert!(svg.starts_with("<svg"), "{svg}");
        // Two rects per dimension row: coverage (faded) + importance.
        assert_eq!(svg.matches("<rect").count(), 4);
        // k has higher importance than weights, so it renders first.
        let k_at = svg.find("knn.k").unwrap();
        let w_at = svg.find("knn.weights").unwrap();
        assert!(k_at < w_at, "{svg}");
        let empty = render_importance_svg(&analyze(&[], &[], 0), 16);
        assert!(empty.contains("no search telemetry"), "{empty}");
    }

    #[test]
    fn scatter_svg_plots_every_point() {
        let report = analyze(&knn_space(), &fixture(), 0);
        let dim = &report.families[0].dims[0];
        let svg = render_dim_scatter_svg("knn", dim);
        assert!(svg.starts_with("<svg"), "{svg}");
        assert_eq!(svg.matches("<circle").count(), dim.points.len());
        assert!(svg.contains("knn.k"), "{svg}");
        let empty_dim = DimReport {
            points: vec![],
            ..dim.clone()
        };
        let empty = render_dim_scatter_svg("knn", &empty_dim);
        assert!(empty.contains("no scored configurations"), "{empty}");
    }

    #[test]
    fn compare_reports_deltas_per_family() {
        let a = analyze(&knn_space(), &fixture(), 0);
        let mut shifted = fixture();
        for r in &mut shifted {
            if let Some(s) = &mut r.score {
                *s *= 0.5;
            }
        }
        let b = analyze(&knn_space(), &shifted, 0);
        let text = render_compare(&a, &b);
        assert!(text.contains("fits started"), "{text}");
        assert!(text.contains("knn best"), "{text}");
        assert!(text.contains("-50.0%"), "{text}");
        assert!(text.contains("knn top dim"), "{text}");
    }
}
