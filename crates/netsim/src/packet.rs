//! Data packets.

use crate::time::SimTime;

/// A data packet in flight. ACKs are not materialized as packets — the ACK
/// path is clean (no queue, no loss), so an ACK is just a scheduled
/// [`Event::AckArrival`](crate::event::Event::AckArrival).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Owning flow.
    pub flow: usize,
    /// Per-flow sequence number (0-based, strictly increasing per send; a
    /// retransmission gets a fresh sequence number — the stream abstraction
    /// only needs bytes delivered, not exact byte offsets).
    pub seq: u64,
    /// Payload size in bytes.
    pub size: u32,
    /// When the sender transmitted it (for RTT sampling).
    pub sent_at: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_is_copy_and_comparable() {
        let p = Packet {
            flow: 1,
            seq: 7,
            size: 1500,
            sent_at: SimTime::ZERO,
        };
        let q = p;
        assert_eq!(p, q);
    }
}
