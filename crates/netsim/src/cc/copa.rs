//! Copa-like delay-target congestion control (simplified).
//!
//! Copa targets a sending rate of `1 / (δ · d_q)` packets per second, where
//! `d_q` is the standing queuing delay (RTT − min RTT). The window moves
//! toward `target_rate × RTT` by `1/(δ·cwnd)` segments per ACK — additive
//! steps whose size adapts to how far the window is from target. The result
//! sits between Vegas (pure delay) and BBR (pure rate): low standing queues
//! with competitive throughput.

use crate::cc::{AckEvent, CongestionControl, MIN_CWND, MSS};
use crate::time::{Duration, SimTime};

/// Copa's δ: larger = lower target queue delay (more latency-sensitive).
const DELTA: f64 = 0.5;

/// Copa state machine.
#[derive(Debug)]
pub struct Copa {
    /// Window in f64 segments.
    cwnd: f64,
    min_rtt: Option<Duration>,
    /// Direction hysteresis: consecutive same-direction steps accelerate.
    velocity: f64,
    last_direction_up: bool,
    recovery_until: SimTime,
    srtt: Duration,
}

impl Copa {
    /// Fresh connection.
    pub fn new() -> Self {
        Copa {
            cwnd: 10.0,
            min_rtt: None,
            velocity: 1.0,
            last_direction_up: true,
            recovery_until: SimTime::ZERO,
            srtt: Duration::from_millis(100),
        }
    }
}

impl Default for Copa {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Copa {
    fn cwnd_bytes(&self) -> u64 {
        ((self.cwnd * MSS as f64) as u64).max(MIN_CWND)
    }

    fn on_ack(&mut self, ack: &AckEvent) {
        self.srtt = ack.rtt;
        let min_rtt = match self.min_rtt {
            Some(m) => {
                let m = m.min(ack.rtt);
                self.min_rtt = Some(m);
                m
            }
            None => {
                self.min_rtt = Some(ack.rtt);
                ack.rtt
            }
        };
        let rtt_s = ack.rtt.as_secs_f64().max(1e-6);
        let d_q = (rtt_s - min_rtt.as_secs_f64()).max(1e-4); // standing queue delay
                                                             // Target rate 1/(δ·d_q) pkts/s → target window in segments.
        let target_cwnd = rtt_s / (DELTA * d_q);

        let step = self.velocity / (DELTA * self.cwnd);
        if self.cwnd < target_cwnd {
            if self.last_direction_up {
                self.velocity = (self.velocity * 2.0).min(8.0);
            } else {
                self.velocity = 1.0;
            }
            self.last_direction_up = true;
            self.cwnd += step;
        } else {
            if !self.last_direction_up {
                self.velocity = (self.velocity * 2.0).min(8.0);
            } else {
                self.velocity = 1.0;
            }
            self.last_direction_up = false;
            self.cwnd = (self.cwnd - step).max(MIN_CWND as f64 / MSS as f64);
        }
    }

    fn on_loss(&mut self, now: SimTime) {
        if now < self.recovery_until {
            return;
        }
        // Copa's default mode reacts mildly to loss (it is delay-driven).
        self.cwnd = (self.cwnd * 0.7).max(MIN_CWND as f64 / MSS as f64);
        self.velocity = 1.0;
        self.recovery_until = now + self.srtt;
    }

    fn on_timeout(&mut self, now: SimTime) {
        self.cwnd = MIN_CWND as f64 / MSS as f64;
        self.velocity = 1.0;
        self.recovery_until = now + self.srtt;
    }

    fn name(&self) -> &'static str {
        "copa"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64, rtt_ms: u64) -> AckEvent {
        AckEvent {
            now: SimTime::ZERO + Duration::from_millis(now_ms),
            rtt: Duration::from_millis(rtt_ms),
            bytes_acked: MSS as u32,
            inflight_bytes: 0,
            delivery_rate_bps: None,
        }
    }

    #[test]
    fn grows_when_queue_delay_is_low() {
        let mut c = Copa::new();
        c.on_ack(&ack(1, 40)); // establishes min_rtt
        let before = c.cwnd_bytes();
        for i in 2..30 {
            c.on_ack(&ack(i, 41)); // 1 ms standing queue → huge target
        }
        assert!(c.cwnd_bytes() > before);
    }

    #[test]
    fn shrinks_when_queue_delay_is_high() {
        let mut c = Copa::new();
        c.on_ack(&ack(1, 40));
        crate::cc::test_util::feed_acks(&mut c, 40, 41);
        let before = c.cwnd_bytes();
        for i in 0..40 {
            c.on_ack(&ack(10_000 + i, 400)); // 360 ms standing queue
        }
        assert!(c.cwnd_bytes() < before, "{} -> {}", before, c.cwnd_bytes());
    }

    #[test]
    fn velocity_accelerates_persistent_direction() {
        let mut c = Copa::new();
        c.on_ack(&ack(1, 40));
        // Keep queue tiny: target stays far above cwnd → every step up.
        let mut growths = Vec::new();
        let mut last = c.cwnd_bytes() as f64;
        for i in 0..12 {
            c.on_ack(&ack(2 + i, 41));
            let now = c.cwnd_bytes() as f64;
            growths.push(now - last);
            last = now;
        }
        // Later steps should not be *smaller* than the very first step
        // (velocity doubling counteracts the 1/cwnd shrinkage).
        let first = growths[1].max(1.0);
        let late = growths[growths.len() - 1];
        assert!(
            late >= first * 0.5,
            "velocity should sustain growth: {growths:?}"
        );
    }

    #[test]
    fn loss_and_timeout_reduce_window() {
        let mut c = Copa::new();
        crate::cc::test_util::feed_acks(&mut c, 40, 41);
        let before = c.cwnd_bytes();
        c.on_loss(SimTime::ZERO + Duration::from_millis(9000));
        assert!(c.cwnd_bytes() < before);
        c.on_timeout(SimTime::ZERO + Duration::from_millis(9500));
        assert_eq!(c.cwnd_bytes(), MIN_CWND);
    }
}
