//! TCP Reno: slow start + AIMD congestion avoidance.
//!
//! The canonical loss-based baseline. Window doubles per RTT below
//! `ssthresh`, grows one MSS per RTT above it, halves on loss (at most once
//! per RTT — a whole window of gap-detected losses is one congestion
//! event), and collapses to the minimum on timeout.

use crate::cc::{AckEvent, CongestionControl, MIN_CWND, MSS};
use crate::time::{Duration, SimTime};

/// Reno state machine.
#[derive(Debug)]
pub struct Reno {
    cwnd: u64,
    ssthresh: u64,
    /// End of the current recovery epoch: losses before this instant belong
    /// to the congestion event that started it.
    recovery_until: SimTime,
    /// Latest smoothed RTT (for sizing the recovery epoch).
    srtt: Duration,
}

impl Reno {
    /// Fresh connection: IW = 10 segments (RFC 6928), infinite ssthresh.
    pub fn new() -> Self {
        Reno {
            cwnd: 10 * MSS,
            ssthresh: u64::MAX,
            recovery_until: SimTime::ZERO,
            srtt: Duration::from_millis(100),
        }
    }

    /// Current slow-start threshold (test hook).
    pub fn ssthresh(&self) -> u64 {
        self.ssthresh
    }
}

impl Default for Reno {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Reno {
    fn cwnd_bytes(&self) -> u64 {
        self.cwnd
    }

    fn on_ack(&mut self, ack: &AckEvent) {
        self.srtt = ack.rtt; // the flow smooths RTT; latest sample is fine here
        if self.cwnd < self.ssthresh {
            // Slow start: +1 MSS per MSS acked → doubles per RTT.
            self.cwnd += ack.bytes_acked as u64;
            if self.cwnd >= self.ssthresh {
                self.cwnd = self.ssthresh;
            }
        } else {
            // Congestion avoidance: +MSS per window per RTT.
            self.cwnd += (MSS * MSS / self.cwnd).max(1);
        }
    }

    fn on_loss(&mut self, now: SimTime) {
        if now < self.recovery_until {
            return; // already reacted to this congestion event
        }
        self.ssthresh = (self.cwnd / 2).max(MIN_CWND);
        self.cwnd = self.ssthresh;
        self.recovery_until = now + self.srtt;
    }

    fn on_timeout(&mut self, now: SimTime) {
        self.ssthresh = (self.cwnd / 2).max(MIN_CWND);
        self.cwnd = MIN_CWND;
        self.recovery_until = now + self.srtt;
    }

    fn name(&self) -> &'static str {
        "reno"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack_at(now_ms: u64, rtt_ms: u64) -> AckEvent {
        AckEvent {
            now: SimTime::ZERO + Duration::from_millis(now_ms),
            rtt: Duration::from_millis(rtt_ms),
            bytes_acked: MSS as u32,
            inflight_bytes: 0,
            delivery_rate_bps: None,
        }
    }

    #[test]
    fn slow_start_doubles_per_window() {
        let mut r = Reno::new();
        let start = r.cwnd_bytes();
        // Ack a full window: cwnd should double.
        for i in 0..(start / MSS) {
            r.on_ack(&ack_at(i, 40));
        }
        assert_eq!(r.cwnd_bytes(), 2 * start);
    }

    #[test]
    fn congestion_avoidance_is_linear() {
        let mut r = Reno::new();
        r.on_loss(SimTime::ZERO + Duration::from_millis(1)); // sets ssthresh = cwnd/2
        let base = r.cwnd_bytes();
        let acks_per_window = base / MSS;
        for i in 0..acks_per_window {
            r.on_ack(&ack_at(1000 + i, 40));
        }
        let grown = r.cwnd_bytes();
        assert!(
            grown >= base + (MSS * 4) / 5 && grown <= base + 2 * MSS,
            "CA growth per RTT ≈ 1 MSS: {base} -> {grown}"
        );
    }

    #[test]
    fn loss_halves_once_per_rtt() {
        let mut r = Reno::new();
        crate::cc::test_util::feed_acks(&mut r, 30, 40);
        let before = r.cwnd_bytes();
        let t = SimTime::ZERO + Duration::from_millis(5000);
        r.on_loss(t);
        let after_first = r.cwnd_bytes();
        assert_eq!(after_first, (before / 2).max(MIN_CWND));
        // A second loss within the same RTT is the same congestion event.
        r.on_loss(t + Duration::from_millis(1));
        assert_eq!(r.cwnd_bytes(), after_first);
        // After the recovery epoch, a new loss halves again.
        r.on_loss(t + Duration::from_millis(500));
        assert_eq!(r.cwnd_bytes(), (after_first / 2).max(MIN_CWND));
    }

    #[test]
    fn timeout_collapses_to_min() {
        let mut r = Reno::new();
        crate::cc::test_util::feed_acks(&mut r, 40, 40);
        r.on_timeout(SimTime::ZERO + Duration::from_millis(9999));
        assert_eq!(r.cwnd_bytes(), MIN_CWND);
        assert!(r.ssthresh() >= MIN_CWND);
    }

    #[test]
    fn cwnd_never_below_min() {
        let mut r = Reno::new();
        for i in 0..50 {
            r.on_loss(SimTime::ZERO + Duration::from_millis(i * 1000));
            r.on_timeout(SimTime::ZERO + Duration::from_millis(i * 1000 + 500));
        }
        assert!(r.cwnd_bytes() >= MIN_CWND);
    }
}
