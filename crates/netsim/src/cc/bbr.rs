//! BBR-like model-based congestion control (BBRv1, simplified).
//!
//! Maintains a model of the path — bottleneck bandwidth (windowed max of
//! delivery-rate samples) and round-trip propagation delay (windowed min of
//! RTT samples) — and paces at `gain × btl_bw` with a cwnd of
//! `2 × BDP`. Startup doubles the rate each RTT until bandwidth stops
//! growing, then a gain cycle (1.25, 0.75, 1 × 6) probes for more bandwidth
//! while draining the queue it created. Ignores isolated packet loss, which
//! makes it strong under random loss and rough on shared queues.

use crate::cc::{AckEvent, CongestionControl, MIN_CWND, MSS};
use crate::time::{Duration, SimTime};

const STARTUP_GAIN: f64 = 2.885;
const CYCLE_GAINS: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// Bandwidth filter window (RTT-count approximated by samples).
const BW_WINDOW: usize = 10;

#[derive(Debug, PartialEq, Eq)]
enum Mode {
    Startup,
    ProbeBw,
}

/// BBR state machine.
#[derive(Debug)]
pub struct Bbr {
    mode: Mode,
    /// Recent delivery-rate samples (bits/s), newest last.
    bw_samples: Vec<f64>,
    /// Windowed-max bottleneck bandwidth estimate (bits/s).
    btl_bw: f64,
    /// Windowed-min RTT estimate.
    min_rtt: Option<Duration>,
    /// Full-bandwidth plateau detection: rounds without 25% growth.
    plateau_rounds: u32,
    prev_btl_bw: f64,
    /// Start of the current startup round (plateau checks run per round,
    /// not per ACK — checking per ACK would exit startup within a few
    /// packets).
    round_start: SimTime,
    /// Gain-cycle phase index and the time the phase started.
    cycle_index: usize,
    cycle_start: SimTime,
}

impl Bbr {
    /// Fresh connection.
    pub fn new() -> Self {
        Bbr {
            mode: Mode::Startup,
            bw_samples: Vec::new(),
            btl_bw: 1e6, // 1 Mbps prior until samples arrive
            min_rtt: None,
            plateau_rounds: 0,
            prev_btl_bw: 0.0,
            round_start: SimTime::ZERO,
            cycle_index: 0,
            cycle_start: SimTime::ZERO,
        }
    }

    fn gain(&self) -> f64 {
        match self.mode {
            Mode::Startup => STARTUP_GAIN,
            Mode::ProbeBw => CYCLE_GAINS[self.cycle_index],
        }
    }

    /// Bandwidth-delay product in bytes.
    fn bdp_bytes(&self) -> u64 {
        let rtt = self.min_rtt.unwrap_or(Duration::from_millis(100));
        ((self.btl_bw / 8.0) * rtt.as_secs_f64()) as u64
    }

    /// The current bottleneck-bandwidth estimate in bits/s (test hook).
    pub fn btl_bw(&self) -> f64 {
        self.btl_bw
    }
}

impl Default for Bbr {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Bbr {
    fn cwnd_bytes(&self) -> u64 {
        (2 * self.bdp_bytes()).max(4 * MSS).max(MIN_CWND)
    }

    fn pacing_rate_bps(&self) -> Option<f64> {
        Some((self.gain() * self.btl_bw).max(8.0 * MSS as f64)) // ≥ 1 pkt/s·8
    }

    fn on_ack(&mut self, ack: &AckEvent) {
        self.min_rtt = Some(match self.min_rtt {
            Some(m) => m.min(ack.rtt),
            None => ack.rtt,
        });
        if let Some(rate) = ack.delivery_rate_bps {
            self.bw_samples.push(rate);
            if self.bw_samples.len() > BW_WINDOW {
                self.bw_samples.remove(0);
            }
            self.btl_bw = self.bw_samples.iter().cloned().fold(1e5, f64::max);
        }

        match self.mode {
            Mode::Startup => {
                // Leave startup when bandwidth stops growing 25% per round
                // (one round = one min_rtt).
                let round_len = self.min_rtt.unwrap_or(Duration::from_millis(100));
                if ack.now.since(self.round_start) >= round_len {
                    self.round_start = ack.now;
                    if self.btl_bw < self.prev_btl_bw * 1.25 {
                        self.plateau_rounds += 1;
                    } else {
                        self.plateau_rounds = 0;
                    }
                    self.prev_btl_bw = self.btl_bw;
                    if self.plateau_rounds >= 3 {
                        self.mode = Mode::ProbeBw;
                        self.cycle_index = 2; // start in a cruise phase
                        self.cycle_start = ack.now;
                    }
                }
            }
            Mode::ProbeBw => {
                // Advance the gain cycle once per min_rtt.
                let phase_len = self.min_rtt.unwrap_or(Duration::from_millis(100));
                if ack.now.since(self.cycle_start) >= phase_len {
                    self.cycle_index = (self.cycle_index + 1) % CYCLE_GAINS.len();
                    self.cycle_start = ack.now;
                }
            }
        }
    }

    fn on_loss(&mut self, _now: SimTime) {
        // BBRv1 deliberately does not react to isolated loss; the model
        // (delivery rate) already reflects what the path can carry.
    }

    fn on_timeout(&mut self, _now: SimTime) {
        // Silence means the model is stale — decay it so the restart probes
        // from a safer rate.
        self.btl_bw *= 0.5;
        self.bw_samples.clear();
        self.mode = Mode::Startup;
        self.plateau_rounds = 0;
        self.prev_btl_bw = 0.0;
    }

    fn name(&self) -> &'static str {
        "bbr"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64, rtt_ms: u64, rate_bps: f64) -> AckEvent {
        AckEvent {
            now: SimTime::ZERO + Duration::from_millis(now_ms),
            rtt: Duration::from_millis(rtt_ms),
            bytes_acked: MSS as u32,
            inflight_bytes: 0,
            delivery_rate_bps: Some(rate_bps),
        }
    }

    #[test]
    fn tracks_max_bandwidth() {
        let mut b = Bbr::new();
        b.on_ack(&ack(1, 40, 5e6));
        b.on_ack(&ack(2, 40, 20e6));
        b.on_ack(&ack(3, 40, 10e6));
        assert_eq!(b.btl_bw(), 20e6);
    }

    #[test]
    fn bandwidth_window_forgets_old_peaks() {
        let mut b = Bbr::new();
        b.on_ack(&ack(1, 40, 50e6));
        for i in 0..BW_WINDOW as u64 {
            b.on_ack(&ack(2 + i, 40, 5e6));
        }
        assert_eq!(b.btl_bw(), 5e6, "old 50 Mbps sample must age out");
    }

    #[test]
    fn cwnd_is_twice_bdp() {
        let mut b = Bbr::new();
        // 10 Mbps × 40 ms = 50 KB BDP → cwnd 100 KB.
        for i in 0..20 {
            b.on_ack(&ack(i * 40, 40, 10e6));
        }
        let bdp = (10e6 / 8.0 * 0.040) as u64;
        assert_eq!(b.cwnd_bytes(), 2 * bdp);
    }

    #[test]
    fn startup_exits_on_plateau_and_cycles_gains() {
        let mut b = Bbr::new();
        for i in 0..50 {
            b.on_ack(&ack(i * 40, 40, 10e6));
        }
        assert_eq!(b.mode, Mode::ProbeBw, "plateau at 10 Mbps must end startup");
        // In ProbeBw the pacing gain stays within the cycle set.
        let g = b.pacing_rate_bps().unwrap() / b.btl_bw();
        assert!(CYCLE_GAINS.contains(&g) || (g - 1.0).abs() < 0.26);
    }

    #[test]
    fn pacing_rate_has_floor() {
        let b = Bbr::new();
        assert!(b.pacing_rate_bps().unwrap() > 0.0);
    }

    #[test]
    fn loss_is_ignored_but_timeout_decays_model() {
        let mut b = Bbr::new();
        for i in 0..20 {
            b.on_ack(&ack(i * 40, 40, 10e6));
        }
        let before = b.btl_bw();
        b.on_loss(SimTime::ZERO + Duration::from_millis(999));
        assert_eq!(b.btl_bw(), before, "loss must not change the model");
        b.on_timeout(SimTime::ZERO + Duration::from_millis(1999));
        assert!(b.btl_bw() < before);
    }
}
