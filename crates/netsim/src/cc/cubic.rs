//! TCP CUBIC (RFC 8312, simplified).
//!
//! Window growth is a cubic function of time since the last congestion
//! event, anchored at the pre-loss window `W_max`: fast recovery toward
//! `W_max`, a plateau around it, then aggressive probing beyond. Scales far
//! better than Reno on high bandwidth-delay products, at the cost of
//! standing queues — which is precisely why it loses to Scream on latency
//! in deep-buffer regimes.

use crate::cc::{AckEvent, CongestionControl, MIN_CWND, MSS};
use crate::time::{Duration, SimTime};

/// CUBIC aggressiveness constant (segments/sec³), per RFC 8312.
const C: f64 = 0.4;
/// Multiplicative decrease factor.
const BETA: f64 = 0.7;

/// CUBIC state machine. Window arithmetic is done in f64 segments.
#[derive(Debug)]
pub struct Cubic {
    /// Current window (segments).
    cwnd: f64,
    /// Slow-start threshold (segments).
    ssthresh: f64,
    /// Window at the last congestion event (segments).
    w_max: f64,
    /// Start of the current cubic epoch.
    epoch_start: Option<SimTime>,
    /// Time offset where the cubic crosses `w_max` (seconds).
    k: f64,
    recovery_until: SimTime,
    srtt: Duration,
}

impl Cubic {
    /// Fresh connection.
    pub fn new() -> Self {
        Cubic {
            cwnd: 10.0,
            ssthresh: f64::INFINITY,
            w_max: 0.0,
            epoch_start: None,
            k: 0.0,
            recovery_until: SimTime::ZERO,
            srtt: Duration::from_millis(100),
        }
    }

    fn enter_epoch(&mut self, now: SimTime) {
        self.epoch_start = Some(now);
        // K = cbrt(W_max * (1 − β) / C)
        self.k = (self.w_max * (1.0 - BETA) / C).cbrt();
    }
}

impl Default for Cubic {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Cubic {
    fn cwnd_bytes(&self) -> u64 {
        ((self.cwnd * MSS as f64) as u64).max(MIN_CWND)
    }

    fn on_ack(&mut self, ack: &AckEvent) {
        self.srtt = ack.rtt;
        let acked_segments = ack.bytes_acked as f64 / MSS as f64;
        if self.cwnd < self.ssthresh {
            self.cwnd += acked_segments;
            return;
        }
        let now = ack.now;
        if self.epoch_start.is_none() {
            self.w_max = self.w_max.max(self.cwnd);
            self.enter_epoch(now);
        }
        let t = now
            .since(self.epoch_start.expect("epoch set above"))
            .as_secs_f64();
        let target = C * (t - self.k).powi(3) + self.w_max;
        if target > self.cwnd {
            // Close the gap within one RTT (standard cwnd += (target-cwnd)/cwnd
            // per ack behaves the same in aggregate).
            self.cwnd += (target - self.cwnd).min(acked_segments * 4.0)
                * (acked_segments / self.cwnd).clamp(0.01, 1.0);
        } else {
            // TCP-friendly floor: grow at least like Reno.
            self.cwnd += acked_segments / self.cwnd;
        }
    }

    fn on_loss(&mut self, now: SimTime) {
        if now < self.recovery_until {
            return;
        }
        self.w_max = self.cwnd;
        self.cwnd = (self.cwnd * BETA).max(MIN_CWND as f64 / MSS as f64);
        self.ssthresh = self.cwnd;
        self.enter_epoch(now);
        self.recovery_until = now + self.srtt;
    }

    fn on_timeout(&mut self, now: SimTime) {
        self.w_max = self.cwnd;
        self.ssthresh = (self.cwnd * BETA).max(MIN_CWND as f64 / MSS as f64);
        self.cwnd = MIN_CWND as f64 / MSS as f64;
        self.epoch_start = None;
        self.recovery_until = now + self.srtt;
    }

    fn name(&self) -> &'static str {
        "cubic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack_at(now_ms: u64) -> AckEvent {
        AckEvent {
            now: SimTime::ZERO + Duration::from_millis(now_ms),
            rtt: Duration::from_millis(40),
            bytes_acked: MSS as u32,
            inflight_bytes: 0,
            delivery_rate_bps: None,
        }
    }

    #[test]
    fn slow_start_then_cubic_growth() {
        let mut c = Cubic::new();
        let initial = c.cwnd_bytes();
        for i in 0..20 {
            c.on_ack(&ack_at(i * 4));
        }
        assert!(c.cwnd_bytes() > initial, "slow start must grow");
    }

    #[test]
    fn loss_multiplies_by_beta() {
        let mut c = Cubic::new();
        crate::cc::test_util::feed_acks(&mut c, 40, 40);
        let before = c.cwnd_bytes() as f64;
        c.on_loss(SimTime::ZERO + Duration::from_millis(10_000));
        let after = c.cwnd_bytes() as f64;
        assert!(
            (after / before - BETA).abs() < 0.05,
            "decrease factor {} ≈ {BETA}",
            after / before
        );
    }

    #[test]
    fn cubic_recovers_toward_w_max_over_time() {
        let mut c = Cubic::new();
        crate::cc::test_util::feed_acks(&mut c, 60, 40);
        let w_before_loss = c.cwnd_bytes();
        let t0 = 20_000u64;
        c.on_loss(SimTime::ZERO + Duration::from_millis(t0));
        let after_loss = c.cwnd_bytes();
        // Ack steadily for several simulated seconds.
        for i in 1..2000 {
            c.on_ack(&ack_at(t0 + i * 10));
        }
        let recovered = c.cwnd_bytes();
        assert!(
            recovered > after_loss,
            "cubic must regrow {after_loss} -> {recovered}"
        );
        assert!(
            recovered as f64 > 0.9 * w_before_loss as f64,
            "cubic approaches W_max: {recovered} vs {w_before_loss}"
        );
    }

    #[test]
    fn timeout_resets_epoch() {
        let mut c = Cubic::new();
        crate::cc::test_util::feed_acks(&mut c, 40, 40);
        c.on_timeout(SimTime::ZERO + Duration::from_millis(5000));
        assert_eq!(c.cwnd_bytes(), MIN_CWND);
    }

    #[test]
    fn repeated_losses_floor_at_min_cwnd() {
        let mut c = Cubic::new();
        for i in 0..100 {
            c.on_loss(SimTime::ZERO + Duration::from_millis(i * 1000));
        }
        assert!(c.cwnd_bytes() >= MIN_CWND);
    }
}
