//! Congestion-control protocols.
//!
//! Every protocol implements [`CongestionControl`]: a window (`cwnd_bytes`)
//! that gates how much data may be in flight, an optional pacing rate, and
//! reactions to ACKs, packet loss (sequence gaps) and retransmission
//! timeouts. The simulator owns reliability and RTT bookkeeping; protocols
//! only decide *how much* and *how fast* to send.
//!
//! The six implementations span the design space the Pantheon paper's
//! protocols cover: loss-based AIMD ([`reno`]), loss-based polynomial
//! ([`cubic`]), delay-based window ([`vegas`]), model/rate-based ([`bbr`]),
//! delay-target rate ([`copa`]) and the latency-sensitive self-clocked
//! rate adaptation of SCReAM ([`scream`]) — the protocol the paper's toy
//! problem asks "should I use this one?" about.

pub mod bbr;
pub mod copa;
pub mod cubic;
pub mod reno;
pub mod scream;
pub mod vegas;

use crate::time::{Duration, SimTime};

/// Maximum segment size used throughout the simulator (bytes).
pub const MSS: u64 = 1500;

/// Minimum congestion window: two segments (protocols never starve).
pub const MIN_CWND: u64 = 2 * MSS;

/// Information delivered to the protocol on every ACK.
#[derive(Debug, Clone, Copy)]
pub struct AckEvent {
    /// Current simulated time.
    pub now: SimTime,
    /// RTT sample of the acknowledged packet.
    pub rtt: Duration,
    /// Bytes acknowledged by this ACK.
    pub bytes_acked: u32,
    /// Bytes still in flight after this ACK.
    pub inflight_bytes: u64,
    /// Smoothed delivery-rate estimate (bits/s) maintained by the flow,
    /// `None` until enough samples exist. Used by model-based protocols.
    pub delivery_rate_bps: Option<f64>,
}

/// A congestion-control algorithm.
pub trait CongestionControl: Send {
    /// Current congestion window in bytes. The sender keeps
    /// `inflight ≤ cwnd`.
    fn cwnd_bytes(&self) -> u64;

    /// Pacing rate in bits/s, if the protocol paces (rate-based protocols).
    /// `None` means ACK-clocked window sending only.
    fn pacing_rate_bps(&self) -> Option<f64> {
        None
    }

    /// An ACK arrived.
    fn on_ack(&mut self, ack: &AckEvent);

    /// A packet loss was detected via a sequence gap (fast-retransmit-like
    /// signal). May be called once per lost packet; implementations should
    /// rate-limit their multiplicative decrease to once per RTT.
    fn on_loss(&mut self, now: SimTime);

    /// A retransmission timeout fired (whole window lost / silence).
    fn on_timeout(&mut self, now: SimTime);

    /// Protocol name, e.g. `"scream"`.
    fn name(&self) -> &'static str;
}

/// Enumeration of available protocols (the experiment configuration data
/// type; [`CcKind::build`] instantiates the state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CcKind {
    /// SCReAM-like latency-sensitive rate adaptation.
    Scream,
    /// TCP Reno AIMD.
    Reno,
    /// TCP CUBIC.
    Cubic,
    /// TCP Vegas (delay-based).
    Vegas,
    /// BBR-like model-based.
    Bbr,
    /// Copa-like delay-target.
    Copa,
}

impl CcKind {
    /// All protocols, Scream first ("Scream vs rest").
    pub const ALL: [CcKind; 6] = [
        CcKind::Scream,
        CcKind::Reno,
        CcKind::Cubic,
        CcKind::Vegas,
        CcKind::Bbr,
        CcKind::Copa,
    ];

    /// The non-Scream protocols ("the rest").
    pub const REST: [CcKind; 5] = [
        CcKind::Reno,
        CcKind::Cubic,
        CcKind::Vegas,
        CcKind::Bbr,
        CcKind::Copa,
    ];

    /// Instantiate a fresh state machine.
    pub fn build(&self) -> Box<dyn CongestionControl> {
        match self {
            CcKind::Scream => Box::new(scream::Scream::new()),
            CcKind::Reno => Box::new(reno::Reno::new()),
            CcKind::Cubic => Box::new(cubic::Cubic::new()),
            CcKind::Vegas => Box::new(vegas::Vegas::new()),
            CcKind::Bbr => Box::new(bbr::Bbr::new()),
            CcKind::Copa => Box::new(copa::Copa::new()),
        }
    }

    /// Stable lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            CcKind::Scream => "scream",
            CcKind::Reno => "reno",
            CcKind::Cubic => "cubic",
            CcKind::Vegas => "vegas",
            CcKind::Bbr => "bbr",
            CcKind::Copa => "copa",
        }
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;

    /// Drive a protocol with `n` clean ACKs at a fixed RTT; returns cwnd.
    pub fn feed_acks(cc: &mut dyn CongestionControl, n: usize, rtt_ms: u64) -> u64 {
        let mut now = SimTime::ZERO;
        for _ in 0..n {
            now += Duration::from_millis(rtt_ms / 10 + 1);
            cc.on_ack(&AckEvent {
                now,
                rtt: Duration::from_millis(rtt_ms),
                bytes_acked: MSS as u32,
                inflight_bytes: cc.cwnd_bytes() / 2,
                delivery_rate_bps: Some(10e6),
            });
        }
        cc.cwnd_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_every_protocol() {
        for kind in CcKind::ALL {
            let cc = kind.build();
            assert_eq!(cc.name(), kind.name());
            assert!(cc.cwnd_bytes() >= MIN_CWND, "{}", kind.name());
        }
    }

    #[test]
    fn all_protocols_grow_from_acks_and_shrink_on_timeout() {
        for kind in CcKind::ALL {
            let mut cc = kind.build();
            let initial = cc.cwnd_bytes();
            let grown = test_util::feed_acks(cc.as_mut(), 50, 40);
            assert!(
                grown > initial,
                "{} did not grow: {initial} -> {grown}",
                kind.name()
            );
            cc.on_timeout(SimTime::ZERO + Duration::from_millis(999));
            assert!(
                cc.cwnd_bytes() < grown,
                "{} did not shrink on timeout",
                kind.name()
            );
            assert!(cc.cwnd_bytes() >= MIN_CWND);
        }
    }

    #[test]
    fn rest_excludes_scream() {
        assert!(!CcKind::REST.contains(&CcKind::Scream));
        assert_eq!(CcKind::REST.len() + 1, CcKind::ALL.len());
    }
}
