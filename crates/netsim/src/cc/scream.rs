//! SCReAM-like self-clocked rate adaptation (RFC 8298 spirit, simplified).
//!
//! SCReAM was designed for latency-sensitive multimedia: it regulates the
//! *queuing delay* (RTT − min RTT) around a tight target — here ~1.2 packet
//! serialization times at the current delivery rate, i.e. barely more than
//! one packet standing in the bottleneck queue. That makes it the
//! lowest-latency protocol in the suite (tighter than Vegas's 2–4 packets
//! or Copa's ~2), at the price of classic loss-halving: under random loss
//! its throughput collapses. "Great latency on clean paths, fragile under
//! loss" is exactly the trade-off the paper's "Scream vs rest" problem
//! asks the model to learn.
//!
//! Controller, per ACK:
//!
//! * `qdelay < ½·target` → grow: slow-start ramp until the first congestion
//!   signal, Reno-style `cwnd += bytes_acked · MSS / cwnd` afterwards;
//! * `½·target ≤ qdelay ≤ target` → deadband: hold;
//! * `qdelay > target` → once per propagation RTT, scale by
//!   `clamp(1 − 0.3·(qdelay/target − 1), 0.7, 1)`.

use crate::cc::{AckEvent, CongestionControl, MIN_CWND, MSS};
use crate::time::{Duration, SimTime};

/// Queuing-delay target floor (avoids a zero target on fast links).
const TARGET_FLOOR: Duration = Duration::from_millis(1);
/// Queuing-delay target ceiling (RFC 8298's congestion scaling region).
const TARGET_CEIL: Duration = Duration::from_millis(50);
/// Standing queue target in packet serialization times.
const TARGET_PACKETS: f64 = 1.2;

/// SCReAM state machine.
#[derive(Debug)]
pub struct Scream {
    cwnd: u64,
    min_rtt: Option<Duration>,
    /// Latest queuing-delay target (updated from the delivery rate).
    target: Duration,
    /// Once-per-RTT guard for multiplicative decreases.
    recovery_until: SimTime,
    /// Slow-start-like ramp flag: cleared permanently by the first
    /// congestion signal (overshoot, loss or timeout). Without this a
    /// lossy path lets Scream re-double every RTT between halvings,
    /// making it implausibly loss-resilient.
    in_ramp: bool,
    srtt: Duration,
}

impl Scream {
    /// Fresh connection.
    pub fn new() -> Self {
        Scream {
            cwnd: 10 * MSS,
            min_rtt: None,
            target: Duration::from_millis(10),
            recovery_until: SimTime::ZERO,
            in_ramp: true,
            srtt: Duration::from_millis(100),
        }
    }

    /// Current queuing-delay target (test hook).
    pub fn target(&self) -> Duration {
        self.target
    }

    fn qdelay(&self, rtt: Duration) -> Duration {
        match self.min_rtt {
            Some(m) => rtt.saturating_sub(m),
            None => Duration::ZERO,
        }
    }
}

impl Default for Scream {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Scream {
    fn cwnd_bytes(&self) -> u64 {
        self.cwnd
    }

    fn pacing_rate_bps(&self) -> Option<f64> {
        // Self-clocked: pace one cwnd per smoothed RTT, slightly faster so
        // pacing never becomes the bottleneck below the window limit.
        let rtt = self.srtt.as_secs_f64().max(1e-3);
        Some(1.2 * self.cwnd as f64 * 8.0 / rtt)
    }

    fn on_ack(&mut self, ack: &AckEvent) {
        self.srtt = ack.rtt;
        self.min_rtt = Some(match self.min_rtt {
            Some(m) => m.min(ack.rtt),
            None => ack.rtt,
        });
        // Track the target: ~1.2 packet serialization times at the current
        // per-flow delivery rate.
        if let Some(rate) = ack.delivery_rate_bps {
            if rate > 1e3 {
                let ser = Duration::from_secs_f64(MSS as f64 * 8.0 / rate);
                self.target = ser
                    .mul_f64(TARGET_PACKETS)
                    .max(TARGET_FLOOR)
                    .min(TARGET_CEIL);
            }
        }

        let qdelay = self.qdelay(ack.rtt);
        let target_s = self.target.as_secs_f64().max(1e-6);
        let q_s = qdelay.as_secs_f64();
        if q_s < 0.5 * target_s {
            // Below half target: grow — fast while ramping, Reno-style after.
            if self.in_ramp {
                self.cwnd += ack.bytes_acked as u64;
            } else {
                self.cwnd += ((ack.bytes_acked as u64 * MSS) / self.cwnd).max(1);
            }
        } else if q_s <= target_s {
            // Deadband: the queue is where we want it; hold.
        } else if ack.now >= self.recovery_until {
            // Over target: gentle proportional backoff, at most once per
            // *propagation* RTT (using the inflated sample would lock the
            // controller out exactly when it must act).
            let overshoot = q_s / target_s - 1.0;
            let factor = (1.0 - 0.3 * overshoot).clamp(0.7, 1.0);
            self.cwnd = ((self.cwnd as f64 * factor) as u64).max(MIN_CWND);
            let min_rtt = self.min_rtt.unwrap_or(ack.rtt);
            self.recovery_until = ack.now + min_rtt;
            self.in_ramp = false;
        }
    }

    fn on_loss(&mut self, now: SimTime) {
        self.in_ramp = false;
        if now < self.recovery_until {
            return;
        }
        self.cwnd = (self.cwnd / 2).max(MIN_CWND);
        self.recovery_until = now + self.srtt;
    }

    fn on_timeout(&mut self, now: SimTime) {
        self.in_ramp = false;
        self.cwnd = MIN_CWND;
        self.recovery_until = now + self.srtt;
    }

    fn name(&self) -> &'static str {
        "scream"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64, rtt_ms: u64) -> AckEvent {
        AckEvent {
            now: SimTime::ZERO + Duration::from_millis(now_ms),
            rtt: Duration::from_millis(rtt_ms),
            bytes_acked: MSS as u32,
            inflight_bytes: 0,
            delivery_rate_bps: Some(10e6),
        }
    }

    #[test]
    fn grows_while_delay_under_target() {
        let mut s = Scream::new();
        let before = s.cwnd_bytes();
        for i in 0..20 {
            s.on_ack(&ack(i, 40)); // qdelay 0 after first sample
        }
        assert!(s.cwnd_bytes() > before);
    }

    #[test]
    fn target_tracks_delivery_rate() {
        let mut s = Scream::new();
        // 10 Mbps → serialization 1.2 ms → target 1.44 ms.
        s.on_ack(&ack(1, 40));
        let t = s.target().as_millis_f64();
        assert!((t - 1.44).abs() < 0.05, "target {t} ms");
        // 1 Mbps → 12 ms serialization → 14.4 ms target.
        s.on_ack(&AckEvent {
            delivery_rate_bps: Some(1e6),
            ..ack(2, 40)
        });
        let t2 = s.target().as_millis_f64();
        assert!((t2 - 14.4).abs() < 0.2, "target {t2} ms");
    }

    #[test]
    fn target_is_clamped() {
        let mut s = Scream::new();
        // Absurdly fast link → floor.
        s.on_ack(&AckEvent {
            delivery_rate_bps: Some(100e9),
            ..ack(1, 40)
        });
        assert_eq!(s.target(), Duration::from_millis(1));
        // Absurdly slow link → ceiling.
        s.on_ack(&AckEvent {
            delivery_rate_bps: Some(50e3),
            ..ack(2, 40)
        });
        assert_eq!(s.target(), Duration::from_millis(50));
    }

    #[test]
    fn backs_off_when_delay_exceeds_target() {
        let mut s = Scream::new();
        s.on_ack(&ack(1, 40)); // min_rtt = 40ms, target ≈ 1.44ms
        crate::cc::test_util::feed_acks(&mut s, 20, 40);
        let before = s.cwnd_bytes();
        // 150 ms RTT → 110 ms queuing delay, way over target → max backoff.
        s.on_ack(&ack(10_000, 150));
        assert!(
            (s.cwnd_bytes() as f64) <= 0.71 * before as f64,
            "must back off: {} -> {}",
            before,
            s.cwnd_bytes()
        );
    }

    #[test]
    fn backoff_rate_limited_to_once_per_rtt() {
        let mut s = Scream::new();
        s.on_ack(&ack(1, 40));
        crate::cc::test_util::feed_acks(&mut s, 20, 40);
        s.on_ack(&ack(10_000, 150));
        let after_first = s.cwnd_bytes();
        s.on_ack(&ack(10_001, 150)); // within the same RTT
        assert_eq!(s.cwnd_bytes(), after_first);
    }

    #[test]
    fn growth_is_gentler_near_target() {
        // qdelay at 80% of target grows Reno-style; qdelay 0 ramps.
        let mut s = Scream::new();
        s.on_ack(&AckEvent {
            delivery_rate_bps: Some(1e6),
            ..ack(1, 40)
        }); // target 14.4ms
        let b = s.cwnd_bytes();
        s.on_ack(&AckEvent {
            delivery_rate_bps: Some(1e6),
            ..ack(2, 40)
        }); // qdelay 0 → ramp
        let ramp_step = s.cwnd_bytes() - b;
        let b2 = s.cwnd_bytes();
        s.on_ack(&AckEvent {
            delivery_rate_bps: Some(1e6),
            ..ack(3, 52)
        }); // qdelay 12ms ≈ 0.83·target
        let gentle_step = s.cwnd_bytes() - b2;
        assert!(
            gentle_step < ramp_step,
            "near-target step {gentle_step} must be smaller than ramp step {ramp_step}"
        );
    }

    #[test]
    fn loss_halves_and_timeout_collapses() {
        let mut s = Scream::new();
        crate::cc::test_util::feed_acks(&mut s, 30, 40);
        let grown = s.cwnd_bytes();
        s.on_loss(SimTime::ZERO + Duration::from_millis(8000));
        assert_eq!(s.cwnd_bytes(), (grown / 2).max(MIN_CWND));
        s.on_timeout(SimTime::ZERO + Duration::from_millis(9000));
        assert_eq!(s.cwnd_bytes(), MIN_CWND);
    }

    #[test]
    fn paces_at_window_per_rtt() {
        let mut s = Scream::new();
        s.on_ack(&ack(1, 100));
        let rate = s.pacing_rate_bps().unwrap();
        let expected = 1.2 * s.cwnd_bytes() as f64 * 8.0 / 0.1;
        assert!((rate - expected).abs() / expected < 0.01);
    }
}
