//! TCP Vegas: delay-based congestion avoidance.
//!
//! Vegas compares the *expected* throughput `cwnd / base_rtt` with the
//! *actual* throughput `cwnd / rtt` and keeps the difference — the number of
//! self-induced queued packets — between `α` and `β`. It reacts before
//! loss occurs, keeping queues short, but competes poorly against
//! loss-based flows (a property visible in the multi-flow experiments).

use crate::cc::{AckEvent, CongestionControl, MIN_CWND, MSS};
use crate::time::{Duration, SimTime};

/// Lower bound on queued segments before increasing.
const ALPHA: f64 = 2.0;
/// Upper bound on queued segments before decreasing.
const BETA: f64 = 4.0;

/// Vegas state machine.
#[derive(Debug)]
pub struct Vegas {
    cwnd: u64,
    ssthresh: u64,
    /// Smallest RTT ever observed (propagation estimate).
    base_rtt: Option<Duration>,
    /// Next instant the once-per-RTT window adjustment may run.
    next_adjust: SimTime,
    recovery_until: SimTime,
    srtt: Duration,
}

impl Vegas {
    /// Fresh connection.
    pub fn new() -> Self {
        Vegas {
            cwnd: 10 * MSS,
            ssthresh: u64::MAX,
            base_rtt: None,
            next_adjust: SimTime::ZERO,
            recovery_until: SimTime::ZERO,
            srtt: Duration::from_millis(100),
        }
    }

    /// The current propagation-delay estimate (test hook).
    pub fn base_rtt(&self) -> Option<Duration> {
        self.base_rtt
    }
}

impl Default for Vegas {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Vegas {
    fn cwnd_bytes(&self) -> u64 {
        self.cwnd
    }

    fn on_ack(&mut self, ack: &AckEvent) {
        self.srtt = ack.rtt;
        let base = match self.base_rtt {
            Some(b) => {
                let b = b.min(ack.rtt);
                self.base_rtt = Some(b);
                b
            }
            None => {
                self.base_rtt = Some(ack.rtt);
                ack.rtt
            }
        };

        if self.cwnd < self.ssthresh {
            // Vegas slow start: double every *other* RTT; approximated by
            // half-rate exponential growth.
            self.cwnd += ack.bytes_acked as u64 / 2;
            return;
        }

        // Once per RTT, compare expected and actual rates.
        if ack.now < self.next_adjust {
            return;
        }
        self.next_adjust = ack.now + ack.rtt;

        let rtt_s = ack.rtt.as_secs_f64().max(1e-6);
        let base_s = base.as_secs_f64().max(1e-6);
        let cwnd_seg = self.cwnd as f64 / MSS as f64;
        let queued = cwnd_seg * (rtt_s - base_s) / rtt_s;
        if queued < ALPHA {
            self.cwnd += MSS;
        } else if queued > BETA {
            self.cwnd = self.cwnd.saturating_sub(MSS).max(MIN_CWND);
        }
    }

    fn on_loss(&mut self, now: SimTime) {
        if now < self.recovery_until {
            return;
        }
        // Vegas halves like Reno on actual loss.
        self.cwnd = (self.cwnd / 2).max(MIN_CWND);
        self.ssthresh = self.cwnd;
        self.recovery_until = now + self.srtt;
    }

    fn on_timeout(&mut self, now: SimTime) {
        self.ssthresh = (self.cwnd / 2).max(MIN_CWND);
        self.cwnd = MIN_CWND;
        self.recovery_until = now + self.srtt;
    }

    fn name(&self) -> &'static str {
        "vegas"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64, rtt_ms: u64) -> AckEvent {
        AckEvent {
            now: SimTime::ZERO + Duration::from_millis(now_ms),
            rtt: Duration::from_millis(rtt_ms),
            bytes_acked: MSS as u32,
            inflight_bytes: 0,
            delivery_rate_bps: None,
        }
    }

    /// Leave slow start so congestion-avoidance behavior is observable.
    fn in_ca() -> Vegas {
        let mut v = Vegas::new();
        v.on_loss(SimTime::ZERO); // ssthresh = cwnd/2 → now above ssthresh
        v
    }

    #[test]
    fn base_rtt_tracks_minimum() {
        let mut v = Vegas::new();
        v.on_ack(&ack(1, 80));
        v.on_ack(&ack(2, 40));
        v.on_ack(&ack(3, 120));
        assert_eq!(v.base_rtt(), Some(Duration::from_millis(40)));
    }

    #[test]
    fn grows_when_queue_is_short() {
        let mut v = in_ca();
        let before = v.cwnd_bytes();
        // RTT equals base RTT → zero queued segments → below α → grow.
        v.on_ack(&ack(1, 40));
        v.on_ack(&ack(100, 40));
        assert!(v.cwnd_bytes() > before, "{} -> {}", before, v.cwnd_bytes());
    }

    #[test]
    fn shrinks_when_queue_is_long() {
        let mut v = in_ca();
        v.on_ack(&ack(1, 40)); // establishes base_rtt = 40ms
        crate::cc::test_util::feed_acks(&mut v, 10, 40);
        let before = v.cwnd_bytes();
        // RTT now 3× base → many queued segments → above β → shrink.
        v.on_ack(&ack(10_000, 120));
        v.on_ack(&ack(10_500, 120));
        assert!(v.cwnd_bytes() < before, "{} -> {}", before, v.cwnd_bytes());
    }

    #[test]
    fn adjustment_is_rate_limited_to_once_per_rtt() {
        let mut v = in_ca();
        v.on_ack(&ack(1, 40));
        let after_first = v.cwnd_bytes();
        // A burst of ACKs within the same RTT adjusts at most once more.
        for i in 2..10 {
            v.on_ack(&ack(i, 40));
        }
        assert!(v.cwnd_bytes() <= after_first + MSS);
    }

    #[test]
    fn loss_and_timeout_shrink() {
        let mut v = Vegas::new();
        crate::cc::test_util::feed_acks(&mut v, 30, 40);
        let grown = v.cwnd_bytes();
        v.on_loss(SimTime::ZERO + Duration::from_millis(8000));
        assert!(v.cwnd_bytes() <= grown / 2 + MSS);
        v.on_timeout(SimTime::ZERO + Duration::from_millis(9000));
        assert_eq!(v.cwnd_bytes(), MIN_CWND);
    }
}
