//! # aml-netsim
//!
//! A deterministic discrete-event network simulator with six
//! congestion-control protocols, standing in for the Pantheon emulator the
//! paper used to label its "Scream vs rest" dataset.
//!
//! Design goals follow the smoltcp school: event-driven, simple, robust,
//! allocation-light, and **fully deterministic** — a `(NetworkCondition,
//! seed)` pair always produces the identical packet trace. There is no async
//! runtime anywhere: simulated time is advanced by a binary-heap event
//! queue, which is both faster and reproducible.
//!
//! ## Topology
//!
//! The classic single-bottleneck dumbbell:
//!
//! ```text
//! sender(s) ──▶ [DropTail queue] ──▶ (rate R, delay D/2, loss p) ──▶ receiver
//!     ▲                                                                │
//!     └───────────────── ACK path (delay D/2, clean) ◀─────────────────┘
//! ```
//!
//! All `n_flows` flows run the same protocol and share the bottleneck
//! (the paper's feature is "number of concurrent flows"). Data packets are
//! FIFO through the queue; the in-order delivery property makes loss
//! detection exact: an ACK for sequence `n` proves every older outstanding
//! sequence was lost.
//!
//! ## Protocols ([`cc`])
//!
//! | protocol | family | reacts to |
//! |---|---|---|
//! | [`cc::scream::Scream`] | self-clocked rate adaptation (RFC 8298 spirit) | queuing delay target |
//! | [`cc::reno::Reno`] | AIMD window | loss |
//! | [`cc::cubic::Cubic`] | cubic window | loss |
//! | [`cc::vegas::Vegas`] | delay-based window | RTT inflation |
//! | [`cc::bbr::Bbr`] | model-based rate | delivery rate + min RTT |
//! | [`cc::copa::Copa`] | delay-target rate | queuing delay |
//!
//! ## Labeling ([`runner`])
//!
//! A condition is labelled **"use Scream"** when Scream achieves the lowest
//! mean packet delay among protocols that also reach a minimum useful
//! throughput (half their fair share). The disqualification clause is what
//! makes the problem non-trivial — a delay-targeting protocol that
//! collapses under random loss should *not* be chosen, which is exactly the
//! regime the paper's running example probes.

pub mod cc;
pub mod datagen;
pub mod event;
pub mod flow;
pub mod packet;
pub mod queue;
pub mod red;
pub mod runner;
pub mod scenario;
pub mod sim;
pub mod time;

pub use cc::{CcKind, CongestionControl};
pub use runner::{label_condition, run_protocol, ProtocolResult};
pub use scenario::{ConditionDomain, NetworkCondition};
pub use sim::{FlowStats, SimConfig, Simulation};
pub use time::{Duration, SimTime};

/// Errors from the simulation layer.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A network-condition parameter is outside its physical range.
    InvalidCondition(String),
    /// A simulator configuration value is invalid.
    InvalidConfig(String),
    /// Dataset layer failure during data generation.
    Data(aml_dataset::DataError),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InvalidCondition(m) => write!(f, "invalid network condition: {m}"),
            SimError::InvalidConfig(m) => write!(f, "invalid simulator config: {m}"),
            SimError::Data(e) => write!(f, "dataset error: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<aml_dataset::DataError> for SimError {
    fn from(e: aml_dataset::DataError) -> Self {
        SimError::Data(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SimError>;
