//! RED (Random Early Detection) bottleneck queue — an AQM alternative to
//! [`crate::queue::DropTailQueue`].
//!
//! RED drops arriving packets probabilistically as the EWMA of the queue
//! size climbs between `min_th` and `max_th`, signalling congestion before
//! the buffer fills. Its inclusion serves the paper's *domain
//! customization* vision (§1): the choice of queue discipline is exactly
//! the kind of domain prior an operator would encode, and the ablation
//! benches can check how robust the "use Scream" decision surface is to it.
//!
//! Simplifications vs. the full Floyd/Jacobson algorithm (documented, not
//! hidden): no idle-time decay of the average, and no inter-drop count
//! spacing — drops are i.i.d. Bernoulli at the computed probability.

use crate::packet::Packet;
use crate::time::SimTime;
use aml_rng::rngs::StdRng;
use aml_rng::{Rng, SeedableRng};
use std::collections::VecDeque;

/// EWMA weight for the average queue size.
const W_Q: f64 = 0.05;
/// Drop probability at `max_th`.
const MAX_P: f64 = 0.1;

/// A RED queue with byte-based thresholds.
#[derive(Debug)]
pub struct RedQueue {
    capacity_bytes: u64,
    min_th: f64,
    max_th: f64,
    queue: VecDeque<Packet>,
    bytes: u64,
    avg: f64,
    rng: StdRng,
    /// Packets dropped (early + overflow).
    pub drops: u64,
    /// Of which: early (probabilistic) drops.
    pub early_drops: u64,
    /// High-water mark of queued bytes.
    pub max_bytes: u64,
}

impl RedQueue {
    /// A RED queue holding at most `capacity_bytes`, with thresholds at
    /// 25% / 75% of capacity.
    pub fn new(capacity_bytes: u64, seed: u64) -> Self {
        let cap = capacity_bytes.max(1500);
        RedQueue {
            capacity_bytes: cap,
            min_th: cap as f64 * 0.25,
            max_th: cap as f64 * 0.75,
            queue: VecDeque::new(),
            bytes: 0,
            avg: 0.0,
            rng: StdRng::seed_from_u64(seed),
            drops: 0,
            early_drops: 0,
            max_bytes: 0,
        }
    }

    /// Try to enqueue; returns `true` if accepted. `_now` is accepted for
    /// interface parity with time-aware AQMs (CoDel would need it).
    pub fn enqueue(&mut self, packet: Packet, _now: SimTime) -> bool {
        self.avg = (1.0 - W_Q) * self.avg + W_Q * self.bytes as f64;

        // Physical overflow always drops.
        if self.bytes + packet.size as u64 > self.capacity_bytes {
            self.drops += 1;
            return false;
        }
        // Early-drop band.
        if self.avg > self.max_th {
            self.drops += 1;
            self.early_drops += 1;
            return false;
        }
        if self.avg > self.min_th {
            let p = MAX_P * (self.avg - self.min_th) / (self.max_th - self.min_th);
            if self.rng.gen::<f64>() < p {
                self.drops += 1;
                self.early_drops += 1;
                return false;
            }
        }
        self.bytes += packet.size as u64;
        self.max_bytes = self.max_bytes.max(self.bytes);
        self.queue.push_back(packet);
        true
    }

    /// Dequeue the head packet.
    pub fn dequeue(&mut self) -> Option<Packet> {
        let p = self.queue.pop_front()?;
        self.bytes -= p.size as u64;
        Some(p)
    }

    /// Currently queued bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Current EWMA of the queue size (bytes).
    pub fn avg(&self) -> f64 {
        self.avg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(seq: u64) -> Packet {
        Packet {
            flow: 0,
            seq,
            size: 1500,
            sent_at: SimTime::ZERO,
        }
    }

    #[test]
    fn empty_queue_accepts_everything_early() {
        let mut q = RedQueue::new(150_000, 1);
        for i in 0..10 {
            assert!(q.enqueue(pkt(i), SimTime::ZERO), "avg still below min_th");
        }
        assert_eq!(q.drops, 0);
    }

    #[test]
    fn sustained_occupancy_triggers_early_drops() {
        let mut q = RedQueue::new(30_000, 2);
        // Offered load of 2 packets per service slot: the link (one
        // dequeue per loop) can't keep up, the EWMA climbs into the
        // early-drop band, and RED sheds load *before* the buffer is full.
        for i in 0..500u64 {
            q.enqueue(pkt(2 * i), SimTime::ZERO);
            q.enqueue(pkt(2 * i + 1), SimTime::ZERO);
            q.dequeue();
        }
        assert!(
            q.early_drops > 0,
            "early drops {} of {}",
            q.early_drops,
            q.drops
        );
        assert!(
            q.early_drops < q.drops || q.drops == q.early_drops,
            "accounting consistent"
        );
    }

    #[test]
    fn overflow_still_guards_capacity() {
        let mut q = RedQueue::new(3_000, 3);
        let mut in_queue = 0;
        for i in 0..10 {
            if q.enqueue(pkt(i), SimTime::ZERO) {
                in_queue += 1;
            }
        }
        assert!(in_queue <= 2, "3000B capacity holds at most 2 MTU packets");
        assert!(q.bytes() <= 3_000);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed: u64| -> (u64, u64) {
            let mut q = RedQueue::new(15_000, seed);
            for i in 0..300 {
                q.enqueue(pkt(i), SimTime::ZERO);
                if i % 3 == 0 {
                    q.dequeue();
                }
            }
            (q.drops, q.early_drops)
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = RedQueue::new(150_000, 5);
        q.enqueue(pkt(1), SimTime::ZERO);
        q.enqueue(pkt(2), SimTime::ZERO);
        assert_eq!(q.dequeue().unwrap().seq, 1);
        assert_eq!(q.dequeue().unwrap().seq, 2);
        assert!(q.dequeue().is_none());
    }
}
