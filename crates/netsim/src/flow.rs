//! Per-flow sender state: reliability bookkeeping, RTT estimation
//! (RFC 6298), delivery-rate estimation, and pacing state.
//!
//! The flow owns everything a real TCP sender tracks *except* the
//! congestion-control decision, which is delegated to the boxed
//! [`CongestionControl`] so the same machinery drives all six protocols.

use crate::cc::{AckEvent, CongestionControl};
use crate::time::{Duration, SimTime};
use std::collections::{BTreeMap, VecDeque};

/// Minimum retransmission timeout (sim-scale; real stacks use 200 ms–1 s).
const MIN_RTO: Duration = Duration::from_millis(100);
/// RTO ceiling.
const MAX_RTO: Duration = Duration::from_millis(2_000);

/// One sender flow.
pub struct Flow {
    /// Flow index.
    pub id: usize,
    /// The congestion controller.
    pub cc: Box<dyn CongestionControl>,
    /// Next sequence number to send.
    pub next_seq: u64,
    /// Outstanding packets: seq → (sent_at, size).
    pub inflight: BTreeMap<u64, (SimTime, u32)>,
    /// Sum of outstanding sizes.
    pub inflight_bytes: u64,
    /// Earliest instant pacing allows the next send.
    pub next_send_time: SimTime,
    /// Whether a SenderWake event is already scheduled (avoids duplicates).
    pub wake_scheduled: bool,
    /// Timeout-timer generation (stale-event guard).
    pub timeout_generation: u64,
    /// When the last ACK arrived (or the flow started).
    pub last_ack_time: SimTime,
    /// Whether the flow has started sending.
    pub started: bool,

    // --- RTT estimation (RFC 6298) ---
    srtt: Option<Duration>,
    rttvar: Duration,

    // --- delivery-rate estimation ---
    /// Cumulative bytes acknowledged.
    pub delivered_bytes: u64,
    /// Recent (time, cumulative delivered) checkpoints.
    rate_window: VecDeque<(SimTime, u64)>,

    // --- statistics ---
    /// Packets detected lost (gaps + timeouts).
    pub lost_packets: u64,
    /// One-way delay samples (seconds) of packets delivered after warmup.
    pub delay_samples: Vec<f64>,
    /// RTT samples (seconds) observed after warmup.
    pub rtt_samples: Vec<f64>,
    /// Bytes delivered after warmup (throughput numerator).
    pub measured_bytes: u64,
}

impl Flow {
    /// New idle flow.
    pub fn new(id: usize, cc: Box<dyn CongestionControl>) -> Self {
        Flow {
            id,
            cc,
            next_seq: 0,
            inflight: BTreeMap::new(),
            inflight_bytes: 0,
            next_send_time: SimTime::ZERO,
            wake_scheduled: false,
            timeout_generation: 0,
            last_ack_time: SimTime::ZERO,
            started: false,
            srtt: None,
            rttvar: Duration::ZERO,
            delivered_bytes: 0,
            rate_window: VecDeque::new(),
            lost_packets: 0,
            delay_samples: Vec::new(),
            rtt_samples: Vec::new(),
            measured_bytes: 0,
        }
    }

    /// Register a sent packet.
    pub fn on_send(&mut self, seq: u64, size: u32, now: SimTime) {
        self.inflight.insert(seq, (now, size));
        self.inflight_bytes += size as u64;
    }

    /// Process a received ACK for `seq`. Returns the [`AckEvent`] passed to
    /// the congestion controller (also applied internally), or `None` if
    /// the ACK was stale (already-removed sequence — e.g. declared lost).
    pub fn on_ack(
        &mut self,
        seq: u64,
        sent_at: SimTime,
        bytes: u32,
        now: SimTime,
    ) -> Option<AckEvent> {
        // In-order path ⇒ anything older than `seq` still outstanding was
        // dropped. Collect and mark lost before accounting this ACK.
        let lost: Vec<u64> = self.inflight.range(..seq).map(|(&s, _)| s).collect();
        let had_loss = !lost.is_empty();
        for s in lost {
            let (_, sz) = self.inflight.remove(&s).expect("key from range");
            self.inflight_bytes -= sz as u64;
            self.lost_packets += 1;
        }

        self.inflight.remove(&seq)?;
        self.inflight_bytes -= bytes as u64;
        self.last_ack_time = now;

        let rtt = now.since(sent_at);
        self.update_rtt(rtt);
        self.delivered_bytes += bytes as u64;
        let rate = self.update_delivery_rate(now);

        let ev = AckEvent {
            now,
            rtt,
            bytes_acked: bytes,
            inflight_bytes: self.inflight_bytes,
            delivery_rate_bps: rate,
        };
        if had_loss {
            self.cc.on_loss(now);
        }
        self.cc.on_ack(&ev);
        Some(ev)
    }

    /// Declare the whole outstanding window lost (timeout). Returns the
    /// number of packets discarded.
    pub fn on_timeout(&mut self, now: SimTime) -> usize {
        let n = self.inflight.len();
        self.lost_packets += n as u64;
        self.inflight.clear();
        self.inflight_bytes = 0;
        self.cc.on_timeout(now);
        // Back off the RTO by inflating rttvar.
        self.rttvar = (self.rttvar.mul_f64(2.0)).min(MAX_RTO);
        n
    }

    fn update_rtt(&mut self, sample: Duration) {
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample.mul_f64(0.5);
            }
            Some(srtt) => {
                let diff = if srtt > sample {
                    srtt - sample
                } else {
                    sample - srtt
                };
                self.rttvar = self.rttvar.mul_f64(0.75) + diff.mul_f64(0.25);
                self.srtt = Some(srtt.mul_f64(0.875) + sample.mul_f64(0.125));
            }
        }
    }

    /// Smoothed RTT (sample default before first measurement).
    pub fn srtt(&self) -> Duration {
        self.srtt.unwrap_or(Duration::from_millis(100))
    }

    /// Current retransmission timeout. Before the first RTT sample the RTO
    /// is maximal (RFC 6298 prescribes a conservative initial RTO —
    /// otherwise long-RTT paths suffer spurious timeouts before their very
    /// first ACK). After convergence, a 1.5× multiplicative margin on the
    /// smoothed RTT guards against `rttvar → 0` turning ordinary queuing
    /// jitter into timeouts.
    pub fn rto(&self) -> Duration {
        let Some(srtt) = self.srtt else {
            return MAX_RTO;
        };
        (srtt.mul_f64(1.5) + self.rttvar.mul_f64(4.0))
            .max(MIN_RTO)
            .min(MAX_RTO)
    }

    /// Delivery-rate estimate over roughly the last smoothed RTT.
    fn update_delivery_rate(&mut self, now: SimTime) -> Option<f64> {
        self.rate_window.push_back((now, self.delivered_bytes));
        let horizon = self.srtt().mul_f64(2.0).max(Duration::from_millis(20));
        while let Some(&(t, _)) = self.rate_window.front() {
            if now.since(t) > horizon && self.rate_window.len() > 2 {
                self.rate_window.pop_front();
            } else {
                break;
            }
        }
        let (t0, b0) = *self.rate_window.front()?;
        let elapsed = now.since(t0).as_secs_f64();
        if elapsed <= 1e-6 || self.rate_window.len() < 3 {
            return None;
        }
        Some((self.delivered_bytes - b0) as f64 * 8.0 / elapsed)
    }

    /// Whether the window has room for another `size`-byte packet.
    pub fn can_send(&self, size: u32) -> bool {
        self.inflight_bytes + size as u64 <= self.cc.cwnd_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::reno::Reno;

    fn flow() -> Flow {
        Flow::new(0, Box::new(Reno::new()))
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + Duration::from_millis(ms)
    }

    #[test]
    fn ack_removes_inflight_and_samples_rtt() {
        let mut f = flow();
        f.on_send(0, 1500, t(0));
        assert_eq!(f.inflight_bytes, 1500);
        let ev = f.on_ack(0, t(0), 1500, t(40)).unwrap();
        assert_eq!(f.inflight_bytes, 0);
        assert_eq!(ev.rtt, Duration::from_millis(40));
        assert_eq!(f.srtt(), Duration::from_millis(40));
        assert_eq!(f.delivered_bytes, 1500);
    }

    #[test]
    fn gap_ack_declares_older_packets_lost() {
        let mut f = flow();
        f.on_send(0, 1500, t(0));
        f.on_send(1, 1500, t(1));
        f.on_send(2, 1500, t(2));
        // Ack of seq 2 with 0 and 1 still outstanding ⇒ both lost.
        let ev = f.on_ack(2, t(2), 1500, t(42)).unwrap();
        assert_eq!(f.lost_packets, 2);
        assert_eq!(f.inflight_bytes, 0);
        assert_eq!(ev.bytes_acked, 1500);
    }

    #[test]
    fn stale_ack_returns_none() {
        let mut f = flow();
        f.on_send(0, 1500, t(0));
        f.on_ack(0, t(0), 1500, t(40)).unwrap();
        assert!(f.on_ack(0, t(0), 1500, t(50)).is_none());
    }

    #[test]
    fn timeout_clears_window() {
        let mut f = flow();
        for s in 0..5 {
            f.on_send(s, 1500, t(s));
        }
        let n = f.on_timeout(t(500));
        assert_eq!(n, 5);
        assert_eq!(f.inflight_bytes, 0);
        assert_eq!(f.lost_packets, 5);
    }

    #[test]
    fn rto_bounded() {
        let mut f = flow();
        assert!(f.rto() >= MIN_RTO);
        f.on_send(0, 1500, t(0));
        f.on_ack(0, t(0), 1500, t(1));
        assert!(f.rto() >= MIN_RTO && f.rto() <= MAX_RTO);
    }

    #[test]
    fn rtt_smoothing_converges() {
        let mut f = flow();
        for i in 0..100u64 {
            f.on_send(i, 1500, t(i * 50));
            f.on_ack(i, t(i * 50), 1500, t(i * 50 + 40));
        }
        let srtt_ms = f.srtt().as_millis_f64();
        assert!((srtt_ms - 40.0).abs() < 2.0, "srtt {srtt_ms} ≈ 40ms");
    }

    #[test]
    fn delivery_rate_estimates_sensible_magnitude() {
        let mut f = flow();
        // Deliver 1500B every 1ms → 12 Mbps.
        let mut rate = None;
        for i in 0..200u64 {
            f.on_send(i, 1500, t(i));
            if let Some(ev) = f.on_ack(i, t(i), 1500, t(i + 40)) {
                rate = ev.delivery_rate_bps.or(rate);
            }
        }
        let r = rate.expect("rate should be estimated");
        assert!((r - 12e6).abs() / 12e6 < 0.25, "rate {r} ≈ 12 Mbps");
    }

    #[test]
    fn can_send_respects_cwnd() {
        let mut f = flow();
        let cwnd = f.cc.cwnd_bytes();
        let mut sent = 0u64;
        let mut seq = 0u64;
        while f.can_send(1500) {
            f.on_send(seq, 1500, t(0));
            seq += 1;
            sent += 1500;
            assert!(sent <= cwnd + 1500);
        }
        assert!(f.inflight_bytes <= cwnd);
    }
}
