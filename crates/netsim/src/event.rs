//! The discrete-event queue.
//!
//! A binary min-heap of `(time, sequence, event)` where the monotonically
//! increasing sequence number breaks time ties — two events scheduled for
//! the same instant always pop in scheduling order, which makes the whole
//! simulation deterministic regardless of heap internals.

use crate::packet::Packet;
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Everything that can happen in the simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A flow becomes active and starts sending.
    FlowStart {
        /// Flow index.
        flow: usize,
    },
    /// The bottleneck link finished serializing its head packet and can
    /// start on the next one.
    LinkFree,
    /// A data packet arrives at the receiver.
    Delivery {
        /// The delivered packet.
        packet: Packet,
    },
    /// An ACK arrives back at a sender.
    AckArrival {
        /// Flow index the ACK belongs to.
        flow: usize,
        /// Sequence number being acknowledged.
        seq: u64,
        /// When the acknowledged data packet was originally sent.
        sent_at: SimTime,
        /// Bytes acknowledged.
        bytes: u32,
    },
    /// Pacing timer: the flow may be able to send now.
    SenderWake {
        /// Flow index.
        flow: usize,
    },
    /// Retransmission timeout check for a flow. `generation` guards against
    /// stale timers: each (re)scheduling bumps the flow's generation and
    /// old events are ignored on pop.
    Timeout {
        /// Flow index.
        flow: usize,
        /// Timer generation this event belongs to.
        generation: u64,
    },
}

#[derive(PartialEq, Eq)]
struct Entry {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic event queue.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Entry>>,
    next_seq: u64,
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Pop the earliest event (ties in scheduling order).
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        let t = |ms| SimTime::ZERO + Duration::from_millis(ms);
        q.schedule(t(5), Event::LinkFree);
        q.schedule(t(1), Event::SenderWake { flow: 0 });
        q.schedule(t(3), Event::FlowStart { flow: 1 });
        assert_eq!(q.pop().unwrap().0, t(1));
        assert_eq!(q.pop().unwrap().0, t(3));
        assert_eq!(q.pop().unwrap().0, t(5));
        assert!(q.pop().is_none());
    }

    #[test]
    fn same_time_pops_in_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::ZERO + Duration::from_millis(7);
        for flow in 0..10 {
            q.schedule(t, Event::SenderWake { flow });
        }
        for expect in 0..10 {
            match q.pop().unwrap().1 {
                Event::SenderWake { flow } => assert_eq!(flow, expect),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn len_tracks_content() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, Event::LinkFree);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
