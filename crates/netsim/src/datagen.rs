//! Dataset generation: sample network conditions, simulate, label.
//!
//! This is the simulator-backed replacement for the paper's Pantheon data
//! collection ("Because we collect the data through emulation, we can
//! easily collect any additional data the feedback solution specifies") —
//! and that last property is the crucial one: [`label_rows`] can label
//! *arbitrary* feature points, which is what lets the ALE feedback sample
//! freely from suggested regions instead of being confined to a candidate
//! pool.

use crate::runner::label_condition;
use crate::scenario::{ConditionDomain, NetworkCondition};
use crate::Result;
use aml_dataset::Dataset;
use aml_rng::rngs::StdRng;
use aml_rng::SeedableRng;

/// SplitMix64 per-sample seed derivation.
fn derive_seed(master: u64, index: u64) -> u64 {
    let mut z = master ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Label one scenario under its own traced span, recording the
/// per-scenario cost histogram (`datagen.scenario_ns`) and the
/// `datagen.scenarios_total` counter. The [`aml_telemetry::TraceContext`]
/// handoff makes the span a child of `netsim.labeling` whichever worker
/// thread runs it, with the *scenario index* as the deterministic slot —
/// so sequential and parallel runs build byte-identical trace trees.
fn label_scenario(
    ctx: aml_telemetry::TraceContext,
    index: usize,
    condition: NetworkCondition,
    master_seed: u64,
) -> Result<bool> {
    let _handoff = ctx.attach(index as u64);
    let _span = aml_telemetry::span!("netsim.scenario");
    let started = aml_telemetry::maybe_now();
    let label = label_condition(condition, derive_seed(master_seed, index as u64));
    if let Some(t) = started {
        aml_telemetry::histogram_record("datagen.scenario_ns", t.elapsed().as_nanos() as u64);
        aml_telemetry::counter_add("datagen.scenarios_total", 1);
    }
    label
}

/// Label one batch of conditions with up to `parallelism` threads.
/// Output order matches input order; each condition gets an independent
/// derived seed so results don't depend on batch composition.
pub fn label_conditions(
    conditions: &[NetworkCondition],
    master_seed: u64,
    parallelism: usize,
) -> Result<Vec<bool>> {
    let _span = aml_telemetry::span!("netsim.labeling");
    aml_telemetry::counter_add("netsim.labels", conditions.len() as u64);
    let ctx = aml_telemetry::TraceContext::current();
    let jobs: Vec<(usize, NetworkCondition)> = conditions.iter().copied().enumerate().collect();
    if parallelism <= 1 || jobs.len() <= 1 {
        return jobs
            .into_iter()
            .map(|(i, c)| label_scenario(ctx, i, c, master_seed))
            .collect();
    }
    let chunk = jobs.len().div_ceil(parallelism);
    let mut out: Vec<Option<bool>> = vec![None; conditions.len()];
    let mut first_err: Option<crate::SimError> = None;
    scoped_label_chunks(ctx, &jobs, chunk, master_seed, &mut out, &mut first_err);
    if let Some(e) = first_err {
        return Err(e);
    }
    Ok(out
        .into_iter()
        .map(|o| o.expect("all slots filled"))
        .collect())
}

/// Tiny scoped-thread fan-out on `std::thread::scope`, like the AutoML
/// search's `train_all`: index-slotted output, so the result is identical
/// to a sequential run.
fn scoped_label_chunks(
    ctx: aml_telemetry::TraceContext,
    jobs: &[(usize, NetworkCondition)],
    chunk: usize,
    master_seed: u64,
    out: &mut [Option<bool>],
    first_err: &mut Option<crate::SimError>,
) {
    let results: Vec<Vec<(usize, Result<bool>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .chunks(chunk)
            .map(|piece| {
                let piece = piece.to_vec();
                scope.spawn(move || {
                    piece
                        .into_iter()
                        .map(|(i, c)| (i, label_scenario(ctx, i, c, master_seed)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("labeling threads don't panic"))
            .collect()
    });
    for piece in results {
        for (i, r) in piece {
            match r {
                Ok(label) => out[i] = Some(label),
                Err(e) => {
                    if first_err.is_none() {
                        *first_err = Some(e);
                    }
                    out[i] = Some(false);
                }
            }
        }
    }
}

/// How conditions are drawn from the domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingMode {
    /// Uniform over the domain (the candidate-pool distribution).
    Uniform,
    /// Production-like, biased toward typical operating points
    /// ([`ConditionDomain::sample_production`]) — how an operator's
    /// training/test data is actually collected.
    Production,
}

/// Generate `n` uniformly sampled, simulator-labelled samples.
pub fn generate_dataset(
    domain: &ConditionDomain,
    n: usize,
    seed: u64,
    parallelism: usize,
) -> Result<Dataset> {
    generate_dataset_mode(domain, n, seed, parallelism, SamplingMode::Uniform)
}

/// Generate `n` simulator-labelled samples with the given sampling mode.
pub fn generate_dataset_mode(
    domain: &ConditionDomain,
    n: usize,
    seed: u64,
    parallelism: usize,
    mode: SamplingMode,
) -> Result<Dataset> {
    let mut rng = StdRng::seed_from_u64(seed);
    let conditions: Vec<NetworkCondition> = (0..n)
        .map(|_| match mode {
            SamplingMode::Uniform => domain.sample(&mut rng),
            SamplingMode::Production => domain.sample_production(&mut rng),
        })
        .collect();
    let labels = label_conditions(&conditions, seed ^ 0xDA7A, parallelism)?;
    let mut ds = domain.empty_dataset()?;
    for (c, &scream_wins) in conditions.iter().zip(&labels) {
        ds.push_row(&c.to_row(), usize::from(scream_wins))?;
    }
    Ok(ds)
}

/// Label arbitrary feature rows (the feedback loop's "collect the data the
/// feedback solution specifies" step). Rows are clamped into validity by
/// [`NetworkCondition::from_row`].
pub fn label_rows(
    rows: &[Vec<f64>],
    domain: &ConditionDomain,
    seed: u64,
    parallelism: usize,
) -> Result<Dataset> {
    let conditions: Vec<NetworkCondition> = rows
        .iter()
        .map(|r| NetworkCondition::from_row(r))
        .collect::<Result<_>>()?;
    let labels = label_conditions(&conditions, seed, parallelism)?;
    let mut ds = domain.empty_dataset()?;
    for (c, &scream_wins) in conditions.iter().zip(&labels) {
        ds.push_row(&c.to_row(), usize::from(scream_wins))?;
    }
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_domain() -> ConditionDomain {
        // Narrow + low-rate domain keeps unit tests fast.
        ConditionDomain {
            link_rate: (2.0, 10.0),
            rtt: (20.0, 60.0),
            loss: (0.0, 0.04),
            flows: (1, 2),
        }
    }

    #[test]
    fn generates_requested_size_with_schema() {
        let ds = generate_dataset(&small_domain(), 12, 3, 1).unwrap();
        assert_eq!(ds.n_rows(), 12);
        assert_eq!(ds.n_features(), 4);
        assert_eq!(
            ds.class_names(),
            &["rest".to_string(), "scream".to_string()]
        );
    }

    #[test]
    fn deterministic_and_parallel_consistent() {
        let a = generate_dataset(&small_domain(), 10, 7, 1).unwrap();
        let b = generate_dataset(&small_domain(), 10, 7, 4).unwrap();
        assert_eq!(a, b, "parallel labeling must match sequential");
    }

    #[test]
    fn both_classes_appear_across_the_domain() {
        // The domain spans clean (Scream-friendly) and lossy
        // (Scream-hostile) regimes, so a moderate sample hits both labels.
        let ds = generate_dataset(&small_domain(), 24, 11, 4).unwrap();
        let counts = ds.class_counts();
        assert!(
            counts[0] > 0 && counts[1] > 0,
            "expected both classes, got {counts:?}"
        );
    }

    #[test]
    fn production_mode_generates_valid_dataset() {
        use super::SamplingMode;
        let ds =
            generate_dataset_mode(&small_domain(), 10, 5, 1, SamplingMode::Production).unwrap();
        assert_eq!(ds.n_rows(), 10);
        // Deterministic too.
        let ds2 =
            generate_dataset_mode(&small_domain(), 10, 5, 1, SamplingMode::Production).unwrap();
        assert_eq!(ds, ds2);
    }

    #[test]
    fn label_rows_accepts_raw_feature_points() {
        let rows = vec![vec![5.0, 40.0, 0.0, 1.0], vec![5.0, 40.0, 0.04, 1.0]];
        let ds = label_rows(&rows, &small_domain(), 5, 1).unwrap();
        assert_eq!(ds.n_rows(), 2);
        assert_eq!(ds.row(0)[0], 5.0);
    }

    #[test]
    fn scenario_trace_trees_match_across_worker_counts() {
        use aml_telemetry::tracetree;

        let domain = small_domain();
        let mut rng = aml_rng::rngs::StdRng::seed_from_u64(3);
        let conditions: Vec<NetworkCondition> = (0..6).map(|_| domain.sample(&mut rng)).collect();

        // Other tests in this binary may label concurrently once the
        // level flips on, so each collection is wrapped in a uniquely
        // named root span and compared subtree-to-subtree.
        let subtree_of = |nodes: &[tracetree::Node], root: &str| {
            let root_id = nodes.iter().find(|n| n.name == root).map(|n| n.id)?;
            let mut keep = std::collections::HashSet::from([root_id]);
            loop {
                let before = keep.len();
                for n in nodes {
                    if keep.contains(&n.parent) {
                        keep.insert(n.id);
                    }
                }
                if keep.len() == before {
                    break;
                }
            }
            let mut s: Vec<(u64, u64, String, bool)> = nodes
                .iter()
                .filter(|n| keep.contains(&n.id))
                .map(|n| (n.id, n.parent, n.name.clone(), n.parallel))
                .collect();
            s.sort();
            Some(s)
        };
        let run = |parallelism: usize| {
            tracetree::reset();
            tracetree::set_active(true);
            {
                let _wrap = aml_telemetry::span!("test.datagen.wrap");
                label_conditions(&conditions, 0x5eed, parallelism).unwrap();
            }
            tracetree::set_active(false);
            let nodes = tracetree::entries();
            let sub = subtree_of(&nodes, "test.datagen.wrap").unwrap();
            tracetree::reset();
            sub
        };

        aml_telemetry::set_level(aml_telemetry::TelemetryLevel::Summary);
        let one = run(1);
        let four = run(4);
        aml_telemetry::set_level(aml_telemetry::TelemetryLevel::Off);

        assert_eq!(one, four, "trace tree must not depend on worker count");
        let scenarios = one.iter().filter(|(_, _, n, _)| n == "netsim.scenario");
        assert_eq!(scenarios.clone().count(), conditions.len());
        assert!(scenarios.clone().all(|(_, _, _, par)| *par));
        let labeling = one
            .iter()
            .find(|(_, _, n, _)| n == "netsim.labeling")
            .unwrap();
        assert!(scenarios
            .clone()
            .all(|(_, parent, _, _)| *parent == labeling.0));
    }

    #[test]
    fn order_independence_of_labels() {
        // Each sample's seed is derived from its index, but the *simulation*
        // outcome depends only on (condition, derived seed): labeling the
        // same condition at the same index twice matches.
        let rows = vec![vec![6.0, 30.0, 0.01, 1.0]; 3];
        let a = label_rows(&rows, &small_domain(), 9, 1).unwrap();
        let b = label_rows(&rows, &small_domain(), 9, 2).unwrap();
        assert_eq!(a.labels(), b.labels());
    }
}
