//! DropTail bottleneck queue.
//!
//! Byte-capacity FIFO: arriving packets that don't fit are dropped (the
//! sender learns about it from the resulting sequence gap or a timeout,
//! exactly like a real drop-tail router).

use crate::packet::Packet;
use std::collections::VecDeque;

/// A byte-bounded FIFO queue with drop statistics.
#[derive(Debug)]
pub struct DropTailQueue {
    capacity_bytes: u64,
    queue: VecDeque<Packet>,
    bytes: u64,
    /// Total packets dropped at enqueue.
    pub drops: u64,
    /// High-water mark of queued bytes.
    pub max_bytes: u64,
}

impl DropTailQueue {
    /// A queue holding at most `capacity_bytes` (at least one MTU so a
    /// single packet can always transit).
    pub fn new(capacity_bytes: u64) -> Self {
        DropTailQueue {
            capacity_bytes: capacity_bytes.max(1500),
            queue: VecDeque::new(),
            bytes: 0,
            drops: 0,
            max_bytes: 0,
        }
    }

    /// Try to enqueue; returns `true` if accepted, `false` if dropped.
    pub fn enqueue(&mut self, packet: Packet) -> bool {
        if self.bytes + packet.size as u64 > self.capacity_bytes {
            self.drops += 1;
            return false;
        }
        self.bytes += packet.size as u64;
        self.max_bytes = self.max_bytes.max(self.bytes);
        self.queue.push_back(packet);
        true
    }

    /// Dequeue the head packet.
    pub fn dequeue(&mut self) -> Option<Packet> {
        let p = self.queue.pop_front()?;
        self.bytes -= p.size as u64;
        Some(p)
    }

    /// Currently queued bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Currently queued packets.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Configured byte capacity.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn pkt(seq: u64, size: u32) -> Packet {
        Packet {
            flow: 0,
            seq,
            size,
            sent_at: SimTime::ZERO,
        }
    }

    #[test]
    fn fifo_order() {
        let mut q = DropTailQueue::new(10_000);
        assert!(q.enqueue(pkt(1, 1500)));
        assert!(q.enqueue(pkt(2, 1500)));
        assert_eq!(q.dequeue().unwrap().seq, 1);
        assert_eq!(q.dequeue().unwrap().seq, 2);
        assert!(q.dequeue().is_none());
    }

    #[test]
    fn drops_when_full() {
        let mut q = DropTailQueue::new(3_000);
        assert!(q.enqueue(pkt(1, 1500)));
        assert!(q.enqueue(pkt(2, 1500)));
        assert!(
            !q.enqueue(pkt(3, 1500)),
            "third packet exceeds 3000B capacity"
        );
        assert_eq!(q.drops, 1);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn byte_accounting_is_conserved() {
        let mut q = DropTailQueue::new(100_000);
        for i in 0..10 {
            q.enqueue(pkt(i, 1000));
        }
        assert_eq!(q.bytes(), 10_000);
        for _ in 0..4 {
            q.dequeue();
        }
        assert_eq!(q.bytes(), 6_000);
        assert_eq!(q.max_bytes, 10_000);
    }

    #[test]
    fn capacity_floor_is_one_mtu() {
        let mut q = DropTailQueue::new(10);
        assert_eq!(q.capacity_bytes(), 1500);
        assert!(q.enqueue(pkt(1, 1500)), "a single MTU packet always fits");
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::time::SimTime;
    use aml_propcheck::prelude::*;

    proptest! {
        /// Conservation: packets in = packets out + drops + still queued,
        /// and queued bytes never exceed capacity.
        #[test]
        fn prop_queue_conservation(
            sizes in aml_propcheck::collection::vec(100u32..2000, 1..200),
            capacity in 1500u64..20_000,
        ) {
            let mut q = DropTailQueue::new(capacity);
            let mut accepted = 0u64;
            for (i, &s) in sizes.iter().enumerate() {
                let p = Packet { flow: 0, seq: i as u64, size: s, sent_at: SimTime::ZERO };
                if q.enqueue(p) {
                    accepted += 1;
                }
                prop_assert!(q.bytes() <= q.capacity_bytes());
            }
            let mut dequeued = 0u64;
            while q.dequeue().is_some() {
                dequeued += 1;
            }
            prop_assert_eq!(accepted, dequeued);
            prop_assert_eq!(accepted + q.drops, sizes.len() as u64);
            prop_assert_eq!(q.bytes(), 0);
        }
    }
}
