//! Simulated time: nanosecond ticks behind newtypes.
//!
//! `SimTime` is an instant, `Duration` a difference. Keeping them distinct
//! types (instead of bare `u64`s) has caught every "added two timestamps"
//! bug at compile time. Nanosecond resolution covers ~584 years of simulated
//! time in a `u64` — plenty.

use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Raw nanoseconds since start.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since start as f64 (for metrics/rates).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration since an earlier instant (saturating — never underflows).
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// From nanoseconds.
    pub const fn from_nanos(ns: u64) -> Duration {
        Duration(ns)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> Duration {
        Duration(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Duration {
        Duration(ms * 1_000_000)
    }

    /// From (non-negative, finite) seconds; fractional values are truncated
    /// to whole nanoseconds.
    pub fn from_secs_f64(s: f64) -> Duration {
        debug_assert!(s.is_finite() && s >= 0.0, "durations are non-negative");
        Duration((s.max(0.0) * 1e9) as u64)
    }

    /// Nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as f64.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds as f64.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Scale by a non-negative factor (used for RTO backoff and RTT math).
    pub fn mul_f64(self, factor: f64) -> Duration {
        debug_assert!(factor.is_finite() && factor >= 0.0);
        Duration((self.0 as f64 * factor.max(0.0)) as u64)
    }

    /// Component-wise max.
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }

    /// Component-wise min.
    pub fn min(self, other: Duration) -> Duration {
        Duration(self.0.min(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, d: Duration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.0;
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, other: Duration) -> Duration {
        Duration(self.0 + other.0)
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, other: Duration) -> Duration {
        debug_assert!(self.0 >= other.0, "duration subtraction underflow");
        Duration(self.0.saturating_sub(other.0))
    }
}

/// Time to serialize `bytes` onto a link of `rate_bps` bits per second.
pub fn serialization_time(bytes: u32, rate_bps: f64) -> Duration {
    debug_assert!(rate_bps > 0.0, "link rate must be positive");
    Duration::from_secs_f64(bytes as f64 * 8.0 / rate_bps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trip() {
        let t = SimTime::ZERO + Duration::from_millis(5);
        assert_eq!(t.as_nanos(), 5_000_000);
        assert_eq!(t.since(SimTime::ZERO), Duration::from_millis(5));
        assert_eq!(t.as_secs_f64(), 0.005);
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::ZERO + Duration::from_millis(1);
        let late = SimTime::ZERO + Duration::from_millis(9);
        assert_eq!(early.since(late), Duration::ZERO);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(Duration::from_millis(1), Duration::from_micros(1000));
        assert_eq!(Duration::from_micros(1), Duration::from_nanos(1000));
        assert_eq!(Duration::from_secs_f64(0.001), Duration::from_millis(1));
    }

    #[test]
    fn mul_and_minmax() {
        let d = Duration::from_millis(10);
        assert_eq!(d.mul_f64(2.5), Duration::from_millis(25));
        assert_eq!(d.max(Duration::from_millis(3)), d);
        assert_eq!(d.min(Duration::from_millis(3)), Duration::from_millis(3));
        assert_eq!(Duration::from_millis(3).saturating_sub(d), Duration::ZERO);
    }

    #[test]
    fn serialization_time_examples() {
        // 1500 bytes at 12 Mbps = 1 ms.
        assert_eq!(serialization_time(1500, 12e6), Duration::from_millis(1));
        // 1500 bytes at 120 Mbps = 100 µs.
        assert_eq!(serialization_time(1500, 120e6), Duration::from_micros(100));
    }

    #[test]
    fn ordering_is_sane() {
        let a = SimTime::ZERO + Duration::from_nanos(1);
        let b = SimTime::ZERO + Duration::from_nanos(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }
}
