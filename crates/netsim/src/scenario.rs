//! Network conditions and their sampling domain — the feature space of the
//! "Scream vs rest" learning problem.
//!
//! The four features match the paper's running example: "the developer
//! provides AutoML with training data that identifies when Scream
//! outperforms other congestion control protocols based on the network
//! properties (bottleneck bandwidth, latency, loss rate, and number of
//! concurrent flows)". Feature names follow Figure 1's `config.*` style.

use crate::{Result, SimError};
use aml_dataset::{Dataset, FeatureMeta};
use aml_rng::rngs::StdRng;
use aml_rng::Rng;

/// One point of the feature space: a concrete emulated network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkCondition {
    /// Bottleneck link rate in Mbit/s (`config.link_rate`).
    pub link_rate_mbps: f64,
    /// Base round-trip propagation delay in milliseconds (`config.rtt_ms`).
    pub rtt_ms: f64,
    /// Random (non-congestive) packet loss probability (`config.loss_rate`).
    pub loss_rate: f64,
    /// Number of concurrent flows sharing the bottleneck
    /// (`config.n_flows`).
    pub n_flows: usize,
}

impl NetworkCondition {
    /// Validate physical plausibility.
    pub fn validate(&self) -> Result<()> {
        if !(self.link_rate_mbps > 0.0 && self.link_rate_mbps.is_finite()) {
            return Err(SimError::InvalidCondition(format!(
                "link_rate_mbps {} must be positive",
                self.link_rate_mbps
            )));
        }
        if !(self.rtt_ms > 0.0 && self.rtt_ms.is_finite()) {
            return Err(SimError::InvalidCondition(format!(
                "rtt_ms {} must be positive",
                self.rtt_ms
            )));
        }
        if !(0.0..=0.5).contains(&self.loss_rate) {
            return Err(SimError::InvalidCondition(format!(
                "loss_rate {} outside [0, 0.5]",
                self.loss_rate
            )));
        }
        if self.n_flows == 0 || self.n_flows > 64 {
            return Err(SimError::InvalidCondition(format!(
                "n_flows {} outside 1..=64",
                self.n_flows
            )));
        }
        Ok(())
    }

    /// Bandwidth-delay product in bytes.
    pub fn bdp_bytes(&self) -> u64 {
        (self.link_rate_mbps * 1e6 / 8.0 * self.rtt_ms / 1e3) as u64
    }

    /// Feature row in the canonical order
    /// `[link_rate, rtt_ms, loss_rate, n_flows]`.
    pub fn to_row(&self) -> Vec<f64> {
        vec![
            self.link_rate_mbps,
            self.rtt_ms,
            self.loss_rate,
            self.n_flows as f64,
        ]
    }

    /// Parse a feature row in the canonical order (values clamped into
    /// validity: the feedback loop may propose slightly out-of-domain
    /// points after uniform sampling at region edges).
    pub fn from_row(row: &[f64]) -> Result<Self> {
        if row.len() != 4 {
            return Err(SimError::InvalidCondition(format!(
                "expected 4 features, got {}",
                row.len()
            )));
        }
        let cond = NetworkCondition {
            link_rate_mbps: row[0].max(0.5),
            rtt_ms: row[1].max(1.0),
            loss_rate: row[2].clamp(0.0, 0.5),
            n_flows: (row[3].round() as i64).clamp(1, 64) as usize,
        };
        cond.validate()?;
        Ok(cond)
    }
}

/// The sampling domain `R(X_s)` of each feature — exactly the input the
/// paper's algorithm requires ("the domain of each feature in that set").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConditionDomain {
    /// Link-rate range in Mbps.
    pub link_rate: (f64, f64),
    /// RTT range in ms.
    pub rtt: (f64, f64),
    /// Loss-rate range.
    pub loss: (f64, f64),
    /// Flow-count range (inclusive).
    pub flows: (usize, usize),
}

impl Default for ConditionDomain {
    fn default() -> Self {
        ConditionDomain {
            link_rate: (1.0, 120.0),
            rtt: (10.0, 200.0),
            loss: (0.0, 0.05),
            flows: (1, 6),
        }
    }
}

impl ConditionDomain {
    /// Feature metadata for datasets over this domain.
    pub fn feature_metas(&self) -> Vec<FeatureMeta> {
        vec![
            FeatureMeta::continuous("config.link_rate", self.link_rate.0, self.link_rate.1),
            FeatureMeta::continuous("config.rtt_ms", self.rtt.0, self.rtt.1),
            FeatureMeta::continuous("config.loss_rate", self.loss.0, self.loss.1),
            FeatureMeta::integer("config.n_flows", self.flows.0 as i64, self.flows.1 as i64),
        ]
    }

    /// Class names: class 0 = "rest", class 1 = "scream" (Scream wins).
    pub fn class_names(&self) -> Vec<String> {
        vec!["rest".into(), "scream".into()]
    }

    /// An empty dataset with this domain's schema.
    pub fn empty_dataset(&self) -> Result<Dataset> {
        Ok(Dataset::new(self.feature_metas(), self.class_names())?)
    }

    /// Uniformly sample one condition.
    pub fn sample(&self, rng: &mut StdRng) -> NetworkCondition {
        NetworkCondition {
            link_rate_mbps: rng.gen_range(self.link_rate.0..=self.link_rate.1),
            rtt_ms: rng.gen_range(self.rtt.0..=self.rtt.1),
            loss_rate: rng.gen_range(self.loss.0..=self.loss.1),
            n_flows: rng.gen_range(self.flows.0..=self.flows.1),
        }
    }

    /// Sample one condition from a **production-like** distribution: 75% of
    /// traffic comes from "typical" operating points (mid link rates,
    /// moderate RTTs, near-zero loss, few flows — squared-uniform draws
    /// biased toward the low end), 25% from the broad uniform background.
    ///
    /// This models how operators actually collect training data — from
    /// production traces that "miss observing unique cases that only occur
    /// when the loss rate of the network is higher due to failures or
    /// congestion" (paper §2.2). Training/test/pool data generated this way
    /// under-covers the extremes, which is exactly the gap the ALE feedback
    /// is designed to expose.
    pub fn sample_production(&self, rng: &mut StdRng) -> NetworkCondition {
        if rng.gen::<f64>() < 0.25 {
            return self.sample(rng);
        }
        // Squared uniforms concentrate mass toward the range's low end.
        let sq = |rng: &mut StdRng| -> f64 {
            let u: f64 = rng.gen();
            u * u
        };
        NetworkCondition {
            link_rate_mbps: self.link_rate.0
                + (self.link_rate.1 - self.link_rate.0) * (0.1 + 0.5 * sq(rng)),
            rtt_ms: self.rtt.0 + (self.rtt.1 - self.rtt.0) * (0.05 + 0.5 * sq(rng)),
            loss_rate: self.loss.0 + (self.loss.1 - self.loss.0) * 0.2 * sq(rng),
            n_flows: (self.flows.0 + ((self.flows.1 - self.flows.0) as f64 * sq(rng)) as usize)
                .clamp(self.flows.0, self.flows.1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aml_rng::SeedableRng;

    #[test]
    fn row_round_trip() {
        let c = NetworkCondition {
            link_rate_mbps: 42.5,
            rtt_ms: 80.0,
            loss_rate: 0.01,
            n_flows: 3,
        };
        let back = NetworkCondition::from_row(&c.to_row()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn from_row_clamps_into_validity() {
        let c = NetworkCondition::from_row(&[-5.0, 0.0, 0.9, 100.0]).unwrap();
        assert!(c.link_rate_mbps > 0.0);
        assert!(c.rtt_ms > 0.0);
        assert!(c.loss_rate <= 0.5);
        assert!(c.n_flows <= 64);
    }

    #[test]
    fn validate_rejects_nonsense() {
        let bad = NetworkCondition {
            link_rate_mbps: -1.0,
            rtt_ms: 10.0,
            loss_rate: 0.0,
            n_flows: 1,
        };
        assert!(bad.validate().is_err());
        let bad2 = NetworkCondition {
            link_rate_mbps: 10.0,
            rtt_ms: 10.0,
            loss_rate: 0.9,
            n_flows: 1,
        };
        assert!(bad2.validate().is_err());
    }

    #[test]
    fn bdp_example() {
        // 12 Mbps × 100 ms = 150 KB.
        let c = NetworkCondition {
            link_rate_mbps: 12.0,
            rtt_ms: 100.0,
            loss_rate: 0.0,
            n_flows: 1,
        };
        assert_eq!(c.bdp_bytes(), 150_000);
    }

    #[test]
    fn sampling_stays_in_domain() {
        let d = ConditionDomain::default();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let c = d.sample(&mut rng);
            c.validate().unwrap();
            assert!(c.link_rate_mbps >= d.link_rate.0 && c.link_rate_mbps <= d.link_rate.1);
            assert!(c.n_flows >= d.flows.0 && c.n_flows <= d.flows.1);
        }
    }

    #[test]
    fn production_sampling_stays_in_domain_and_biases_low() {
        let d = ConditionDomain::default();
        let mut rng = StdRng::seed_from_u64(3);
        let mut mean_loss_prod = 0.0;
        let mut mean_loss_unif = 0.0;
        let n = 500;
        for _ in 0..n {
            let c = d.sample_production(&mut rng);
            c.validate().unwrap();
            assert!(c.link_rate_mbps >= d.link_rate.0 && c.link_rate_mbps <= d.link_rate.1);
            assert!(c.loss_rate >= d.loss.0 && c.loss_rate <= d.loss.1);
            mean_loss_prod += c.loss_rate / n as f64;
            mean_loss_unif += d.sample(&mut rng).loss_rate / n as f64;
        }
        assert!(
            mean_loss_prod < 0.6 * mean_loss_unif,
            "production traffic sees much less loss: {mean_loss_prod} vs {mean_loss_unif}"
        );
    }

    #[test]
    fn schema_matches_figure_one_names() {
        let d = ConditionDomain::default();
        let metas = d.feature_metas();
        assert_eq!(metas[0].name, "config.link_rate");
        let ds = d.empty_dataset().unwrap();
        assert_eq!(ds.n_features(), 4);
        assert_eq!(
            ds.class_names(),
            &["rest".to_string(), "scream".to_string()]
        );
    }
}
