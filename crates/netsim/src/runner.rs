//! Protocol comparison and labeling — the simulator-side replacement for
//! "use the Pantheon emulator to get the target performance (label) for a
//! given network condition".
//!
//! ## The label rule
//!
//! The running example asks: *"identify whether the application should use
//! Scream to achieve the lowest end-to-end latency given the current
//! network conditions."* Latency alone would make Scream trivially optimal
//! (a protocol targeting a 50 ms queue delay almost always has the lowest
//! delay), so — like any sane operator — we require a **minimum useful
//! throughput** first: a protocol qualifies only if it achieves at least
//! [`MIN_USEFUL_FRACTION`] of the bottleneck capacity. Among qualifying
//! protocols the one with the lowest mean packet delay wins; if none
//! qualifies (pathological conditions) the highest-throughput protocol
//! wins. The label is `1` ("scream") iff Scream wins.
//!
//! This produces the non-trivial decision surface of Figure 1: Scream wins
//! in deep-buffer/low-loss regimes and loses where random loss or extreme
//! BDPs collapse its throughput.

use crate::cc::CcKind;
use crate::scenario::NetworkCondition;
use crate::sim::{SimConfig, SimOutcome, Simulation};
use crate::Result;

/// Fraction of the link a protocol must utilize to qualify.
pub const MIN_USEFUL_FRACTION: f64 = 0.4;

/// Range of the **latent** bottleneck buffer depth, in BDP multiples.
///
/// The paper's toy problem notes the right protocol "depends on the
/// properties of the network (e.g., queue sizes, bottleneck bandwidths,
/// ...)" — yet queue size is *not* one of the four features the operator
/// measures. Each measurement campaign therefore runs against a buffer
/// depth drawn from this range (deterministically from the measurement
/// seed): where the winner is buffer-sensitive, repeated measurements of
/// the same observable condition genuinely disagree. That structured,
/// irreducible ambiguity is what gives the learning problem its headroom —
/// and gives the ALE committee something real to disagree about.
pub const LATENT_QUEUE_BDP: (f64, f64) = (0.5, 3.0);

/// SplitMix64 → unit interval (the latent-buffer draw).
fn unit_hash(seed: u64) -> f64 {
    let mut z = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// The latent buffer depth (BDP multiples) of measurement campaign `seed`.
pub fn latent_queue_mult(seed: u64) -> f64 {
    LATENT_QUEUE_BDP.0 + (LATENT_QUEUE_BDP.1 - LATENT_QUEUE_BDP.0) * unit_hash(seed)
}

/// Outcome of one protocol on one condition.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolResult {
    /// The protocol.
    pub protocol: CcKind,
    /// Total goodput (Mbit/s).
    pub throughput_mbps: f64,
    /// Mean one-way delay (ms).
    pub mean_delay_ms: f64,
    /// 95th-percentile one-way delay (ms).
    pub p95_delay_ms: f64,
    /// Whether the protocol reached the minimum useful throughput.
    pub qualifies: bool,
}

/// Run one protocol on one condition with an explicit buffer depth.
pub fn run_protocol_with_queue(
    protocol: CcKind,
    condition: NetworkCondition,
    queue_bdp_mult: f64,
    seed: u64,
) -> Result<ProtocolResult> {
    let mut cfg = SimConfig::for_condition(condition, protocol, seed);
    cfg.queue_bdp_mult = queue_bdp_mult;
    let outcome: SimOutcome = Simulation::new(cfg)?.run()?;
    let qualifies = outcome.total_throughput_mbps >= MIN_USEFUL_FRACTION * condition.link_rate_mbps;
    Ok(ProtocolResult {
        protocol,
        throughput_mbps: outcome.total_throughput_mbps,
        mean_delay_ms: outcome.mean_delay_ms,
        p95_delay_ms: outcome.p95_delay_ms,
        qualifies,
    })
}

/// Run one protocol on one condition (latent buffer drawn from `seed`).
pub fn run_protocol(
    protocol: CcKind,
    condition: NetworkCondition,
    seed: u64,
) -> Result<ProtocolResult> {
    run_protocol_with_queue(protocol, condition, latent_queue_mult(seed), seed)
}

/// Run all six protocols on a condition. The latent buffer depth is drawn
/// once per campaign (same path for every protocol — they race on the same
/// network); loss patterns are protocol-independent via derived seeds.
pub fn run_all(condition: NetworkCondition, seed: u64) -> Result<Vec<ProtocolResult>> {
    let _span = aml_telemetry::span!("netsim.runner.run_all");
    let queue_mult = latent_queue_mult(seed);
    CcKind::ALL
        .iter()
        .enumerate()
        .map(|(i, &kind)| {
            run_protocol_with_queue(
                kind,
                condition,
                queue_mult,
                seed ^ ((i as u64 + 1) * 0x9E37),
            )
        })
        .collect()
}

/// Which protocol wins on a set of results (see the module docs for the
/// rule). Returns the winner's index into `results`.
pub fn winner_index(results: &[ProtocolResult]) -> usize {
    let qualified: Vec<usize> = results
        .iter()
        .enumerate()
        .filter(|(_, r)| r.qualifies && r.mean_delay_ms.is_finite())
        .map(|(i, _)| i)
        .collect();
    if qualified.is_empty() {
        // Nobody useful: highest throughput wins.
        return (0..results.len())
            .max_by(|&a, &b| {
                results[a]
                    .throughput_mbps
                    .partial_cmp(&results[b].throughput_mbps)
                    .expect("throughputs are finite")
            })
            .expect("results non-empty");
    }
    *qualified
        .iter()
        .min_by(|&&a, &&b| {
            results[a]
                .mean_delay_ms
                .partial_cmp(&results[b].mean_delay_ms)
                .expect("qualified delays are finite")
        })
        .expect("qualified non-empty")
}

/// Label a condition: `true` iff Scream wins.
pub fn label_condition(condition: NetworkCondition, seed: u64) -> Result<bool> {
    let results = run_all(condition, seed)?;
    Ok(results[winner_index(&results)].protocol == CcKind::Scream)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake(protocol: CcKind, tp: f64, delay: f64, qualifies: bool) -> ProtocolResult {
        ProtocolResult {
            protocol,
            throughput_mbps: tp,
            mean_delay_ms: delay,
            p95_delay_ms: delay * 1.5,
            qualifies,
        }
    }

    #[test]
    fn lowest_delay_among_qualified_wins() {
        let results = vec![
            fake(CcKind::Scream, 5.0, 30.0, true),
            fake(CcKind::Cubic, 9.0, 80.0, true),
            fake(CcKind::Vegas, 2.0, 20.0, false), // lowest delay but disqualified
        ];
        assert_eq!(winner_index(&results), 0);
    }

    #[test]
    fn no_qualifier_falls_back_to_throughput() {
        let results = vec![
            fake(CcKind::Scream, 1.0, 30.0, false),
            fake(CcKind::Bbr, 3.0, 90.0, false),
        ];
        assert_eq!(winner_index(&results), 1);
    }

    #[test]
    fn infinite_delay_never_wins_when_alternatives_exist() {
        let results = vec![
            fake(CcKind::Scream, 5.0, f64::INFINITY, true),
            fake(CcKind::Reno, 5.0, 70.0, true),
        ];
        assert_eq!(winner_index(&results), 1);
    }

    #[test]
    fn run_all_covers_every_protocol() {
        let c = NetworkCondition {
            link_rate_mbps: 10.0,
            rtt_ms: 40.0,
            loss_rate: 0.0,
            n_flows: 1,
        };
        let results = run_all(c, 42).unwrap();
        assert_eq!(results.len(), 6);
        let names: Vec<&str> = results.iter().map(|r| r.protocol.name()).collect();
        assert!(names.contains(&"scream") && names.contains(&"cubic"));
    }

    #[test]
    fn scream_wins_clean_high_bdp_regime() {
        // Clean path, large BDP: loss-based protocols bloat the (1-BDP)
        // queue, Copa underutilizes below the qualification bar, and the
        // latency-targeting protocol wins.
        let c = NetworkCondition {
            link_rate_mbps: 50.0,
            rtt_ms: 100.0,
            loss_rate: 0.0,
            n_flows: 1,
        };
        assert!(
            label_condition(c, 1).unwrap(),
            "Scream should win clean high-BDP links"
        );
    }

    #[test]
    fn scream_loses_heavy_loss_regime() {
        // 5% random loss: Scream's loss-halving collapses its throughput
        // below the qualification bar while BBR sails through.
        let c = NetworkCondition {
            link_rate_mbps: 20.0,
            rtt_ms: 40.0,
            loss_rate: 0.05,
            n_flows: 1,
        };
        assert!(
            !label_condition(c, 2).unwrap(),
            "Scream should lose at 5% loss"
        );
    }

    #[test]
    fn latent_queue_mult_spans_its_range_deterministically() {
        let a = latent_queue_mult(1);
        assert_eq!(a, latent_queue_mult(1));
        let vals: Vec<f64> = (0..200).map(latent_queue_mult).collect();
        assert!(vals.iter().all(|&v| (0.5..=3.0).contains(&v)));
        let min = vals.iter().cloned().fold(f64::MAX, f64::min);
        let max = vals.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            min < 0.8 && max > 2.7,
            "draws span the range: [{min}, {max}]"
        );
    }

    #[test]
    fn same_campaign_same_buffer_for_all_protocols() {
        // run_all races all protocols on ONE network: re-running any single
        // protocol with the campaign's latent multiplier reproduces its
        // row exactly.
        let c = NetworkCondition {
            link_rate_mbps: 10.0,
            rtt_ms: 40.0,
            loss_rate: 0.0,
            n_flows: 1,
        };
        let seed = 77;
        let all = run_all(c, seed).unwrap();
        let mult = latent_queue_mult(seed);
        let solo = run_protocol_with_queue(CcKind::Cubic, c, mult, seed ^ (3 * 0x9E37)).unwrap();
        let cubic_row = all.iter().find(|r| r.protocol == CcKind::Cubic).unwrap();
        assert_eq!(&solo, cubic_row);
    }

    #[test]
    fn labeling_is_deterministic() {
        let c = NetworkCondition {
            link_rate_mbps: 33.0,
            rtt_ms: 77.0,
            loss_rate: 0.012,
            n_flows: 2,
        };
        assert_eq!(
            label_condition(c, 9).unwrap(),
            label_condition(c, 9).unwrap()
        );
    }
}
