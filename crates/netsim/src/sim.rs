//! The simulation core: one bottleneck, `n_flows` senders of one protocol,
//! an event loop, and statistics.
//!
//! See the crate docs for the topology. Invariants the tests pin down:
//!
//! * conservation — every sent packet is delivered, dropped at the queue,
//!   lost on the link, or still in flight at the end;
//! * determinism — identical `(config, seed)` ⇒ identical statistics;
//! * liveness — a per-flow RTO timer (generation-guarded) guarantees the
//!   event loop never stalls while a flow has outstanding data.

use crate::cc::CcKind;
use crate::event::{Event, EventQueue};
use crate::flow::Flow;
use crate::packet::Packet;
use crate::queue::DropTailQueue;
use crate::red::RedQueue;
use crate::scenario::NetworkCondition;
use crate::time::{serialization_time, Duration, SimTime};
use crate::{Result, SimError};
use aml_rng::rngs::StdRng;
use aml_rng::{Rng, SeedableRng};

/// Bottleneck queue discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// Plain drop-tail FIFO (the Pantheon-style default).
    DropTail,
    /// RED active queue management ([`crate::red`]).
    Red,
}

/// The configured bottleneck queue (internal dispatch).
enum Queue {
    DropTail(DropTailQueue),
    Red(RedQueue),
}

impl Queue {
    fn enqueue(&mut self, packet: Packet, now: SimTime) -> bool {
        match self {
            Queue::DropTail(q) => q.enqueue(packet),
            Queue::Red(q) => q.enqueue(packet, now),
        }
    }

    fn dequeue(&mut self) -> Option<Packet> {
        match self {
            Queue::DropTail(q) => q.dequeue(),
            Queue::Red(q) => q.dequeue(),
        }
    }

    fn drops(&self) -> u64 {
        match self {
            Queue::DropTail(q) => q.drops,
            Queue::Red(q) => q.drops,
        }
    }
}

/// Simulator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// The emulated network.
    pub condition: NetworkCondition,
    /// Protocol all flows run.
    pub protocol: CcKind,
    /// Total simulated duration (stats cover `warmup..duration`).
    pub duration: Duration,
    /// Warm-up period excluded from statistics.
    pub warmup: Duration,
    /// Packet size in bytes.
    pub mss: u32,
    /// Bottleneck queue capacity as a multiple of the BDP (Pantheon-style
    /// drop-tail buffering; 1.0 = one BDP).
    pub queue_bdp_mult: f64,
    /// Queue discipline at the bottleneck.
    pub queue_kind: QueueKind,
    /// RNG seed (random loss and RED early drops; nothing else is
    /// stochastic).
    pub seed: u64,
}

impl SimConfig {
    /// Sensible defaults for a condition: duration adapts to the RTT so slow
    /// paths still see enough round trips (≥ 15 RTTs measured).
    pub fn for_condition(condition: NetworkCondition, protocol: CcKind, seed: u64) -> Self {
        let rtt = Duration::from_secs_f64(condition.rtt_ms / 1e3);
        SimConfig {
            condition,
            protocol,
            duration: Duration::from_millis(1500).max(rtt.mul_f64(20.0)),
            warmup: Duration::from_millis(300).max(rtt.mul_f64(5.0)),
            mss: 1500,
            queue_bdp_mult: 1.0,
            queue_kind: QueueKind::DropTail,
            seed,
        }
    }

    fn validate(&self) -> Result<()> {
        self.condition.validate()?;
        if self.warmup >= self.duration {
            return Err(SimError::InvalidConfig(
                "warmup must be shorter than duration".into(),
            ));
        }
        if self.mss < 64 || self.mss > 9000 {
            return Err(SimError::InvalidConfig(format!(
                "mss {} outside 64..=9000",
                self.mss
            )));
        }
        if !(self.queue_bdp_mult > 0.0 && self.queue_bdp_mult.is_finite()) {
            return Err(SimError::InvalidConfig(
                "queue_bdp_mult must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Per-flow statistics over the measurement window.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowStats {
    /// Goodput in Mbit/s.
    pub throughput_mbps: f64,
    /// Mean one-way packet delay in ms (`INFINITY` if nothing delivered).
    pub mean_delay_ms: f64,
    /// 95th-percentile one-way delay in ms.
    pub p95_delay_ms: f64,
    /// Mean RTT in ms.
    pub mean_rtt_ms: f64,
    /// Packets the sender declared lost.
    pub lost_packets: u64,
    /// Packets delivered within the measurement window.
    pub delivered_packets: usize,
}

/// Aggregate outcome of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// Per-flow stats.
    pub flows: Vec<FlowStats>,
    /// Total goodput across flows (Mbit/s).
    pub total_throughput_mbps: f64,
    /// Delay-sample-weighted mean one-way delay (ms).
    pub mean_delay_ms: f64,
    /// Pooled 95th-percentile one-way delay (ms).
    pub p95_delay_ms: f64,
    /// Packets dropped at the bottleneck queue.
    pub queue_drops: u64,
}

/// The simulator. Build with [`Simulation::new`], run with
/// [`Simulation::run`] (consumes the simulation).
pub struct Simulation {
    cfg: SimConfig,
    flows: Vec<Flow>,
    events: EventQueue,
    queue: Queue,
    link_busy: bool,
    rng: StdRng,
    now: SimTime,
    link_rate_bps: f64,
    prop_half: Duration,
    /// Packets killed by random loss (for conservation accounting).
    link_losses: u64,
    delivered: u64,
    sent: u64,
}

impl Simulation {
    /// Construct a simulation (validates the configuration).
    pub fn new(cfg: SimConfig) -> Result<Self> {
        cfg.validate()?;
        let cond = cfg.condition;
        let flows = (0..cond.n_flows)
            .map(|id| Flow::new(id, cfg.protocol.build()))
            .collect();
        let queue_capacity =
            ((cond.bdp_bytes() as f64 * cfg.queue_bdp_mult) as u64).max(2 * cfg.mss as u64);
        let queue = match cfg.queue_kind {
            QueueKind::DropTail => Queue::DropTail(DropTailQueue::new(queue_capacity)),
            QueueKind::Red => Queue::Red(RedQueue::new(queue_capacity, cfg.seed ^ 0xA0_11)),
        };
        Ok(Simulation {
            rng: StdRng::seed_from_u64(cfg.seed),
            flows,
            events: EventQueue::new(),
            queue,
            link_busy: false,
            now: SimTime::ZERO,
            link_rate_bps: cond.link_rate_mbps * 1e6,
            prop_half: Duration::from_secs_f64(cond.rtt_ms / 2e3),
            link_losses: 0,
            delivered: 0,
            sent: 0,
            cfg,
        })
    }

    /// Run to completion and return the statistics.
    pub fn run(mut self) -> Result<SimOutcome> {
        // Stagger flow starts by 10 ms to avoid artificial phase locking.
        for f in 0..self.flows.len() {
            self.events.schedule(
                SimTime::ZERO + Duration::from_millis(10 * f as u64),
                Event::FlowStart { flow: f },
            );
        }

        // Safety valve: the event count is physically bounded by
        // link-rate × duration × constant; 64× that means a logic bug.
        let max_events = 64
            * (self.link_rate_bps * self.cfg.duration.as_secs_f64() / (8.0 * self.cfg.mss as f64))
                as u64
            + 1_000_000;
        let mut processed = 0u64;

        while let Some((at, event)) = self.events.pop() {
            if at > SimTime::ZERO + self.cfg.duration + self.prop_half + self.prop_half {
                break;
            }
            self.now = at;
            processed += 1;
            if processed > max_events {
                return Err(SimError::InvalidConfig(format!(
                    "event budget exceeded ({max_events}); simulation is livelocked"
                )));
            }
            self.dispatch(event);
        }
        // Telemetry is flushed once per run from the loop's local tallies —
        // the event loop itself stays free of atomics.
        if aml_telemetry::enabled() {
            aml_telemetry::counter_add("netsim.sim.runs", 1);
            aml_telemetry::counter_add("netsim.sim.events", processed);
            aml_telemetry::counter_add("netsim.sim.packets_sent", self.sent);
            aml_telemetry::counter_add("netsim.sim.packets_delivered", self.delivered);
        }
        Ok(self.finish())
    }

    fn dispatch(&mut self, event: Event) {
        match event {
            Event::FlowStart { flow } => {
                self.flows[flow].started = true;
                self.flows[flow].last_ack_time = self.now;
                self.try_send(flow);
                self.arm_timeout(flow);
            }
            Event::SenderWake { flow } => {
                self.flows[flow].wake_scheduled = false;
                self.try_send(flow);
            }
            Event::LinkFree => {
                self.link_busy = false;
                self.serve_queue();
            }
            Event::Delivery { packet } => {
                self.delivered += 1;
                if self.now >= SimTime::ZERO + self.cfg.warmup
                    && self.now <= SimTime::ZERO + self.cfg.duration
                {
                    let delay = self.now.since(packet.sent_at).as_secs_f64();
                    let f = &mut self.flows[packet.flow];
                    f.delay_samples.push(delay);
                    f.measured_bytes += packet.size as u64;
                }
                // Receiver acks immediately; the ACK path is clean.
                self.events.schedule(
                    self.now + self.prop_half,
                    Event::AckArrival {
                        flow: packet.flow,
                        seq: packet.seq,
                        sent_at: packet.sent_at,
                        bytes: packet.size,
                    },
                );
            }
            Event::AckArrival {
                flow,
                seq,
                sent_at,
                bytes,
            } => {
                let in_window = self.now >= SimTime::ZERO + self.cfg.warmup
                    && self.now <= SimTime::ZERO + self.cfg.duration;
                if let Some(ev) = self.flows[flow].on_ack(seq, sent_at, bytes, self.now) {
                    if in_window {
                        self.flows[flow].rtt_samples.push(ev.rtt.as_secs_f64());
                    }
                    self.arm_timeout(flow);
                }
                self.try_send(flow);
            }
            Event::Timeout { flow, generation } => {
                if generation != self.flows[flow].timeout_generation {
                    return; // stale timer
                }
                let f = &self.flows[flow];
                let deadline = f.last_ack_time + f.rto();
                if !f.inflight.is_empty() && self.now >= deadline {
                    self.flows[flow].on_timeout(self.now);
                    // Treat the timeout as an implicit "ack activity" marker
                    // so the next RTO counts from now.
                    self.flows[flow].last_ack_time = self.now;
                }
                self.arm_timeout(flow);
                self.try_send(flow);
            }
        }
    }

    /// Send as much as window + pacing allow for `flow`.
    fn try_send(&mut self, flow: usize) {
        loop {
            let mss = self.cfg.mss;
            let f = &self.flows[flow];
            if !f.started || !f.can_send(mss) {
                return;
            }
            if f.cc.pacing_rate_bps().is_some() && f.next_send_time > self.now {
                let wake_at = f.next_send_time;
                if !f.wake_scheduled {
                    self.flows[flow].wake_scheduled = true;
                    self.events.schedule(wake_at, Event::SenderWake { flow });
                }
                return;
            }

            let f = &mut self.flows[flow];
            let seq = f.next_seq;
            f.next_seq += 1;
            f.on_send(seq, mss, self.now);
            self.sent += 1;
            if let Some(rate) = f.cc.pacing_rate_bps() {
                let gap = serialization_time(mss, rate);
                f.next_send_time = f.next_send_time.max(self.now) + gap;
            }

            let packet = Packet {
                flow,
                seq,
                size: mss,
                sent_at: self.now,
            };
            // Random (non-congestive) path loss.
            if self.rng.gen::<f64>() < self.cfg.condition.loss_rate {
                self.link_losses += 1;
                continue; // vanishes; the gap/RTO machinery will notice
            }
            if self.queue.enqueue(packet, self.now) {
                self.serve_queue();
            }
        }
    }

    /// Start transmitting the queue head if the link is idle.
    fn serve_queue(&mut self) {
        if self.link_busy {
            return;
        }
        let Some(packet) = self.queue.dequeue() else {
            return;
        };
        self.link_busy = true;
        let ser = serialization_time(packet.size, self.link_rate_bps);
        self.events.schedule(self.now + ser, Event::LinkFree);
        self.events
            .schedule(self.now + ser + self.prop_half, Event::Delivery { packet });
    }

    /// (Re)arm the flow's RTO timer with a fresh generation. The timer is
    /// always strictly in the future (≥ now + RTO/4) — scheduling at `now`
    /// would let an idle flow re-fire the same instant forever.
    fn arm_timeout(&mut self, flow: usize) {
        let f = &mut self.flows[flow];
        f.timeout_generation += 1;
        let generation = f.timeout_generation;
        let at = (f.last_ack_time + f.rto()).max(self.now + f.rto().mul_f64(0.25));
        self.events
            .schedule(at, Event::Timeout { flow, generation });
    }

    fn finish(self) -> SimOutcome {
        let measure_secs = (self.cfg.duration - self.cfg.warmup).as_secs_f64();
        let mut flows = Vec::with_capacity(self.flows.len());
        let mut all_delays: Vec<f64> = Vec::new();
        let mut total_tp = 0.0;
        for f in &self.flows {
            let tp = f.measured_bytes as f64 * 8.0 / measure_secs / 1e6;
            total_tp += tp;
            let (mean_d, p95_d) = delay_stats(&f.delay_samples);
            let mean_rtt = if f.rtt_samples.is_empty() {
                f64::INFINITY
            } else {
                f.rtt_samples.iter().sum::<f64>() / f.rtt_samples.len() as f64 * 1e3
            };
            all_delays.extend_from_slice(&f.delay_samples);
            flows.push(FlowStats {
                throughput_mbps: tp,
                mean_delay_ms: mean_d,
                p95_delay_ms: p95_d,
                mean_rtt_ms: mean_rtt,
                lost_packets: f.lost_packets,
                delivered_packets: f.delay_samples.len(),
            });
        }
        let (mean_delay_ms, p95_delay_ms) = delay_stats(&all_delays);
        SimOutcome {
            flows,
            total_throughput_mbps: total_tp,
            mean_delay_ms,
            p95_delay_ms,
            queue_drops: self.queue.drops(),
        }
    }
}

/// `(mean, p95)` of delay samples in milliseconds; infinities when empty.
fn delay_stats(samples: &[f64]) -> (f64, f64) {
    if samples.is_empty() {
        return (f64::INFINITY, f64::INFINITY);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64 * 1e3;
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("delays are finite"));
    let idx = ((sorted.len() as f64 - 1.0) * 0.95).round() as usize;
    (mean, sorted[idx] * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cond(mbps: f64, rtt_ms: f64, loss: f64, flows: usize) -> NetworkCondition {
        NetworkCondition {
            link_rate_mbps: mbps,
            rtt_ms,
            loss_rate: loss,
            n_flows: flows,
        }
    }

    fn run(kind: CcKind, c: NetworkCondition, seed: u64) -> SimOutcome {
        Simulation::new(SimConfig::for_condition(c, kind, seed))
            .unwrap()
            .run()
            .unwrap()
    }

    #[test]
    fn cubic_saturates_a_clean_link() {
        let out = run(CcKind::Cubic, cond(10.0, 40.0, 0.0, 1), 1);
        assert!(
            out.total_throughput_mbps > 8.0,
            "cubic on clean 10 Mbps reached only {} Mbps",
            out.total_throughput_mbps
        );
        assert!(out.mean_delay_ms.is_finite());
    }

    #[test]
    fn throughput_cannot_exceed_link_rate() {
        for kind in CcKind::ALL {
            let out = run(kind, cond(8.0, 30.0, 0.0, 2), 2);
            assert!(
                out.total_throughput_mbps <= 8.5,
                "{} exceeded link rate: {}",
                kind.name(),
                out.total_throughput_mbps
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(CcKind::Reno, cond(12.0, 50.0, 0.01, 2), 7);
        let b = run(CcKind::Reno, cond(12.0, 50.0, 0.01, 2), 7);
        assert_eq!(a, b);
    }

    #[test]
    fn seed_matters_with_random_loss() {
        let a = run(CcKind::Reno, cond(12.0, 50.0, 0.02, 1), 7);
        let b = run(CcKind::Reno, cond(12.0, 50.0, 0.02, 1), 8);
        assert_ne!(a, b);
    }

    #[test]
    fn delay_includes_propagation_floor() {
        // One-way delay ≥ propagation half-RTT.
        let out = run(CcKind::Vegas, cond(10.0, 80.0, 0.0, 1), 3);
        assert!(
            out.mean_delay_ms >= 40.0,
            "mean delay {}",
            out.mean_delay_ms
        );
    }

    #[test]
    fn cubic_builds_more_queue_than_scream() {
        // Deep buffer (2 BDP): the loss-based protocol fills it, the
        // delay-targeting one does not — the core "Scream wins on latency"
        // mechanism of the running example.
        let c = cond(20.0, 60.0, 0.0, 1);
        let mut cfg_cubic = SimConfig::for_condition(c, CcKind::Cubic, 4);
        cfg_cubic.queue_bdp_mult = 2.0;
        let cubic = Simulation::new(cfg_cubic).unwrap().run().unwrap();
        let mut cfg_scream = SimConfig::for_condition(c, CcKind::Scream, 4);
        cfg_scream.queue_bdp_mult = 2.0;
        let scream = Simulation::new(cfg_scream).unwrap().run().unwrap();
        assert!(
            scream.mean_delay_ms < cubic.mean_delay_ms,
            "scream {} ms should beat cubic {} ms in deep buffers",
            scream.mean_delay_ms,
            cubic.mean_delay_ms
        );
    }

    #[test]
    fn scream_collapses_under_heavy_random_loss() {
        // At 5% random loss, loss-halving Scream should get much less
        // throughput than loss-blind BBR.
        let c = cond(20.0, 40.0, 0.05, 1);
        let scream = run(CcKind::Scream, c, 5);
        let bbr = run(CcKind::Bbr, c, 5);
        assert!(
            bbr.total_throughput_mbps > 1.5 * scream.total_throughput_mbps,
            "bbr {} vs scream {}",
            bbr.total_throughput_mbps,
            scream.total_throughput_mbps
        );
    }

    #[test]
    fn multiple_flows_share_the_link() {
        let out = run(CcKind::Cubic, cond(12.0, 40.0, 0.0, 3), 6);
        assert_eq!(out.flows.len(), 3);
        // All flows make progress.
        for (i, f) in out.flows.iter().enumerate() {
            assert!(
                f.throughput_mbps > 0.5,
                "flow {i} starved: {} Mbps",
                f.throughput_mbps
            );
        }
        assert!(out.total_throughput_mbps <= 12.5);
    }

    #[test]
    fn random_loss_is_detected_and_counted() {
        let out = run(CcKind::Reno, cond(10.0, 40.0, 0.03, 1), 9);
        let lost: u64 = out.flows.iter().map(|f| f.lost_packets).sum();
        assert!(lost > 0, "3% loss must be observed");
    }

    #[test]
    fn invalid_config_rejected() {
        let c = cond(10.0, 40.0, 0.0, 1);
        let mut cfg = SimConfig::for_condition(c, CcKind::Reno, 0);
        cfg.warmup = cfg.duration;
        assert!(Simulation::new(cfg).is_err());
        let mut cfg2 = SimConfig::for_condition(c, CcKind::Reno, 0);
        cfg2.mss = 10;
        assert!(Simulation::new(cfg2).is_err());
    }

    #[test]
    fn red_queue_runs_and_tames_cubic_delay() {
        // AQM sheds load early, so the loss-based protocol sees shorter
        // standing queues than under drop-tail.
        let c = cond(10.0, 60.0, 0.0, 1);
        let mut droptail = SimConfig::for_condition(c, CcKind::Cubic, 3);
        droptail.queue_bdp_mult = 2.0;
        let dt = Simulation::new(droptail).unwrap().run().unwrap();
        let mut red = SimConfig::for_condition(c, CcKind::Cubic, 3);
        red.queue_bdp_mult = 2.0;
        red.queue_kind = QueueKind::Red;
        let rd = Simulation::new(red).unwrap().run().unwrap();
        assert!(
            rd.mean_delay_ms < dt.mean_delay_ms,
            "RED {} ms should beat drop-tail {} ms for cubic",
            rd.mean_delay_ms,
            dt.mean_delay_ms
        );
        // And it still moves useful traffic.
        assert!(
            rd.total_throughput_mbps > 4.0,
            "{}",
            rd.total_throughput_mbps
        );
    }

    #[test]
    fn tiny_link_still_terminates() {
        // 1 Mbps, 200 ms RTT, lossy: worst-case slow path must not hang.
        let out = run(CcKind::Vegas, cond(1.0, 200.0, 0.05, 2), 11);
        assert!(out.total_throughput_mbps >= 0.0);
    }
}
