//! Run manifests: a machine-readable record of one benchmark run.
//!
//! A [`Manifest`] captures the run's identity (binary, seed, scale,
//! threads, git revision), its wall time, and a full snapshot of the
//! telemetry registry. [`Manifest::write_json`] serializes it by hand —
//! this crate stays dependency-free, and the schema is flat enough that
//! a small escaping writer is simpler than pulling in serde.
//!
//! Schema (`schema_version` 1):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "binary": "table1_scream",
//!   "seed": 42, "scale": 0.05, "threads": 4,
//!   "git": "a6694e5", "telemetry": "summary",
//!   "wall_time_s": 12.345,
//!   "spans":      { "<name>": {"calls":N,"total_s":F,"mean_ms":F,"max_ms":F}, … },
//!   "counters":   { "<name>": N, … },
//!   "gauges":     { "<name>": N, … },
//!   "histograms": { "<name>": {"count":N,"sum":N,"min":N,"max":N,"p50":N,"p95":N}, … }
//! }
//! ```

use crate::registry::Snapshot;
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

/// Everything needed to reconstruct what one run did and how long each
/// part took.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Benchmark binary name (e.g. `table1_scream`).
    pub binary: String,
    /// Master RNG seed of the run.
    pub seed: u64,
    /// Problem-size multiplier (`--scale`).
    pub scale: f64,
    /// Worker thread count.
    pub threads: usize,
    /// `git describe --always --dirty` output, or `"unknown"`.
    pub git: String,
    /// Telemetry level the run was collected at.
    pub telemetry: String,
    /// Total wall time of the run in seconds.
    pub wall_time_s: f64,
    /// Snapshot of every span/counter/histogram at the end of the run.
    pub snapshot: Snapshot,
}

impl Manifest {
    /// Assemble a manifest from run parameters and a registry snapshot.
    ///
    /// `started` is the instant the binary began (wall time is measured
    /// from it); the git revision is resolved here, tolerantly — a missing
    /// `git` binary or non-repo directory yields `"unknown"`.
    pub fn new(
        binary: &str,
        seed: u64,
        scale: f64,
        threads: usize,
        started: Instant,
        snapshot: Snapshot,
    ) -> Self {
        Manifest {
            binary: binary.to_string(),
            seed,
            scale,
            threads,
            git: git_describe(),
            telemetry: crate::level().name().to_string(),
            wall_time_s: started.elapsed().as_secs_f64(),
            snapshot,
        }
    }

    /// Serialize to pretty-printed JSON (see the module docs for the
    /// schema). Deterministic: snapshot entries are pre-sorted by name.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": 1,");
        let _ = writeln!(out, "  \"binary\": {},", json_str(&self.binary));
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"scale\": {},", json_f64(self.scale));
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let _ = writeln!(out, "  \"git\": {},", json_str(&self.git));
        let _ = writeln!(out, "  \"telemetry\": {},", json_str(&self.telemetry));
        let _ = writeln!(out, "  \"wall_time_s\": {},", json_f64(self.wall_time_s));

        out.push_str("  \"spans\": {");
        for (i, s) in self.snapshot.spans.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {}: {{\"calls\": {}, \"total_s\": {}, \"mean_ms\": {}, \"max_ms\": {}}}",
                if i == 0 { "" } else { "," },
                json_str(&s.name),
                s.calls,
                json_f64(s.total_secs()),
                json_f64(s.mean_ns() as f64 / 1e6),
                json_f64(s.max_ns as f64 / 1e6),
            );
        }
        out.push_str(if self.snapshot.spans.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });

        out.push_str("  \"counters\": {");
        for (i, (name, value)) in self.snapshot.counters.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {}: {}",
                if i == 0 { "" } else { "," },
                json_str(name),
                value
            );
        }
        out.push_str(if self.snapshot.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });

        out.push_str("  \"gauges\": {");
        for (i, (name, value)) in self.snapshot.gauges.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {}: {}",
                if i == 0 { "" } else { "," },
                json_str(name),
                value
            );
        }
        out.push_str(if self.snapshot.gauges.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });

        out.push_str("  \"histograms\": {");
        for (i, h) in self.snapshot.histograms.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p95\": {}}}",
                if i == 0 { "" } else { "," },
                json_str(&h.name),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.p50,
                h.p95,
            );
        }
        out.push_str(if self.snapshot.histograms.is_empty() {
            "}\n"
        } else {
            "\n  }\n"
        });

        out.push_str("}\n");
        out
    }

    /// Write `manifest.json` into `dir` (creating the directory if
    /// needed).
    pub fn write_json(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("manifest.json");
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Render the human-readable timing table printed to stderr at the
    /// end of a `--telemetry summary` run: spans sorted by total time
    /// descending, then counters, then histograms.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "── run summary: {} (seed {}, scale {}, {} threads, {}) ──",
            self.binary,
            self.seed,
            self.scale,
            self.threads,
            fmt_duration(self.wall_time_s * 1e9),
        );

        if !self.snapshot.spans.is_empty() {
            let name_w = self
                .snapshot
                .spans
                .iter()
                .map(|s| s.name.len())
                .max()
                .unwrap()
                .max(4);
            let _ = writeln!(
                out,
                "{:<name_w$}  {:>8}  {:>10}  {:>10}  {:>10}",
                "span", "calls", "total", "mean", "max"
            );
            let mut spans = self.snapshot.spans.clone();
            spans.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
            for s in &spans {
                let _ = writeln!(
                    out,
                    "{:<name_w$}  {:>8}  {:>10}  {:>10}  {:>10}",
                    s.name,
                    s.calls,
                    fmt_duration(s.total_ns as f64),
                    fmt_duration(s.mean_ns() as f64),
                    fmt_duration(s.max_ns as f64),
                );
            }
        }

        if !self.snapshot.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (name, value) in &self.snapshot.counters {
                let _ = writeln!(out, "  {name} = {value}");
            }
        }

        if !self.snapshot.gauges.is_empty() {
            let _ = writeln!(out, "gauges:");
            for (name, value) in &self.snapshot.gauges {
                let _ = writeln!(out, "  {name} = {value}");
            }
        }

        if !self.snapshot.histograms.is_empty() {
            let _ = writeln!(out, "histograms:");
            for h in &self.snapshot.histograms {
                let _ = writeln!(
                    out,
                    "  {} n={} mean={} p50~{} p95~{} max={}",
                    h.name,
                    h.count,
                    h.mean(),
                    h.p50,
                    h.p95,
                    h.max
                );
            }
        }
        out
    }
}

/// `git describe --always --dirty`, or `"unknown"` when git is
/// unavailable (the manifest must never fail the run).
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// JSON string literal with the mandatory escapes — shared with the
/// export sinks ([`crate::sink`], [`crate::trace`]) and the workspace's
/// other hand-rolled JSON writers (e.g. `aml-bench`'s `minijson`).
pub fn json_string_literal(s: &str) -> String {
    json_str(s)
}

/// JSON string literal with the mandatory escapes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A finite f64 as a JSON number (3 decimal places is plenty for timing
/// data); non-finite values become `null` — JSON has no NaN/Infinity.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

/// Nanoseconds as a compact human duration: `431ns`, `5.2µs`, `87ms`,
/// `3.4s`, `2m07s`.
fn fmt_duration(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.1}µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.1}ms", ns / 1e6)
    } else if ns < 60e9 {
        format!("{:.2}s", ns / 1e9)
    } else {
        let secs = ns / 1e9;
        format!("{}m{:02.0}s", (secs / 60.0) as u64, secs % 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{HistSnapshot, Snapshot, SpanSnapshot};

    fn sample_manifest() -> Manifest {
        Manifest {
            binary: "test_bin".into(),
            seed: 42,
            scale: 0.05,
            threads: 4,
            git: "abc1234".into(),
            telemetry: "summary".into(),
            wall_time_s: 1.25,
            snapshot: Snapshot {
                spans: vec![SpanSnapshot {
                    name: "bench.datagen".into(),
                    calls: 1,
                    total_ns: 2_000_000,
                    max_ns: 2_000_000,
                    min_ns: 2_000_000,
                }],
                counters: vec![("netsim.sim.events".into(), 123)],
                gauges: vec![("proc.rss_bytes".into(), 4096)],
                histograms: vec![HistSnapshot {
                    name: "automl.fit_us[forest]".into(),
                    count: 3,
                    sum: 300,
                    min: 50,
                    max: 200,
                    p50: 127,
                    p95: 255,
                    buckets: vec![],
                }],
            },
        }
    }

    #[test]
    fn json_contains_all_sections_and_is_escaped() {
        let mut m = sample_manifest();
        m.binary = "weird\"name\\with\nnewline".into();
        let json = m.to_json();
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"weird\\\"name\\\\with\\nnewline\""));
        assert!(json.contains("\"seed\": 42"));
        assert!(json.contains("\"bench.datagen\": {\"calls\": 1"));
        assert!(json.contains("\"netsim.sim.events\": 123"));
        assert!(json.contains("\"automl.fit_us[forest]\": {\"count\": 3"));
        // Braces balance — a cheap structural sanity check without a
        // JSON parser in the dependency tree.
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut m = sample_manifest();
        m.wall_time_s = f64::NAN;
        assert!(m.to_json().contains("\"wall_time_s\": null"));
    }

    #[test]
    fn empty_snapshot_is_valid_json_shape() {
        let mut m = sample_manifest();
        m.snapshot = Snapshot::default();
        let json = m.to_json();
        assert!(json.contains("\"spans\": {},"));
        assert!(json.contains("\"counters\": {},"));
        assert!(json.contains("\"histograms\": {}\n"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn write_json_creates_file() {
        let dir = std::env::temp_dir().join("aml_telemetry_manifest_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = sample_manifest().write_json(&dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"binary\": \"test_bin\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_sorts_spans_by_total_time() {
        let mut m = sample_manifest();
        m.snapshot.spans.push(SpanSnapshot {
            name: "bench.big".into(),
            calls: 1,
            total_ns: 9_000_000_000,
            max_ns: 9_000_000_000,
            min_ns: 9_000_000_000,
        });
        let summary = m.render_summary();
        let big = summary.find("bench.big").unwrap();
        let small = summary.find("bench.datagen").unwrap();
        assert!(
            big < small,
            "spans must be sorted by total desc:\n{summary}"
        );
        assert!(summary.contains("netsim.sim.events = 123"));
    }

    #[test]
    fn durations_format_across_magnitudes() {
        assert_eq!(fmt_duration(431.0), "431ns");
        assert_eq!(fmt_duration(5_200.0), "5.2µs");
        assert_eq!(fmt_duration(87_000_000.0), "87.0ms");
        assert_eq!(fmt_duration(3.4e9), "3.40s");
        assert_eq!(fmt_duration(127e9), "2m07s");
    }
}
