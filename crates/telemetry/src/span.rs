//! RAII timing spans with thread-local nesting.
//!
//! A [`Span`] measures the wall time between its creation and drop and
//! folds it into the global registry under its name. Spans nest: each
//! thread tracks its depth so `Verbose` log lines indent to show structure,
//! and tests can assert nesting behaves.

use crate::registry::{global, SpanStat};
use std::cell::Cell;
use std::sync::Arc;
use std::time::Instant;

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Current span nesting depth on this thread (0 outside any span).
pub fn current_depth() -> usize {
    DEPTH.with(|d| d.get())
}

struct SpanInner {
    stat: Arc<SpanStat>,
    start: Instant,
    name: String,
    /// `alloc.bytes` at open, for the per-span allocation delta.
    alloc_open: u64,
    /// Whether this span pushed a frame on the profiler stack (the
    /// profiler was active at open); guards the matching pop so toggling
    /// mid-span can never unbalance the stack.
    profiled: bool,
    /// Same guard for the trace-tree collector's frame stack.
    traced: bool,
}

/// RAII guard for a timing span; records into the global registry on drop.
///
/// Created by [`span`]/[`span_labeled`] or the [`crate::span!`] macro.
/// When telemetry is off the guard is inert: no clock read, no allocation,
/// nothing recorded.
pub struct Span {
    inner: Option<SpanInner>,
}

impl Span {
    /// The span's name, or `None` for an inert (telemetry-off) guard.
    pub fn name(&self) -> Option<&str> {
        self.inner.as_ref().map(|i| i.name.as_str())
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let ns = inner.start.elapsed().as_nanos() as u64;
        inner.stat.record(ns);
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        if inner.profiled {
            crate::profile::on_span_close(ns);
        }
        if inner.traced {
            crate::tracetree::on_span_close();
        }
        if crate::sink::active() {
            crate::sink::emit_span_close(&inner.name, inner.start, ns, current_depth());
        }
        if crate::alloc::stats().is_some() {
            let delta = crate::alloc::bytes_now().saturating_sub(inner.alloc_open);
            crate::global().histogram_record(&format!("alloc.span_bytes[{}]", inner.name), delta);
        }
        if crate::level() == crate::TelemetryLevel::Verbose {
            let indent = "  ".repeat(current_depth());
            eprintln!(
                "[telemetry] {indent}{} {:.3} ms",
                inner.name,
                ns as f64 / 1e6
            );
        }
    }
}

/// Open a span named `name`. See [`crate::span!`].
pub fn span(name: &str) -> Span {
    if !crate::enabled() {
        return Span { inner: None };
    }
    DEPTH.with(|d| d.set(d.get() + 1));
    let profiled = crate::profile::active();
    if profiled {
        crate::profile::on_span_open(name);
    }
    let traced = crate::tracetree::active();
    if traced {
        crate::tracetree::on_span_open(name);
    }
    Span {
        inner: Some(SpanInner {
            stat: global().span_stat(name),
            start: Instant::now(),
            name: name.to_string(),
            alloc_open: crate::alloc::bytes_now(),
            profiled,
            traced,
        }),
    }
}

/// Open a span keyed `base[label]` — e.g.
/// `span_labeled("core.strategy.refit", "Cross-ALE")` aggregates under
/// `core.strategy.refit[Cross-ALE]`.
pub fn span_labeled(base: &str, label: &str) -> Span {
    if !crate::enabled() {
        return Span { inner: None };
    }
    let name = format!("{base}[{label}]");
    DEPTH.with(|d| d.set(d.get() + 1));
    let profiled = crate::profile::active();
    if profiled {
        crate::profile::on_span_open(&name);
    }
    let traced = crate::tracetree::active();
    if traced {
        crate::tracetree::on_span_open(&name);
    }
    Span {
        inner: Some(SpanInner {
            stat: global().span_stat(&name),
            start: Instant::now(),
            name,
            alloc_open: crate::alloc::bytes_now(),
            profiled,
            traced,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set_level, test_lock, TelemetryLevel};

    #[test]
    fn spans_nest_and_unwind_depth() {
        let _guard = test_lock::hold();
        set_level(TelemetryLevel::Summary);
        global().reset();
        assert_eq!(current_depth(), 0);
        {
            let outer = span("test.nest.outer");
            assert_eq!(outer.name(), Some("test.nest.outer"));
            assert_eq!(current_depth(), 1);
            {
                let _mid = span_labeled("test.nest.mid", "x");
                assert_eq!(current_depth(), 2);
                {
                    let _inner = span("test.nest.inner");
                    assert_eq!(current_depth(), 3);
                }
                assert_eq!(current_depth(), 2);
            }
            assert_eq!(current_depth(), 1);
        }
        assert_eq!(current_depth(), 0);

        let snap = global().snapshot();
        let names: Vec<&str> = snap.spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"test.nest.outer"));
        assert!(names.contains(&"test.nest.mid[x]"));
        assert!(names.contains(&"test.nest.inner"));
        for s in &snap.spans {
            assert_eq!(s.calls, 1);
            assert!(s.max_ns >= s.min_ns);
        }
        // Outer span encloses the inner ones, so its time dominates.
        let total = |n: &str| snap.spans.iter().find(|s| s.name == n).unwrap().total_ns;
        assert!(total("test.nest.outer") >= total("test.nest.inner"));
        set_level(TelemetryLevel::Off);
        global().reset();
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _guard = test_lock::hold();
        set_level(TelemetryLevel::Off);
        global().reset();
        let s = span("test.inert");
        assert!(s.name().is_none());
        assert_eq!(current_depth(), 0);
        drop(s);
        assert!(global().snapshot().spans.is_empty());
    }

    #[test]
    fn same_name_spans_aggregate_across_threads() {
        let _guard = test_lock::hold();
        set_level(TelemetryLevel::Summary);
        global().reset();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..25 {
                        let _s = span("test.threads.work");
                    }
                });
            }
        });
        let snap = global().snapshot();
        let s = snap
            .spans
            .iter()
            .find(|s| s.name == "test.threads.work")
            .unwrap();
        assert_eq!(s.calls, 100);
        set_level(TelemetryLevel::Off);
        global().reset();
    }
}
