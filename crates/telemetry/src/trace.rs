//! Chrome trace-event exporter: `trace.json` for Perfetto /
//! `chrome://tracing`.
//!
//! [`ChromeTraceSink`] buffers every [`SpanEvent`] of the run and, at
//! flush, writes a JSON object in the [trace-event format] containing:
//!
//! * one `M` (metadata) event naming each thread lane,
//! * a balanced `B`/`E` (begin/end) pair per span close, reconstructing
//!   the span tree — timestamps are microseconds since the run origin, so
//!   viewers lay spans out exactly as they nested,
//! * one `C` (counter) event per final counter value,
//! * run identity (`run_id`, workload, seed, git) under `otherData`.
//!
//! Events are sorted so the file is well-nested even for zero-duration
//! spans, and field order is fixed, making the output deterministic for a
//! given event list (the golden test relies on this).
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//!
//! The emitted `pid` is a constant `1`: the trace describes one process,
//! and a stable value keeps output diffable across runs.

use crate::registry::Snapshot;
use crate::sink::{json_str, RunHeader, Sink, SpanEvent};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Buffering sink that renders the Chrome trace file at flush time.
pub struct ChromeTraceSink {
    path: PathBuf,
    file: Mutex<std::fs::File>,
    header: RunHeader,
    events: Mutex<Vec<SpanEvent>>,
}

impl ChromeTraceSink {
    /// Create (truncate) `path` now — so an unwritable destination fails
    /// at startup, not after the run — and buffer events until
    /// [`Sink::finish`].
    pub fn create(path: &Path, header: &RunHeader) -> std::io::Result<ChromeTraceSink> {
        Ok(ChromeTraceSink {
            path: path.to_path_buf(),
            file: Mutex::new(std::fs::File::create(path)?),
            header: header.clone(),
            events: Mutex::new(Vec::new()),
        })
    }
}

impl Sink for ChromeTraceSink {
    fn on_span_close(&self, event: &SpanEvent) {
        self.events.lock().unwrap().push(event.clone());
    }

    fn finish(&self, snapshot: &Snapshot) -> std::io::Result<()> {
        use std::io::Write as _;
        let events = self.events.lock().unwrap();
        let json = chrome_trace_json(&events, snapshot, &self.header);
        let mut file = self.file.lock().unwrap();
        file.write_all(json.as_bytes())?;
        file.flush()
    }

    fn target(&self) -> String {
        self.path.display().to_string()
    }
}

/// Phase of a rendered trace event, in the order they must appear when
/// timestamps tie: an `E` at time t precedes a `B` at time t (sequential
/// spans touch without overlapping), and metadata precedes everything.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Phase {
    End,
    Begin,
}

/// Render the trace-event JSON for `events` + final `snapshot` counters.
///
/// Pure and deterministic: same inputs, same bytes. Field order within
/// each event object is fixed (`name`, `cat`, `ph`, `pid`, `tid`, `ts`,
/// then `dur`/`args` where applicable).
pub fn chrome_trace_json(events: &[SpanEvent], snapshot: &Snapshot, header: &RunHeader) -> String {
    // One B and one E per span, ordered so the stream is well-nested even
    // where timestamps tie: at equal ts, ends come before begins, longer
    // spans open first, and shorter spans close first.
    let mut marks: Vec<(f64, Phase, &SpanEvent)> = Vec::with_capacity(events.len() * 2);
    for e in events {
        marks.push((e.start_us, Phase::Begin, e));
        marks.push((e.end_us(), Phase::End, e));
    }
    marks.sort_by(|a, b| {
        a.0.total_cmp(&b.0)
            .then(a.1.cmp(&b.1))
            .then_with(|| match a.1 {
                Phase::Begin => b.2.dur_us.total_cmp(&a.2.dur_us),
                Phase::End => a.2.dur_us.total_cmp(&b.2.dur_us),
            })
    });

    let mut tids: Vec<u64> = events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();

    let end_us = events.iter().map(SpanEvent::end_us).fold(0.0, f64::max);

    let mut out = String::with_capacity(4096 + marks.len() * 96);
    out.push_str("{\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {");
    let _ = write!(
        out,
        "\"run_id\": {}, \"workload\": {}, \"seed\": \"{}\", \"git\": {}",
        json_str(&header.run_id),
        json_str(&header.workload),
        header.seed,
        json_str(&header.git),
    );
    out.push_str("},\n\"traceEvents\": [\n");

    let mut first = true;
    let mut emit = |line: String, out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&line);
    };

    for tid in &tids {
        let label = if *tid == 0 {
            "main".to_string()
        } else {
            format!("worker-{tid}")
        };
        emit(
            format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \"args\": {{\"name\": {}}}}}",
                json_str(&label)
            ),
            &mut out,
        );
    }

    for (ts, phase, e) in &marks {
        let ph = match phase {
            Phase::Begin => "B",
            Phase::End => "E",
        };
        emit(
            format!(
                "{{\"name\": {}, \"cat\": \"span\", \"ph\": \"{ph}\", \"pid\": 1, \"tid\": {}, \"ts\": {ts:.3}}}",
                json_str(&e.name),
                e.tid,
            ),
            &mut out,
        );
    }

    // Final counter values as one counter sample each, stamped at the end
    // of the run so viewers show them on the timeline's right edge.
    for (name, value) in &snapshot.counters {
        emit(
            format!(
                "{{\"name\": {}, \"cat\": \"counter\", \"ph\": \"C\", \"pid\": 1, \"tid\": 0, \"ts\": {end_us:.3}, \"args\": {{\"value\": {value}}}}}",
                json_str(name),
            ),
            &mut out,
        );
    }

    out.push_str("\n]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, tid: u64, depth: usize, start_us: f64, dur_us: f64) -> SpanEvent {
        SpanEvent {
            name: name.into(),
            tid,
            depth,
            start_us,
            dur_us,
        }
    }

    #[test]
    fn b_and_e_are_balanced_and_well_nested() {
        // Close order (as sinks see it): child first, then parent —
        // plus a worker-thread span and a zero-duration span.
        let events = vec![
            ev("child", 0, 1, 10.0, 5.0),
            ev("instant", 0, 1, 20.0, 0.0),
            ev("parent", 0, 0, 10.0, 30.0),
            ev("work", 1, 0, 12.0, 6.0),
        ];
        let json = chrome_trace_json(&events, &Snapshot::default(), &RunHeader::default());
        assert_eq!(json.matches("\"ph\": \"B\"").count(), 4);
        assert_eq!(json.matches("\"ph\": \"E\"").count(), 4);
        // Parent opens before its same-ts child (longer duration first).
        let parent_b = json
            .find("\"name\": \"parent\", \"cat\": \"span\", \"ph\": \"B\"")
            .unwrap();
        let child_b = json
            .find("\"name\": \"child\", \"cat\": \"span\", \"ph\": \"B\"")
            .unwrap();
        assert!(parent_b < child_b, "{json}");
        // Two thread lanes, named.
        assert!(json.contains("{\"name\": \"main\"}"));
        assert!(json.contains("{\"name\": \"worker-1\"}"));
        // Structural sanity without a JSON parser in this crate.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn counters_become_counter_events_at_run_end() {
        let mut snapshot = Snapshot::default();
        snapshot.counters.push(("netsim.sim.events".into(), 42));
        let events = vec![ev("a", 0, 0, 0.0, 100.0)];
        let json = chrome_trace_json(&events, &snapshot, &RunHeader::default());
        assert!(json.contains(
            "{\"name\": \"netsim.sim.events\", \"cat\": \"counter\", \"ph\": \"C\", \"pid\": 1, \"tid\": 0, \"ts\": 100.000, \"args\": {\"value\": 42}}"
        ));
    }

    #[test]
    fn header_lands_in_other_data() {
        let header = RunHeader {
            run_id: "w-s7-p9".into(),
            workload: "w".into(),
            seed: 7,
            git: "abc".into(),
        };
        let json = chrome_trace_json(&[], &Snapshot::default(), &header);
        assert!(json.contains("\"run_id\": \"w-s7-p9\""));
        assert!(json.contains("\"workload\": \"w\""));
        assert!(json.contains("\"seed\": \"7\""));
        // Empty event list still renders a valid, balanced document.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
