//! Process resource sampler: `/proc/self/*` → registry gauges.
//!
//! A background thread periodically reads `/proc/self/statm` (resident
//! pages), `/proc/self/stat` (user/system CPU ticks), and
//! `/proc/self/status` (thread count) and publishes them as gauges:
//!
//! * `proc.rss_bytes` — resident set size in bytes
//! * `proc.rss_peak_bytes` — highest RSS any sample observed (feeds the
//!   cross-run history's `peak_rss_bytes`)
//! * `proc.cpu_user_ms` — cumulative user-mode CPU time, milliseconds
//! * `proc.cpu_sys_ms` — cumulative kernel-mode CPU time, milliseconds
//! * `proc.threads` — current thread count
//!
//! The gauges surface in `/metrics` (the live plane's Prometheus
//! endpoint) and in the final manifest. Off Linux — or wherever `/proc`
//! is absent — [`sample`] returns `None` and everything degrades to a
//! no-op; no `cfg` gymnastics, just a runtime probe.
//!
//! The sampler only exists when `--serve` is given; without it no thread
//! is spawned (off-is-free).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Bytes per page, for converting `/proc/self/statm` resident pages.
/// Hard-coded 4 KiB: std exposes no portable `sysconf`, and every Linux
/// target this workspace runs on uses 4 KiB base pages.
const PAGE_BYTES: u64 = 4096;

/// Milliseconds per clock tick for `/proc/self/stat` utime/stime.
/// Hard-coded for `CONFIG_HZ`/`USER_HZ` = 100, the universal Linux
/// default.
const MS_PER_TICK: u64 = 10;

/// One point-in-time resource reading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// Resident set size in bytes.
    pub rss_bytes: u64,
    /// Cumulative user-mode CPU time in milliseconds.
    pub cpu_user_ms: u64,
    /// Cumulative kernel-mode CPU time in milliseconds.
    pub cpu_sys_ms: u64,
    /// Current number of threads.
    pub threads: u64,
}

/// Read the current process's resource usage from `/proc/self/*`.
/// Returns `None` when `/proc` is unavailable (non-Linux) or unparsable.
pub fn sample() -> Option<Sample> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    // statm: "size resident shared text lib data dt", in pages.
    let resident_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;

    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // stat field 2 (comm) may contain spaces; everything after the
    // closing paren is fixed-position. utime/stime are overall fields
    // 14/15, i.e. indices 11/12 after the paren.
    let after_comm = stat.rsplit_once(')').map(|(_, rest)| rest)?;
    let mut fields = after_comm.split_whitespace();
    let utime_ticks: u64 = fields.nth(11)?.parse().ok()?;
    let stime_ticks: u64 = fields.next()?.parse().ok()?;

    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let threads: u64 = status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())?;

    Some(Sample {
        rss_bytes: resident_pages * PAGE_BYTES,
        cpu_user_ms: utime_ticks * MS_PER_TICK,
        cpu_sys_ms: stime_ticks * MS_PER_TICK,
        threads,
    })
}

/// Highest RSS any [`publish_once`] call has observed this process.
/// Monotonic by construction (`fetch_max`), so sparse sampling can only
/// under-report the peak, never invent one.
static RSS_PEAK: AtomicU64 = AtomicU64::new(0);

/// Take one sample and publish it into the `proc.*` gauges. No-op when
/// `/proc` is unavailable or telemetry is off.
pub fn publish_once() {
    if let Some(s) = sample() {
        let peak = RSS_PEAK
            .fetch_max(s.rss_bytes, Ordering::Relaxed)
            .max(s.rss_bytes);
        crate::gauge_set("proc.rss_bytes", s.rss_bytes);
        crate::gauge_set("proc.rss_peak_bytes", peak);
        crate::gauge_set("proc.cpu_user_ms", s.cpu_user_ms);
        crate::gauge_set("proc.cpu_sys_ms", s.cpu_sys_ms);
        crate::gauge_set("proc.threads", s.threads);
    }
}

struct Sampler {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

fn sampler_slot() -> &'static Mutex<Option<Sampler>> {
    static SLOT: OnceLock<Mutex<Option<Sampler>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Start the background sampler publishing every `period`. Replaces any
/// previously running sampler. The thread samples immediately on start so
/// the gauges exist before the first period elapses.
pub fn start_sampler(period: Duration) {
    stop_sampler();
    let stop = Arc::new(AtomicBool::new(false));
    let stop_seen = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("aml-resource-sampler".into())
        .spawn(move || {
            while !stop_seen.load(Ordering::Relaxed) {
                publish_once();
                // Sleep in short slices so stop_sampler() never waits a
                // full period for the join.
                let mut slept = Duration::ZERO;
                while slept < period && !stop_seen.load(Ordering::Relaxed) {
                    let step = Duration::from_millis(25).min(period - slept);
                    std::thread::sleep(step);
                    slept += step;
                }
            }
        })
        .ok();
    *sampler_slot()
        .lock()
        .unwrap_or_else(PoisonError::into_inner) = Some(Sampler { stop, thread });
}

/// Stop the background sampler (if running), join its thread, and take a
/// final sample so the gauges reflect end-of-run usage.
pub fn stop_sampler() {
    let taken = sampler_slot()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take();
    if let Some(mut sampler) = taken {
        sampler.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = sampler.thread.take() {
            let _ = thread.join();
        }
        publish_once();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set_level, test_lock, TelemetryLevel};

    #[test]
    fn sample_reads_plausible_values_on_linux() {
        let Some(s) = sample() else {
            return; // /proc unavailable: graceful no-op is the contract
        };
        assert!(s.rss_bytes > 0, "{s:?}");
        assert!(s.threads >= 1, "{s:?}");
        // CPU times are cumulative; merely non-decreasing across reads.
        let s2 = sample().unwrap();
        assert!(s2.cpu_user_ms >= s.cpu_user_ms);
        assert!(s2.cpu_sys_ms >= s.cpu_sys_ms);
    }

    #[test]
    fn publish_once_sets_proc_gauges() {
        let _guard = test_lock::hold();
        set_level(TelemetryLevel::Summary);
        crate::global().reset();
        publish_once();
        let snap = crate::global().snapshot();
        if sample().is_some() {
            let names: Vec<&str> = snap.gauges.iter().map(|(n, _)| n.as_str()).collect();
            assert_eq!(
                names,
                vec![
                    "proc.cpu_sys_ms",
                    "proc.cpu_user_ms",
                    "proc.rss_bytes",
                    "proc.rss_peak_bytes",
                    "proc.threads"
                ]
            );
            let gauge = |name: &str| {
                snap.gauges
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| *v)
                    .unwrap()
            };
            assert!(gauge("proc.rss_peak_bytes") >= gauge("proc.rss_bytes"));
        } else {
            assert!(snap.gauges.is_empty());
        }
        set_level(TelemetryLevel::Off);
        crate::global().reset();
    }

    #[test]
    fn sampler_starts_and_stops_cleanly() {
        let _guard = test_lock::hold();
        set_level(TelemetryLevel::Summary);
        crate::global().reset();
        start_sampler(Duration::from_millis(10));
        std::thread::sleep(Duration::from_millis(30));
        stop_sampler();
        // Idempotent.
        stop_sampler();
        if sample().is_some() {
            assert!(crate::global()
                .snapshot()
                .gauges
                .iter()
                .any(|(n, _)| n == "proc.rss_bytes"));
        }
        set_level(TelemetryLevel::Off);
        crate::global().reset();
    }
}
